"""Global-ordering engine interface.

A global orderer consumes blocks as SB instances deliver them and decides
when each block becomes *globally ordered*, i.e. takes its final position in
the single global log shared by all instances.  The three families the paper
compares are implemented behind this interface:

* pre-determined positions (ISS, Mir-BFT, RCC),
* a dedicated sequencer instance (DQBFT),
* dynamic monotonic ranks (Ladon, reused by Orthrus).

Orderers are pure, simulator-independent state machines: they receive blocks
and return the blocks that just became globally ordered, in global order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.ledger.blocks import Block


@dataclass(frozen=True)
class BlockConflicts:
    """Conflict metadata for one delivered block.

    ``local_keys`` are owned objects the block decrements that are assigned to
    the block's own instance — conflicts on them are same-instance only,
    because every transaction spending from such an object serialises through
    that single SB instance.  ``global_keys`` are keys a *future block of
    another instance* could also touch: shared contract objects plus owned
    decrements assigned to a different instance (the cross-instance escrow
    case).  A block with any global key must fall back to bar semantics —
    no orderer can know whether an undelivered block with a smaller ordering
    index conflicts on such a key until the bar has passed it.
    """

    local_keys: frozenset[str]
    global_keys: frozenset[str]

    @property
    def barred(self) -> bool:
        """True when the block must wait for the global-ordering bar."""
        return bool(self.global_keys)

    @property
    def keys(self) -> frozenset[str]:
        """Every key the block conflicts on."""
        return self.local_keys | self.global_keys


#: A block that conflicts with nothing (no-ops, pure reads).
NO_CONFLICTS = BlockConflicts(frozenset(), frozenset())

#: Conservative fallback when no conflict metadata is available: an opaque
#: global key forces bar semantics, which is always safe (Ladon behaviour).
UNKNOWN_CONFLICTS = BlockConflicts(frozenset(), frozenset(("\x00unknown",)))

#: Namespace prefix for cross-instance decrement keys.  A payer key assigned
#: to another instance still *bars* the block carrying it, but it must not
#: string-collide with the owner instance's local key: a local holder may
#: release without the bar, so an untagged edge between the two would be
#: ordered differently on replicas that deliver the pair in opposite orders.
#: The pair commutes in the global log anyway — payments commit through the
#: partial path and the global path skips them — so the edge is dropped,
#: while escrow blocks of *different* instances touching the same foreign key
#: still share the tagged key (both barred, hence bar-ordered).
CROSS_INSTANCE_PREFIX = "\x00xi:"


def derive_conflicts(block: Block, assign_instance: Callable[[str], int]) -> BlockConflicts:
    """Conflict keys of a block under a bucket-assignment function.

    Owned *decrements* (payers) conflict: two debits of one account do not
    commute with the affordability check.  Owned *increments* (credits) are
    commutative and excluded.  Shared-object operations conflict on their key
    and are always global.  ``assign_instance`` is the partitioner's
    ``assign_object`` — a payer key assigned to the block's own instance can
    only conflict with blocks of that same instance, while one assigned
    elsewhere is recorded under :data:`CROSS_INSTANCE_PREFIX` (global, but
    disjoint from the owner's local-key namespace).
    """
    local: set[str] = set()
    global_: set[str] = set()
    for tx in block.transactions:
        for operation in tx.decrement_operations():
            if assign_instance(operation.key) == block.instance:
                local.add(operation.key)
            else:
                global_.add(CROSS_INSTANCE_PREFIX + operation.key)
        global_.update(tx.shared_keys())
    if not local and not global_:
        return NO_CONFLICTS
    return BlockConflicts(frozenset(local), frozenset(global_))


@dataclass
class OrderingStats:
    """Counters describing an orderer's behaviour during a run."""

    blocks_received: int = 0
    blocks_ordered: int = 0
    max_waiting: int = 0
    noop_blocks: int = 0
    #: Deliveries whose ordering index did not exceed the instance frontier.
    #: Rank-based ordering is only safe when each instance's delivered ranks
    #: are strictly increasing; a regression (e.g. a post-view-change leader
    #: assigning ranks below a re-proposed block's rank) can diverge the
    #: global log across replicas, so it is counted for detection.
    rank_regressions: int = 0
    #: Release-wait accounting, reported uniformly by every orderer: how many
    #: *deliveries* elapsed between a block's arrival and its release into
    #: the global log.  Logical ticks rather than wall time keep the counters
    #: deterministic on the simulated path.
    total_release_wait: int = 0
    max_release_wait: int = 0

    @property
    def mean_release_wait(self) -> float:
        """Mean deliveries a block waited before release."""
        if not self.blocks_ordered:
            return 0.0
        return self.total_release_wait / self.blocks_ordered


class GlobalOrderer:
    """Interface every global-ordering strategy implements."""

    #: Orderers that consume :class:`BlockConflicts` set this to True; the
    #: consensus core then derives conflict metadata per delivered block and
    #: passes it to :meth:`on_deliver`.
    wants_conflicts = False

    def __init__(self, num_instances: int) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        self.num_instances = num_instances
        self.stats = OrderingStats()
        self._global_log: list[Block] = []
        #: Logical clock: one tick per delivery (shared release-wait basis).
        self._delivery_tick = 0
        self._arrival_tick: dict[tuple[int, int], int] = {}

    @property
    def global_log(self) -> list[Block]:
        """Blocks in their final global order (grows append-only)."""
        return self._global_log

    @property
    def ordered_count(self) -> int:
        """Number of blocks globally ordered so far."""
        return len(self._global_log)

    def pending_count(self) -> int:
        """Blocks delivered but not yet globally ordered."""
        raise NotImplementedError

    def snapshot_state(self) -> dict | None:
        """Quiescent-point state a restarted replica needs to resume ordering.

        Called by the durability layer only when :meth:`pending_count` is
        zero (snapshots are cut at quiescent epoch boundaries).  Returns
        ``None`` when the orderer does not support snapshot resume — the
        recovery path then falls back to a full WAL replay from genesis.
        """
        return None

    def restore_state(self, state: dict) -> None:
        """Resume from :meth:`snapshot_state` output (fresh instance only)."""
        raise NotImplementedError(f"{type(self).__name__} cannot restore snapshots")

    def on_deliver(self, block: Block, conflicts: BlockConflicts | None = None) -> list[Block]:
        """Feed a delivered block; return blocks that just became ordered.

        ``conflicts`` carries the block's conflict metadata for orderers that
        declare :attr:`wants_conflicts`; orderers that do not are free to
        ignore it (the default call sites pass ``None``).
        """
        raise NotImplementedError

    def _record_arrival(self, block: Block) -> None:
        """Shared per-delivery bookkeeping (call once per ``on_deliver``).

        Counts the delivery, classifies no-ops, and timestamps the block's
        arrival on the logical delivery clock so :meth:`_commit` can report
        release waits uniformly across orderer families.
        """
        stats = self.stats
        stats.blocks_received += 1
        if not block.transactions:
            stats.noop_blocks += 1
        tick = self._delivery_tick + 1
        self._delivery_tick = tick
        self._arrival_tick.setdefault(block.block_id, tick)

    def _commit(self, blocks: Iterable[Block]) -> list[Block]:
        """Append newly ordered blocks to the global log and update stats."""
        committed = list(blocks)
        if not committed:
            return committed
        self._global_log.extend(committed)
        stats = self.stats
        stats.blocks_ordered += len(committed)
        now = self._delivery_tick
        arrival_pop = self._arrival_tick.pop
        total = 0
        max_wait = stats.max_release_wait
        for block in committed:
            waited = now - arrival_pop(block.block_id, now)
            total += waited
            if waited > max_wait:
                max_wait = waited
        stats.total_release_wait += total
        stats.max_release_wait = max_wait
        return committed


@dataclass(order=True, frozen=True)
class OrderingIndex:
    """Total-order key ``(rank, instance)`` used by dynamic ordering.

    The paper writes ``b ≺ b'`` when ``b.rank < b'.rank`` or ranks are equal
    and ``b.index < b'.index``; this dataclass implements exactly that
    comparison.
    """

    rank: int
    instance: int

    @classmethod
    def of(cls, block: Block) -> "OrderingIndex":
        """Ordering index of a block (rank defaults to 0 when absent)."""
        return cls(rank=block.rank if block.rank is not None else 0, instance=block.instance)


@dataclass
class RankTracker:
    """Tracks the highest observed rank and assigns ranks to new blocks.

    The paper's leader collects the highest rank from ``2f + 1`` replicas and
    increments it.  Inside the simulation every honest replica observes every
    delivered block, so tracking the local maximum (and, in the pipeline
    cluster, a cluster-wide maximum) reproduces the two properties the
    algorithm needs: agreement (the rank travels with the block) and
    monotonicity (a block created after a delivered block has a larger rank).
    """

    highest_seen: int = 0
    _assigned: int = field(default=0, repr=False)

    def observe(self, block: Block) -> None:
        """Account for a delivered block's rank."""
        if block.rank is not None:
            self.highest_seen = max(self.highest_seen, block.rank)

    def observe_rank(self, rank: int) -> None:
        """Account for a rank learned out-of-band (e.g. rank collection)."""
        self.highest_seen = max(self.highest_seen, rank)

    def next_rank(self) -> int:
        """Rank to assign to the next proposed block."""
        rank = max(self.highest_seen, self._assigned) + 1
        self._assigned = rank
        return rank
