"""Global-ordering engine interface.

A global orderer consumes blocks as SB instances deliver them and decides
when each block becomes *globally ordered*, i.e. takes its final position in
the single global log shared by all instances.  The three families the paper
compares are implemented behind this interface:

* pre-determined positions (ISS, Mir-BFT, RCC),
* a dedicated sequencer instance (DQBFT),
* dynamic monotonic ranks (Ladon, reused by Orthrus).

Orderers are pure, simulator-independent state machines: they receive blocks
and return the blocks that just became globally ordered, in global order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ledger.blocks import Block


@dataclass
class OrderingStats:
    """Counters describing an orderer's behaviour during a run."""

    blocks_received: int = 0
    blocks_ordered: int = 0
    max_waiting: int = 0
    noop_blocks: int = 0
    #: Deliveries whose ordering index did not exceed the instance frontier.
    #: Rank-based ordering is only safe when each instance's delivered ranks
    #: are strictly increasing; a regression (e.g. a post-view-change leader
    #: assigning ranks below a re-proposed block's rank) can diverge the
    #: global log across replicas, so it is counted for detection.
    rank_regressions: int = 0


class GlobalOrderer:
    """Interface every global-ordering strategy implements."""

    def __init__(self, num_instances: int) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        self.num_instances = num_instances
        self.stats = OrderingStats()
        self._global_log: list[Block] = []

    @property
    def global_log(self) -> list[Block]:
        """Blocks in their final global order (grows append-only)."""
        return self._global_log

    @property
    def ordered_count(self) -> int:
        """Number of blocks globally ordered so far."""
        return len(self._global_log)

    def pending_count(self) -> int:
        """Blocks delivered but not yet globally ordered."""
        raise NotImplementedError

    def on_deliver(self, block: Block) -> list[Block]:
        """Feed a delivered block; return blocks that just became ordered."""
        raise NotImplementedError

    def _commit(self, blocks: Iterable[Block]) -> list[Block]:
        """Append newly ordered blocks to the global log and update stats."""
        committed = list(blocks)
        self._global_log.extend(committed)
        self.stats.blocks_ordered += len(committed)
        return committed


@dataclass(order=True, frozen=True)
class OrderingIndex:
    """Total-order key ``(rank, instance)`` used by dynamic ordering.

    The paper writes ``b ≺ b'`` when ``b.rank < b'.rank`` or ranks are equal
    and ``b.index < b'.index``; this dataclass implements exactly that
    comparison.
    """

    rank: int
    instance: int

    @classmethod
    def of(cls, block: Block) -> "OrderingIndex":
        """Ordering index of a block (rank defaults to 0 when absent)."""
        return cls(rank=block.rank if block.rank is not None else 0, instance=block.instance)


@dataclass
class RankTracker:
    """Tracks the highest observed rank and assigns ranks to new blocks.

    The paper's leader collects the highest rank from ``2f + 1`` replicas and
    increments it.  Inside the simulation every honest replica observes every
    delivered block, so tracking the local maximum (and, in the pipeline
    cluster, a cluster-wide maximum) reproduces the two properties the
    algorithm needs: agreement (the rank travels with the block) and
    monotonicity (a block created after a delivered block has a larger rank).
    """

    highest_seen: int = 0
    _assigned: int = field(default=0, repr=False)

    def observe(self, block: Block) -> None:
        """Account for a delivered block's rank."""
        if block.rank is not None:
            self.highest_seen = max(self.highest_seen, block.rank)

    def observe_rank(self, rank: int) -> None:
        """Account for a rank learned out-of-band (e.g. rank collection)."""
        self.highest_seen = max(self.highest_seen, rank)

    def next_rank(self) -> int:
        """Rank to assign to the next proposed block."""
        rank = max(self.highest_seen, self._assigned) + 1
        self._assigned = rank
        return rank
