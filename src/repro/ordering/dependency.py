"""Dependency-aware global ordering: escape the bar for independent blocks.

Ladon's bar couples every instance's release rate to the globally slowest
rank: a straggling instance holds *every* other instance's blocks hostage,
even blocks whose transactions touch completely disjoint state.  HYDRA
(arxiv 2511.05843) identifies this global-ordering coupling as Multi-BFT's
next bottleneck; this orderer implements the obvious escape hatch: track a
conflict graph over the pending blocks and release a block as soon as every
*conflicting* predecessor (by :class:`OrderingIndex`) has been released.

Safety argument
---------------
Cross-replica correctness requires that any two *conflicting* blocks appear
in the same relative order in every replica's global log (non-conflicting
blocks commute, so their order is free).  Conflict keys split into two
classes (see :class:`~repro.ordering.base.BlockConflicts`):

* **Local keys** — owned objects decremented by the block and assigned to the
  block's own instance.  Every transaction spending such an object serialises
  through that one SB instance, so conflicts on local keys are same-instance
  only.  SB delivers each instance's blocks in sequence-number order on every
  replica, so a block's same-instance conflicting predecessors have always
  been delivered (and can be waited on) before it — no bar required.

* **Global keys** — shared contract objects plus owned decrements assigned to
  a *different* instance (the cross-instance escrow case, tagged with
  :data:`~repro.ordering.base.CROSS_INSTANCE_PREFIX` so they stay disjoint
  from the owner instance's local-key namespace).  A not-yet delivered block
  of another instance could still conflict on such a key with a smaller
  ordering index; releasing early would let two replicas execute a
  conflicting pair in opposite orders.  Blocks carrying any global key
  therefore fall back to bar semantics: they release only once their index is
  strictly below the bar, exactly like Ladon.  (Below the bar no future block
  can precede them, so waiting on the *delivered* conflicting predecessors is
  then sufficient.)

The invariant this buys — pinned by the property suite — is that any two
blocks sharing a conflict key release in the same relative order on every
replica, whatever the cross-instance delivery interleaving: same-key holders
are either same-instance (SB sequence order, which every replica observes
identically) or both barred (bar order is replica-independent).

On a fully conflicting workload every block is barred and the release order
degenerates to Ladon's ``(rank, instance, sn, arrival)`` order — pinned by
the equivalence property in ``tests/properties/test_ordering_properties.py``.

When no conflict metadata is supplied (and no ``key_instance`` assignment
function was given to self-derive it), a block is treated as conflicting with
everything (:data:`~repro.ordering.base.UNKNOWN_CONFLICTS`), which degrades
to plain Ladon behaviour instead of risking divergence.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, NamedTuple

from repro.ledger.blocks import Block
from repro.ordering.base import (
    NO_CONFLICTS,
    UNKNOWN_CONFLICTS,
    BlockConflicts,
    GlobalOrderer,
    OrderingIndex,
    derive_conflicts,
)

#: Full release-order key: ``(rank, instance, sn, arrival)``.  The prefix is
#: the paper's ordering index; ``sn`` and the local arrival counter only break
#: ties *within* one block identity, so the order of two distinct blocks is
#: always decided by replica-independent fields.
_OrderKey = tuple[int, int, int, int]


class _Pending(NamedTuple):
    order_key: _OrderKey
    block: Block
    keys: frozenset[str]
    barred: bool


class DependencyGlobalOrderer(GlobalOrderer):
    """Conflict-graph global ordering with bar fallback for global keys."""

    wants_conflicts = True

    def __init__(
        self,
        num_instances: int,
        key_instance: Callable[[str], int] | None = None,
    ) -> None:
        super().__init__(num_instances)
        #: Bucket-assignment function used to self-derive conflicts when the
        #: caller does not pass metadata (the partitioner's ``assign_object``).
        self._key_instance = key_instance
        self._pending: dict[tuple[int, int], _Pending] = {}
        self._ordered_ids: set[tuple[int, int]] = set()
        #: One min-heap of ``(order_key, block_id)`` per conflict key, over
        #: the pending holders of that key (lazy deletion on release).
        self._key_heaps: dict[str, list[tuple[_OrderKey, tuple[int, int]]]] = {}
        #: Barred blocks waiting for the bar, ordered by release key.
        self._barred_heap: list[tuple[_OrderKey, tuple[int, int]]] = []
        #: Live (key, pending block) edges in the conflict graph (gauge).
        self._edges = 0
        self._arrivals = 0
        self._frontier_ranks: list[int] = [0] * num_instances

    # -- introspection ---------------------------------------------------------

    def pending_count(self) -> int:
        return len(self._pending)

    def conflict_graph_size(self) -> int:
        """Number of live (key, pending block) edges being tracked."""
        return self._edges

    def snapshot_state(self) -> dict | None:
        """Same quiescent-state argument as Ladon's: with no pending blocks
        the conflict graph is empty and release decisions reduce to the rank
        frontier."""
        if self._pending:
            return None
        return {"frontier_ranks": list(self._frontier_ranks)}

    def restore_state(self, state: dict) -> None:
        ranks = [int(v) for v in state["frontier_ranks"]]
        if len(ranks) != self.num_instances:
            raise ValueError("frontier_ranks width mismatch")
        self._frontier_ranks = ranks

    def current_bar(self) -> OrderingIndex:
        """Same bar as Ladon's: the smallest index a future block can take."""
        ranks = self._frontier_ranks
        low_rank = min(ranks)
        return OrderingIndex(rank=low_rank + 1, instance=ranks.index(low_rank))

    # -- delivery --------------------------------------------------------------

    def on_deliver(self, block: Block, conflicts: BlockConflicts | None = None) -> list[Block]:
        self._record_arrival(block)
        block_id = block.block_id
        if block_id in self._pending or block_id in self._ordered_ids:
            return []
        if conflicts is None:
            if block.is_noop:
                conflicts = NO_CONFLICTS
            elif self._key_instance is not None:
                conflicts = derive_conflicts(block, self._key_instance)
            else:
                conflicts = UNKNOWN_CONFLICTS
        instance = block.instance
        rank = block.rank if block.rank is not None else 0
        if rank <= self._frontier_ranks[instance]:
            # Same protocol violation Ladon counts: per-instance ranks must be
            # strictly increasing for rank-based ordering to be safe.
            self.stats.rank_regressions += 1
        else:
            self._frontier_ranks[instance] = rank
        self._arrivals += 1
        order_key: _OrderKey = (rank, instance, block.sequence_number, self._arrivals)
        entry = _Pending(order_key, block, conflicts.keys, conflicts.barred)
        self._pending[block_id] = entry
        for key in entry.keys:
            self._key_heaps.setdefault(key, [])
            heappush(self._key_heaps[key], (order_key, block_id))
        self._edges += len(entry.keys)
        if len(self._pending) > self.stats.max_waiting:
            self.stats.max_waiting = len(self._pending)

        candidates: list[tuple[_OrderKey, tuple[int, int]]] = []
        if entry.barred:
            heappush(self._barred_heap, (order_key, block_id))
        else:
            candidates.append((order_key, block_id))
        return self._commit(self._drain(candidates))

    # -- release machinery -----------------------------------------------------

    def _drain(self, candidates: list[tuple[_OrderKey, tuple[int, int]]]) -> list[Block]:
        """Release every block whose conflicting predecessors have released.

        ``candidates`` seeds the worklist; barred blocks below the (possibly
        just advanced) bar are merged in, and each release re-queues the new
        minimum holder of every key the released block held.  A candidate
        that is still blocked is simply dropped — it is re-queued the moment
        one of its keys gets a new minimum, i.e. when a blocking predecessor
        releases.
        """
        heapify(candidates)
        ranks = self._frontier_ranks
        low_rank = min(ranks)
        bar = (low_rank + 1, ranks.index(low_rank))
        barred = self._barred_heap
        while barred and barred[0][0][:2] < bar:
            heappush(candidates, heappop(barred))
        released: list[Block] = []
        pending = self._pending
        while candidates:
            order_key, block_id = heappop(candidates)
            entry = pending.get(block_id)
            if entry is None or entry.order_key != order_key:
                continue  # stale: already released (duplicate candidate)
            if entry.barred and not order_key[:2] < bar:
                # Pushed early through a key neighbourhood; still waiting for
                # the bar, and still queued in the barred heap.
                continue
            if self._blocked(block_id, entry):
                continue
            del pending[block_id]
            self._ordered_ids.add(block_id)
            self._edges -= len(entry.keys)
            for key in entry.keys:
                successor = self._min_holder(key)
                if successor is not None:
                    heappush(candidates, successor)
            released.append(entry.block)
        return released

    def _blocked(self, block_id: tuple[int, int], entry: _Pending) -> bool:
        """True while a conflicting predecessor of the block is pending."""
        for key in entry.keys:
            head = self._min_holder(key)
            if head is not None and head[1] != block_id:
                return True
        return False

    def _min_holder(self, key: str) -> tuple[_OrderKey, tuple[int, int]] | None:
        """Smallest pending holder of ``key`` (lazily pruning released ones)."""
        heap = self._key_heaps.get(key)
        if heap is None:
            return None
        while heap and heap[0][1] not in self._pending:
            heappop(heap)
        if not heap:
            del self._key_heaps[key]
            return None
        return heap[0]
