"""Ladon's dynamic global ordering algorithm (Appendix A, Algorithm 3).

Blocks carry a *rank* assigned by their leader at proposal time; the rank is
monotone with respect to every block the leader had already seen delivered.
Honest replicas order blocks by ``(rank, instance index)``.  A delivered block
can be globally confirmed as soon as its ordering index falls below the
``bar``: the smallest ordering index any *future* block could still take,
which is derived from the last delivered block of each instance.

A straggler instance no longer blocks the log proportionally to its backlog —
each block it finally delivers carries a recent (large) rank, which pushes the
bar forward and releases everything the fast instances accumulated.

Data-structure note: the waiting set is kept as one sorted run *per
instance* (ranks within an instance are strictly increasing in the honest
case, so appends are O(1)) plus a small "heads" heap over the per-instance
minima.  Releasing a block then costs ``O(log m)`` in the number of
*instances*, not ``O(log W)`` in the number of *waiting blocks* — the
distinction that matters in exactly the straggler scenarios Ladon exists
for, where W grows to thousands while m stays at 16.  The release order is
identical to the previous single-heap implementation (``(rank, instance,
sequence number, arrival)`` lexicographic) and is pinned by the brute-force
reference comparison in ``tests/properties/test_ordering_properties.py``.
"""

from __future__ import annotations

import bisect
from collections import deque
from heapq import heappop, heappush

from repro.ledger.blocks import Block
from repro.ordering.base import BlockConflicts, GlobalOrderer, OrderingIndex


class LadonGlobalOrderer(GlobalOrderer):
    """Rank-based global ordering used by Ladon and by Orthrus's global log."""

    def __init__(self, num_instances: int) -> None:
        super().__init__(num_instances)
        #: Waiting set ``W``: per-instance runs of ``(rank, sn, arrival,
        #: block)`` entries kept in ascending order (O(1) append for the
        #: honest strictly-increasing-rank case; rare out-of-order ranks —
        #: view-change regressions — pay one sorted insert).
        self._runs: list[deque[tuple[int, int, int, Block]]] = [
            deque() for _ in range(num_instances)
        ]
        #: Heap of ``(rank, instance)`` over the current run heads.  Entries
        #: may go stale when an out-of-order insert produces a new, smaller
        #: head; stale entries are skipped on pop (a valid entry for the
        #: actual head always coexists).
        self._heads: list[tuple[int, int]] = []
        self._pending = 0
        self._arrivals = 0
        self._waiting_ids: set[tuple[int, int]] = set()
        self._ordered_ids: set[tuple[int, int]] = set()
        #: Rank of the last delivered block per instance (the frontier
        #: ``P'``); instances that have not delivered yet sit at rank 0,
        #: which is below any assigned rank (ranks start at 1).
        self._frontier_ranks: list[int] = [0] * num_instances

    def pending_count(self) -> int:
        return self._pending

    def snapshot_state(self) -> dict | None:
        """Rank frontier is the only cross-delivery state at quiescence.

        With an empty waiting set the runs, heads heap and arrival ticks are
        all vacuous; the bar — hence every future release decision — is a
        pure function of ``_frontier_ranks``.
        """
        if self._pending:
            return None
        return {"frontier_ranks": list(self._frontier_ranks)}

    def restore_state(self, state: dict) -> None:
        ranks = [int(v) for v in state["frontier_ranks"]]
        if len(ranks) != self.num_instances:
            raise ValueError("frontier_ranks width mismatch")
        self._frontier_ranks = ranks

    def current_bar(self) -> OrderingIndex:
        """The lowest ordering index a future block could still receive.

        A future block from instance ``i`` carries a rank strictly above
        ``frontier[i].rank`` (per-instance ranks are strictly increasing), so
        the smallest index instance ``i`` can still produce is
        ``(frontier[i].rank + 1, i)`` and the bar is the minimum over all
        instances.  Because ``(r, i) -> (r + 1, i)`` is strictly monotone
        under the lexicographic ``(rank, instance)`` order, taking
        ``min(frontier)`` first and adding one afterwards computes exactly
        that minimum — including the case where two instance frontiers tie on
        rank, where the tie breaks towards the lower instance index on both
        sides.  A waiting block can never *equal* the bar (delivering the
        ``(rank + 1, i_min)`` block would have advanced ``frontier[i_min]``
        past it), so releasing strictly below the bar is exact; this boundary
        is property-tested against a brute-force reference orderer in
        ``tests/properties/test_ordering_properties.py``.
        """
        ranks = self._frontier_ranks
        low_rank = min(ranks)
        return OrderingIndex(rank=low_rank + 1, instance=ranks.index(low_rank))

    def on_deliver(self, block: Block, conflicts: BlockConflicts | None = None) -> list[Block]:
        self._record_arrival(block)
        if block.block_id in self._waiting_ids or block.block_id in self._ordered_ids:
            return []
        instance = block.instance
        rank = block.rank if block.rank is not None else 0
        if rank <= self._frontier_ranks[instance]:
            # Rank regression: the safety precondition (strictly increasing
            # per-instance ranks) was violated upstream.  Count it so fault
            # tests and operators can detect the protocol violation — the
            # block is still ordered deterministically from this replica's
            # point of view, but cross-replica agreement is no longer
            # guaranteed for it.
            self.stats.rank_regressions += 1
        else:
            self._frontier_ranks[instance] = rank
        self._arrivals += 1
        entry = (rank, block.sequence_number, self._arrivals, block)
        run = self._runs[instance]
        if not run:
            run.append(entry)
            heappush(self._heads, (rank, instance))
        elif entry[:3] >= run[-1][:3]:
            # Honest fast path: ranks arrive in increasing order.
            run.append(entry)
        else:
            items = list(run)
            position = bisect.bisect_left(items, entry)
            items.insert(position, entry)
            self._runs[instance] = deque(items)
            if position == 0:
                # New minimum for this instance: register a fresh head entry
                # (the old, larger one is skipped lazily when popped).
                heappush(self._heads, (rank, instance))
        self._waiting_ids.add(block.block_id)
        self._pending += 1
        if self._pending > self.stats.max_waiting:
            self.stats.max_waiting = self._pending
        return self._commit(self._release_below_bar())

    def _release_below_bar(self) -> list[Block]:
        ranks = self._frontier_ranks
        low_rank = min(ranks)
        bar = (low_rank + 1, ranks.index(low_rank))
        heads = self._heads
        runs = self._runs
        ready: list[Block] = []
        while heads and heads[0] < bar:
            head_rank, instance = heappop(heads)
            run = runs[instance]
            if not run or run[0][0] != head_rank:
                # Stale entry left behind by an out-of-order front insert;
                # the valid (smaller) entry for this instance is also queued.
                continue
            _, _, _, block = run.popleft()
            if run:
                heappush(heads, (run[0][0], instance))
            self._waiting_ids.discard(block.block_id)
            self._ordered_ids.add(block.block_id)
            self._pending -= 1
            ready.append(block)
        return ready
