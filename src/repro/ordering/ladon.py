"""Ladon's dynamic global ordering algorithm (Appendix A, Algorithm 3).

Blocks carry a *rank* assigned by their leader at proposal time; the rank is
monotone with respect to every block the leader had already seen delivered.
Honest replicas order blocks by ``(rank, instance index)``.  A delivered block
can be globally confirmed as soon as its ordering index falls below the
``bar``: the smallest ordering index any *future* block could still take,
which is derived from the last delivered block of each instance.

A straggler instance no longer blocks the log proportionally to its backlog —
each block it finally delivers carries a recent (large) rank, which pushes the
bar forward and releases everything the fast instances accumulated.
"""

from __future__ import annotations

import heapq
import itertools

from repro.ledger.blocks import Block
from repro.ordering.base import GlobalOrderer, OrderingIndex


class LadonGlobalOrderer(GlobalOrderer):
    """Rank-based global ordering used by Ladon and by Orthrus's global log."""

    def __init__(self, num_instances: int) -> None:
        super().__init__(num_instances)
        #: Waiting set ``W`` as a min-heap keyed by ordering index, so each
        #: delivery releases blocks in ``O(released * log W)``.
        self._waiting: list[tuple[OrderingIndex, int, int, Block]] = []
        self._waiting_ids: set[tuple[int, int]] = set()
        self._ordered_ids: set[tuple[int, int]] = set()
        self._tiebreak = itertools.count()
        #: Ordering index of the last delivered block per instance (the
        #: frontier ``P'``); instances that have not delivered yet sit at
        #: rank 0, which is below any assigned rank (ranks start at 1).
        self._frontier: list[OrderingIndex] = [
            OrderingIndex(rank=0, instance=i) for i in range(num_instances)
        ]

    def pending_count(self) -> int:
        return len(self._waiting)

    def current_bar(self) -> OrderingIndex:
        """The lowest ordering index a future block could still receive.

        A future block from instance ``i`` carries a rank strictly above
        ``frontier[i].rank`` (per-instance ranks are strictly increasing), so
        the smallest index instance ``i`` can still produce is
        ``(frontier[i].rank + 1, i)`` and the bar is the minimum over all
        instances.  Because ``(r, i) -> (r + 1, i)`` is strictly monotone
        under the lexicographic ``(rank, instance)`` order, taking
        ``min(frontier)`` first and adding one afterwards computes exactly
        that minimum — including the case where two instance frontiers tie on
        rank, where the tie breaks towards the lower instance index on both
        sides.  A waiting block can never *equal* the bar (delivering the
        ``(rank + 1, i_min)`` block would have advanced ``frontier[i_min]``
        past it), so releasing strictly below the bar is exact; this boundary
        is property-tested against a brute-force reference orderer in
        ``tests/properties/test_ordering_properties.py``.
        """
        lowest = min(self._frontier)
        return OrderingIndex(rank=lowest.rank + 1, instance=lowest.instance)

    def on_deliver(self, block: Block) -> list[Block]:
        self.stats.blocks_received += 1
        if block.is_noop:
            self.stats.noop_blocks += 1
        if block.block_id in self._waiting_ids or block.block_id in self._ordered_ids:
            return []
        index = OrderingIndex.of(block)
        if index <= self._frontier[block.instance]:
            # Rank regression: the safety precondition (strictly increasing
            # per-instance ranks) was violated upstream.  Count it so fault
            # tests and operators can detect the protocol violation — the
            # block is still ordered deterministically from this replica's
            # point of view, but cross-replica agreement is no longer
            # guaranteed for it.
            self.stats.rank_regressions += 1
        heapq.heappush(
            self._waiting,
            (index, block.sequence_number, next(self._tiebreak), block),
        )
        self._waiting_ids.add(block.block_id)
        self._frontier[block.instance] = max(self._frontier[block.instance], index)
        self.stats.max_waiting = max(self.stats.max_waiting, len(self._waiting))
        return self._commit(self._release_below_bar())

    def _release_below_bar(self) -> list[Block]:
        bar = self.current_bar()
        ready: list[Block] = []
        while self._waiting and self._waiting[0][0] < bar:
            _, _, _, block = heapq.heappop(self._waiting)
            self._waiting_ids.discard(block.block_id)
            self._ordered_ids.add(block.block_id)
            ready.append(block)
        return ready
