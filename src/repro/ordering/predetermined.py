"""Pre-determined global ordering (ISS, Mir-BFT, RCC).

These protocols fix every block's global position before consensus runs:
block ``sn`` of instance ``i`` occupies global position ``sn * m + i`` (the
round-robin interleaving the ISS paper calls the *global sequence*).  A block
can only be globally ordered — and hence executed — once every block at a
lower position has been delivered, so a single straggler instance leaves a
gap that stalls the entire global log (the behaviour Fig. 1 and Fig. 3c/d
quantify).

ISS mitigates *faulty* leaders by letting replicas agree on no-op blocks to
fill abandoned slots; that mechanism lives in the protocol layer and shows up
here simply as the delivery of an empty block for the gap position.
"""

from __future__ import annotations

from repro.ledger.blocks import Block
from repro.ordering.base import BlockConflicts, GlobalOrderer


class PredeterminedGlobalOrderer(GlobalOrderer):
    """Round-robin positional global ordering shared by ISS, Mir-BFT and RCC."""

    def __init__(self, num_instances: int) -> None:
        super().__init__(num_instances)
        self._waiting: dict[int, Block] = {}
        self._next_position = 0

    def global_position(self, block: Block) -> int:
        """Pre-determined position of a block in the global log."""
        return block.sequence_number * self.num_instances + block.instance

    def pending_count(self) -> int:
        return len(self._waiting)

    def next_missing(self) -> tuple[int, int]:
        """(instance, sequence number) of the block blocking the log."""
        instance = self._next_position % self.num_instances
        sequence_number = self._next_position // self.num_instances
        return instance, sequence_number

    def on_deliver(self, block: Block, conflicts: BlockConflicts | None = None) -> list[Block]:
        self._record_arrival(block)
        position = self.global_position(block)
        if position < self._next_position:
            # Duplicate or stale delivery (possible after view changes).
            return []
        self._waiting[position] = block
        self.stats.max_waiting = max(self.stats.max_waiting, len(self._waiting))
        released: list[Block] = []
        while self._next_position in self._waiting:
            released.append(self._waiting.pop(self._next_position))
            self._next_position += 1
        return self._commit(released)
