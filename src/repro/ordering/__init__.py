"""Global-ordering engines: pre-determined, sequencer-based, and rank-based."""

from repro.ordering.base import GlobalOrderer, OrderingIndex, OrderingStats, RankTracker
from repro.ordering.dqbft import DQBFTGlobalOrderer
from repro.ordering.ladon import LadonGlobalOrderer
from repro.ordering.predetermined import PredeterminedGlobalOrderer

__all__ = [
    "DQBFTGlobalOrderer",
    "GlobalOrderer",
    "LadonGlobalOrderer",
    "OrderingIndex",
    "OrderingStats",
    "PredeterminedGlobalOrderer",
    "RankTracker",
]
