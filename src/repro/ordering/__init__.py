"""Global-ordering engines: pre-determined, sequencer, rank and dependency."""

from repro.ordering.base import (
    CROSS_INSTANCE_PREFIX,
    NO_CONFLICTS,
    UNKNOWN_CONFLICTS,
    BlockConflicts,
    GlobalOrderer,
    OrderingIndex,
    OrderingStats,
    RankTracker,
    derive_conflicts,
)
from repro.ordering.dependency import DependencyGlobalOrderer
from repro.ordering.dqbft import DQBFTGlobalOrderer
from repro.ordering.ladon import LadonGlobalOrderer
from repro.ordering.predetermined import PredeterminedGlobalOrderer

__all__ = [
    "CROSS_INSTANCE_PREFIX",
    "NO_CONFLICTS",
    "UNKNOWN_CONFLICTS",
    "BlockConflicts",
    "DQBFTGlobalOrderer",
    "DependencyGlobalOrderer",
    "GlobalOrderer",
    "LadonGlobalOrderer",
    "OrderingIndex",
    "OrderingStats",
    "PredeterminedGlobalOrderer",
    "RankTracker",
    "derive_conflicts",
]
