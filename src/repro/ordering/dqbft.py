"""DQBFT-style global ordering through a dedicated sequencer instance.

DQBFT (Arun & Ravindran, VLDB 2022) decouples ordering from dissemination: a
single designated BFT instance globally orders the identifiers of blocks
delivered by all other instances.  A block therefore becomes globally ordered
when (a) the block itself has been delivered and (b) the sequencer instance
has delivered an ordering decision naming it.  The extra consensus round on
the sequencer adds latency, but a straggler worker instance no longer stalls
unrelated blocks: the sequencer simply orders whatever has been delivered.
"""

from __future__ import annotations

from repro.ledger.blocks import Block
from repro.ordering.base import BlockConflicts, GlobalOrderer


class DQBFTGlobalOrderer(GlobalOrderer):
    """Sequencer-decision global ordering."""

    def __init__(self, num_instances: int, sequencer_instance: int = 0) -> None:
        super().__init__(num_instances)
        self.sequencer_instance = sequencer_instance
        self._delivered: dict[tuple[int, int], Block] = {}
        self._decision_queue: list[tuple[int, int]] = []
        self._decided: set[tuple[int, int]] = set()

    def pending_count(self) -> int:
        return len(self._delivered) + len(self._decision_queue)

    def on_deliver(self, block: Block, conflicts: BlockConflicts | None = None) -> list[Block]:
        """A worker instance delivered ``block``; hold it until decided."""
        self._record_arrival(block)
        self._delivered[block.block_id] = block
        return self._drain()

    def on_order_decision(self, block_ids: list[tuple[int, int]]) -> list[Block]:
        """The sequencer instance delivered an ordering decision.

        Args:
            block_ids: (instance, sequence number) pairs in decision order.

        Returns:
            Blocks that became globally ordered as a result.
        """
        for block_id in block_ids:
            if block_id in self._decided:
                continue
            self._decided.add(block_id)
            self._decision_queue.append(block_id)
        return self._drain()

    def _drain(self) -> list[Block]:
        released: list[Block] = []
        while self._decision_queue and self._decision_queue[0] in self._delivered:
            block_id = self._decision_queue.pop(0)
            released.append(self._delivered.pop(block_id))
        self.stats.max_waiting = max(self.stats.max_waiting, len(self._delivered))
        return self._commit(released)
