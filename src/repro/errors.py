"""Exception hierarchy for the Orthrus reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Sub-hierarchies mirror the package layout:
simulation, networking, ledger/escrow, consensus, and configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with an invalid delay."""


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class UnknownNodeError(NetworkError):
    """A message was addressed to a node that is not registered."""


class LedgerError(ReproError):
    """Base class for ledger/data-model errors."""


class ValidationError(LedgerError):
    """A transaction or block failed structural or signature validation."""


class InsufficientFundsError(LedgerError):
    """An escrow or debit would violate the object's condition (``con``)."""


class EscrowError(LedgerError):
    """The escrow log was driven through an invalid state transition."""


class UnknownObjectError(LedgerError):
    """An operation referenced an object key absent from the state store."""


class ConsensusError(ReproError):
    """Base class for sequenced-broadcast / ordering errors."""


class NotLeaderError(ConsensusError):
    """A replica attempted a leader-only action while being a backup."""


class OrderingError(ConsensusError):
    """The global-ordering engine detected an inconsistency."""


class ViewChangeError(ConsensusError):
    """A view change could not be completed."""


class WorkloadError(ReproError):
    """The workload generator was given unusable parameters."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""
