"""Protocol registry: build any of the six evaluated cores by name."""

from __future__ import annotations

from typing import Callable

from repro.core.blocking import BlockingOrthrusCore
from repro.core.config import CoreConfig
from repro.core.interfaces import ConsensusCore
from repro.core.orthrus import DependencyOrthrusCore, OrthrusCore
from repro.errors import ConfigurationError
from repro.ledger.state import StateStore
from repro.protocols.dqbft import DQBFTCore
from repro.protocols.iss import ISSCore
from repro.protocols.ladon import LadonCore
from repro.protocols.mirbft import MirBFTCore
from repro.protocols.rcc import RCCCore

#: Factories keyed by the protocol names used throughout the paper's figures.
_FACTORIES: dict[str, Callable[[CoreConfig, StateStore | None], ConsensusCore]] = {
    "orthrus": lambda config, store: OrthrusCore(config, store),
    "iss": lambda config, store: ISSCore(config, store),
    "rcc": lambda config, store: RCCCore(config, store),
    "mir": lambda config, store: MirBFTCore(config, store),
    "dqbft": lambda config, store: DQBFTCore(config, store),
    "ladon": lambda config, store: LadonCore(config, store),
    # Orthrus with the dependency-aware global orderer: non-conflicting
    # blocks release without waiting for Ladon's bar (see docs/ordering.md).
    "orthrus-dep": lambda config, store: DependencyOrthrusCore(config, store),
    # Ablation variant (not a paper baseline): Orthrus without the
    # non-blocking escrow interaction between contracts and payments.
    "orthrus-blocking": lambda config, store: BlockingOrthrusCore(config, store),
}

#: Canonical listing order used by figures and reports (paper protocols only).
PROTOCOL_NAMES: tuple[str, ...] = ("orthrus", "iss", "rcc", "mir", "dqbft", "ladon")

#: Variants exposed on the CLI and live path beyond the paper's six
#: (figures keep iterating :data:`PROTOCOL_NAMES` so their outputs are
#: untouched by new variants).
EXTRA_PROTOCOL_NAMES: tuple[str, ...] = ("orthrus-dep",)


def available_protocols() -> list[str]:
    """Names accepted by :func:`build_core` and exposed on the CLI."""
    return [*PROTOCOL_NAMES, *EXTRA_PROTOCOL_NAMES]


def build_core(
    name: str, config: CoreConfig, store: StateStore | None = None
) -> ConsensusCore:
    """Instantiate the consensus core for ``name``.

    Raises:
        ConfigurationError: For unknown protocol names.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(_FACTORIES)}"
        ) from exc
    return factory(config, store)
