"""ISS (Stathakopoulou et al., EuroSys 2022) baseline core.

ISS partitions the request space into buckets, runs one PBFT-style instance
per leader and interleaves the delivered blocks into a pre-determined global
sequence.  A leader that cannot fill its slots delivers no-op blocks so the
global log keeps advancing across epochs; the trait flags below tell the
cluster driver to emit those fillers after the failure-detection timeout
instead of forcing a full epoch change.
"""

from __future__ import annotations

from repro.protocols.base import PredeterminedExecutionCore


class ISSCore(PredeterminedExecutionCore):
    """ISS: pre-determined global ordering with no-op gap filling."""

    name = "iss"
    epoch_change_on_fault = False
    fills_gaps_with_noops = True
