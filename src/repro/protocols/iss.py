"""ISS (Stathakopoulou et al., EuroSys 2022) baseline core.

ISS partitions the request space into buckets, runs one PBFT-style instance
per leader and interleaves the delivered blocks into a pre-determined global
sequence.  A leader that cannot fill its slots delivers no-op blocks so the
global log keeps advancing across epochs; the trait flags below tell the
cluster driver to emit those fillers after the failure-detection timeout
instead of forcing a full epoch change.
"""

from __future__ import annotations

from repro.core.config import CoreConfig
from repro.ledger.state import StateStore
from repro.ordering.predetermined import PredeterminedGlobalOrderer
from repro.protocols.base import GlobalExecutionCore


class ISSCore(GlobalExecutionCore):
    """ISS: pre-determined global ordering with no-op gap filling."""

    name = "iss"
    predetermined_ordering = True
    epoch_change_on_fault = False
    fills_gaps_with_noops = True

    def __init__(self, config: CoreConfig, store: StateStore | None = None) -> None:
        super().__init__(
            config,
            store,
            global_orderer=PredeterminedGlobalOrderer(config.num_instances),
        )
