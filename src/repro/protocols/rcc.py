"""RCC (Gupta et al., ICDE 2021) baseline core.

RCC runs concurrent consensus instances and, like ISS and Mir-BFT, assigns
blocks pre-determined positions in the global sequence.  Its contribution is
an optimised recovery mechanism, which the cluster driver models as a shorter
per-fault recovery penalty; the ordering behaviour itself matches the other
pre-determined protocols, which is why the paper's no-fault curves for ISS,
RCC and Mir almost coincide.
"""

from __future__ import annotations

from repro.protocols.base import PredeterminedExecutionCore


class RCCCore(PredeterminedExecutionCore):
    """RCC: pre-determined ordering with optimised recovery."""

    name = "rcc"
    epoch_change_on_fault = False
    fills_gaps_with_noops = True
    fast_recovery = True
