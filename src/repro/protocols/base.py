"""Baseline Multi-BFT cores: execute everything at global-ordering time.

ISS, Mir-BFT, RCC, DQBFT and Ladon differ in *how* blocks obtain their global
position (pre-determined positions, a sequencer instance, or dynamic ranks),
but they all share the execution discipline Orthrus relaxes: a transaction is
only executed once its block is globally ordered and every earlier position
has been executed.  :class:`GlobalExecutionCore` captures that shared
behaviour; the per-protocol subclasses plug in the right global orderer and
the fault-handling traits the evaluation section exercises.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import CoreConfig
from repro.core.interfaces import ConsensusCore
from repro.core.outcomes import ConfirmationPath, TxOutcome, TxStatus
from repro.core.partition import Partitioner, TransactionPartitioner
from repro.ledger.blocks import Block
from repro.ledger.objects import ObjectType, OperationKind
from repro.ledger.state import StateStore
from repro.ledger.transactions import Transaction
from repro.ordering.base import GlobalOrderer, derive_conflicts
from repro.ordering.predetermined import PredeterminedGlobalOrderer


class GlobalExecutionCore(ConsensusCore):
    """Shared baseline behaviour: sequential execution in global-log order."""

    name = "global-execution"
    #: Pre-determined-ordering protocols stall on gaps left by stragglers.
    predetermined_ordering = False
    #: Whether a detected fault forces an epoch change (Mir-BFT's weakness).
    epoch_change_on_fault = False

    def __init__(
        self,
        config: CoreConfig,
        store: StateStore | None = None,
        *,
        global_orderer: GlobalOrderer,
        partitioner: Partitioner | None = None,
    ) -> None:
        store = store if store is not None else StateStore()
        super().__init__(
            config=config,
            store=store,
            partitioner=partitioner or TransactionPartitioner(config.num_instances),
            global_orderer=global_orderer,
        )
        self._execution_queue: deque[Block] = deque()
        self.global_confirmations = 0
        self.pending_checkpoints: list = []

    # -- delivery entry point --------------------------------------------------

    def on_block_delivered(self, block: Block) -> list[TxOutcome]:
        self._record_delivery(block)
        if not self.plogs[block.instance].add(block):
            return []
        self.plogs[block.instance].advance()
        self.frontier.advance(block.instance, block.sequence_number)
        self.epochs.record_processed(block.instance, block.sequence_number)
        if self.global_orderer.wants_conflicts:
            conflicts = derive_conflicts(block, self.partitioner.assign_object)
            newly_ordered = self.global_orderer.on_deliver(block, conflicts)
        else:
            newly_ordered = self.global_orderer.on_deliver(block)
        self._execution_queue.extend(newly_ordered)
        outcomes = self._drain_execution_queue()
        self.pending_checkpoints.extend(self._maybe_complete_epochs())
        return outcomes

    def _drain_execution_queue(self) -> list[TxOutcome]:
        outcomes: list[TxOutcome] = []
        while self._execution_queue:
            block = self._execution_queue.popleft()
            for tx in block.transactions:
                outcome = self._execute_tx(tx, block.instance)
                if outcome is not None:
                    outcomes.append(outcome)
        return outcomes

    # -- sequential execution ----------------------------------------------------

    def _execute_tx(self, tx: Transaction, instance: int) -> TxOutcome | None:
        if self.status_of(tx.tx_id).terminal:
            return None
        # All-or-nothing: verify every debit is covered before applying any.
        for operation in tx.decrement_operations():
            self.store.get_or_create(operation.key, ObjectType.OWNED)
            if not self.store.can_debit(operation.key, operation.amount):
                self._set_status(tx, TxStatus.REJECTED)
                return TxOutcome(
                    tx=tx,
                    status=TxStatus.REJECTED,
                    path=ConfirmationPath.GLOBAL,
                    instance=instance,
                    reason=f"insufficient funds on {operation.key!r}",
                )
        for operation in tx.operations:
            self._apply(operation)
        self._set_status(tx, TxStatus.COMMITTED)
        self.global_confirmations += 1
        return TxOutcome(
            tx=tx,
            status=TxStatus.COMMITTED,
            path=ConfirmationPath.GLOBAL,
            instance=instance,
        )

    def _apply(self, operation) -> None:
        self.store.get_or_create(operation.key, operation.object_type)
        if operation.kind is OperationKind.DECREMENT:
            self.store.debit(operation.key, operation.amount)
        elif operation.kind is OperationKind.INCREMENT:
            self.store.credit(operation.key, operation.amount)
        elif operation.kind is OperationKind.ASSIGN:
            self.store.assign(operation.key, operation.amount)
        elif operation.kind is OperationKind.CONTRACT_CALL:
            current = self.store.balance_of(operation.key)
            self.store.assign(operation.key, current * 31 + operation.amount)


class PredeterminedExecutionCore(GlobalExecutionCore):
    """Shared wiring for the pre-determined-position protocols.

    ISS, Mir-BFT and RCC all interleave blocks into the round-robin global
    sequence; they differ only in fault-handling traits.  Subclasses set the
    trait flags and inherit the orderer wiring from here instead of each
    re-instantiating :class:`PredeterminedGlobalOrderer`.
    """

    predetermined_ordering = True

    def __init__(self, config: CoreConfig, store: StateStore | None = None) -> None:
        super().__init__(
            config,
            store,
            global_orderer=PredeterminedGlobalOrderer(config.num_instances),
        )
