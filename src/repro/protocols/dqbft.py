"""DQBFT (Arun & Ravindran, VLDB 2022) baseline core.

DQBFT decouples dissemination from ordering: worker instances disseminate and
locally order blocks, while one designated BFT instance globally sequences the
identifiers of delivered blocks.  The core therefore consumes two inputs: the
delivered blocks themselves and the sequencer's ordering decisions, which the
cluster driver delivers one sequencer-consensus-round after each block.
"""

from __future__ import annotations

from repro.core.config import CoreConfig
from repro.core.outcomes import TxOutcome
from repro.ledger.blocks import Block
from repro.ledger.state import StateStore
from repro.ordering.dqbft import DQBFTGlobalOrderer
from repro.protocols.base import GlobalExecutionCore


class DQBFTCore(GlobalExecutionCore):
    """DQBFT: global ordering by a dedicated sequencer instance."""

    name = "dqbft"
    predetermined_ordering = False
    epoch_change_on_fault = False
    uses_sequencer = True

    def __init__(
        self,
        config: CoreConfig,
        store: StateStore | None = None,
        *,
        sequencer_instance: int = 0,
    ) -> None:
        orderer = DQBFTGlobalOrderer(config.num_instances, sequencer_instance)
        super().__init__(config, store, global_orderer=orderer)
        self.sequencer_instance = sequencer_instance

    def on_sequencer_decision(self, block_ids: list[tuple[int, int]]) -> list[TxOutcome]:
        """Feed an ordering decision delivered by the sequencer instance."""
        orderer: DQBFTGlobalOrderer = self.global_orderer  # type: ignore[assignment]
        newly_ordered = orderer.on_order_decision(block_ids)
        self._execution_queue.extend(newly_ordered)
        return self._drain_execution_queue()

    def on_block_delivered(self, block: Block) -> list[TxOutcome]:
        # Identical to the base class; kept explicit for readability: blocks
        # wait in the orderer until the sequencer decision names them.
        return super().on_block_delivered(block)
