"""Baseline Multi-BFT protocol cores and the protocol registry."""

from repro.protocols.base import GlobalExecutionCore, PredeterminedExecutionCore
from repro.protocols.dqbft import DQBFTCore
from repro.protocols.iss import ISSCore
from repro.protocols.ladon import LadonCore
from repro.protocols.mirbft import MirBFTCore
from repro.protocols.rcc import RCCCore
from repro.protocols.registry import PROTOCOL_NAMES, available_protocols, build_core

__all__ = [
    "DQBFTCore",
    "GlobalExecutionCore",
    "ISSCore",
    "LadonCore",
    "MirBFTCore",
    "PROTOCOL_NAMES",
    "PredeterminedExecutionCore",
    "RCCCore",
    "available_protocols",
    "build_core",
]
