"""Ladon (Lyu et al., EuroSys 2025) baseline core.

Ladon replaces pre-determined global positions with monotonic ranks
(Algorithm 3), which lets fast instances' blocks be globally ordered without
waiting for a straggler's backlog.  Execution, however, still happens only in
global-log order — the difference Orthrus exploits with its partial path.
"""

from __future__ import annotations

from repro.core.config import CoreConfig
from repro.ledger.state import StateStore
from repro.ordering.ladon import LadonGlobalOrderer
from repro.protocols.base import GlobalExecutionCore


class LadonCore(GlobalExecutionCore):
    """Ladon: dynamic rank-based global ordering, sequential execution."""

    name = "ladon"
    predetermined_ordering = False
    epoch_change_on_fault = False
    uses_ranks = True

    def __init__(self, config: CoreConfig, store: StateStore | None = None) -> None:
        super().__init__(
            config,
            store,
            global_orderer=LadonGlobalOrderer(config.num_instances),
        )
