"""Mir-BFT (Stathakopoulou et al., JSys 2022) baseline core.

Mir-BFT introduced the bucket-rotation Multi-BFT design ISS later refined.
Its global ordering is pre-determined like ISS's, but a faulty or slow leader
triggers a full epoch change (leader-set reconfiguration), which is the reason
the paper's experiments show Mir suffering the largest latency penalty when a
straggler is present.
"""

from __future__ import annotations

from repro.protocols.base import PredeterminedExecutionCore


class MirBFTCore(PredeterminedExecutionCore):
    """Mir-BFT: pre-determined ordering, epoch change on detected faults."""

    name = "mir"
    epoch_change_on_fault = True
    fills_gaps_with_noops = False
