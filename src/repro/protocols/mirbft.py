"""Mir-BFT (Stathakopoulou et al., JSys 2022) baseline core.

Mir-BFT introduced the bucket-rotation Multi-BFT design ISS later refined.
Its global ordering is pre-determined like ISS's, but a faulty or slow leader
triggers a full epoch change (leader-set reconfiguration), which is the reason
the paper's experiments show Mir suffering the largest latency penalty when a
straggler is present.
"""

from __future__ import annotations

from repro.core.config import CoreConfig
from repro.ledger.state import StateStore
from repro.ordering.predetermined import PredeterminedGlobalOrderer
from repro.protocols.base import GlobalExecutionCore


class MirBFTCore(GlobalExecutionCore):
    """Mir-BFT: pre-determined ordering, epoch change on detected faults."""

    name = "mir"
    predetermined_ordering = True
    epoch_change_on_fault = True
    fills_gaps_with_noops = False

    def __init__(self, config: CoreConfig, store: StateStore | None = None) -> None:
        super().__init__(
            config,
            store,
            global_orderer=PredeterminedGlobalOrderer(config.num_instances),
        )
