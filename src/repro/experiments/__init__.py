"""Experiment harness: figure scenarios, result rows and text reporting."""

from repro.experiments.reporting import (
    breakdown_table,
    fault_timeline_table,
    format_table,
    proportion_table,
    relative_change,
    scalability_table,
    undetectable_table,
)
from repro.experiments.results import (
    BreakdownResult,
    FaultTimeline,
    ProportionPoint,
    ScalabilityPoint,
    TimelinePoint,
    UndetectableFaultPoint,
)
from repro.experiments.scenarios import (
    ScenarioScale,
    detectable_fault_timelines,
    latency_breakdown,
    payment_proportion_sweep,
    scalability_sweep,
    undetectable_fault_sweep,
)

__all__ = [
    "BreakdownResult",
    "FaultTimeline",
    "ProportionPoint",
    "ScalabilityPoint",
    "ScenarioScale",
    "TimelinePoint",
    "UndetectableFaultPoint",
    "breakdown_table",
    "detectable_fault_timelines",
    "fault_timeline_table",
    "format_table",
    "latency_breakdown",
    "payment_proportion_sweep",
    "proportion_table",
    "relative_change",
    "scalability_sweep",
    "scalability_table",
    "undetectable_fault_sweep",
    "undetectable_table",
]
