"""Live backend for the experiment engine.

Translates a declarative :class:`~repro.experiments.engine.ScenarioSpec`
(``backend="live"``) into a real localhost cluster run: the spec's
:class:`~repro.experiments.engine.FaultSpec` becomes the cluster's
:class:`~repro.cluster.faults.FaultPlan` (applied through
:mod:`repro.runtime.chaos`), the workload knobs configure the load
generator, and the resulting :class:`~repro.metrics.summary.RunMetrics`
flows back through the same tables and figures as a simulator cell.

Semantics that differ from the simulator, by necessity:

* ``environment`` is ignored — the network is the loopback device.
* ``duration`` selects the *offered load*: the open-loop generator submits
  ``duration * LIVE_OPEN_LOOP_TPS`` transactions at that rate, so a fault
  scheduled at ``t`` seconds hits mid-run just like in the simulator.
* Results are wall-clock measurements: nondeterministic, never cached.
"""

from __future__ import annotations

import asyncio

from repro.experiments.engine import ScenarioSpec
from repro.metrics.summary import RunMetrics
from repro.runtime.chaos import run_chaos
from repro.runtime.client import ClientConfig
from repro.runtime.cluster import ClusterSpec
from repro.runtime.loadgen import LoadGenConfig
from repro.workload.config import WorkloadConfig

#: Open-loop submission rate used to translate a spec's duration into a
#: transaction budget.  Modest on purpose: the live backend's job is fault
#: behaviour at paper-shaped load, not peak localhost throughput.
LIVE_OPEN_LOOP_TPS = 200.0

#: Accounts in the live genesis universe (kept small so per-run genesis
#: population does not dominate short runs).
LIVE_NUM_ACCOUNTS = 1024

#: Leader batch cadence for live runs (20 ms keeps commit latency well under
#: any realistic crash/view-change timescale).
LIVE_BATCH_INTERVAL = 0.02


def live_cluster_spec(spec: ScenarioSpec) -> ClusterSpec:
    """The :class:`ClusterSpec` a scenario deploys as."""
    plan = spec.faults.to_plan()
    return ClusterSpec(
        num_replicas=spec.num_replicas,
        protocol=spec.protocol,
        batch_interval=LIVE_BATCH_INTERVAL,
        view_change_timeout=plan.view_change_timeout,
        workload=WorkloadConfig(
            num_accounts=LIVE_NUM_ACCOUNTS,
            seed=spec.resolved_workload_seed,
            payment_fraction=spec.payment_fraction,
            zipf_exponent=spec.zipf_s,
        ),
        faults=plan,
    )


def live_load_config(spec: ScenarioSpec) -> LoadGenConfig:
    """The load-generation run a scenario translates to."""
    transactions = max(50, int(spec.duration * LIVE_OPEN_LOOP_TPS))
    return LoadGenConfig(
        transactions=transactions,
        mode="open",
        rate_tps=LIVE_OPEN_LOOP_TPS,
        workload=WorkloadConfig(
            num_accounts=LIVE_NUM_ACCOUNTS,
            seed=spec.resolved_workload_seed,
            payment_fraction=spec.payment_fraction,
            zipf_exponent=spec.zipf_s,
        ),
        client=ClientConfig(
            client_id=1000,
            # Submissions caught in a crashed leader's instance must survive
            # the view-change window, so each attempt outlasts the plan's
            # failure-detector timeout with margin for the NewView exchange
            # and re-proposal (same policy as ``repro chaos``).
            timeout=max(5.0, spec.faults.view_change_timeout + 3.0),
            retries=3,
        ),
    )


def run_live_spec(spec: ScenarioSpec) -> RunMetrics:
    """Execute one live-backend spec and return simulator-shaped metrics."""
    result = asyncio.run(run_chaos(live_cluster_spec(spec), live_load_config(spec)))
    report = result.report
    metrics = report.metrics
    metrics.extra.update(
        {
            "live_backend": 1.0,
            "live_submitted": float(report.submitted),
            "live_completed": float(report.completed),
            "live_failed": float(report.failed),
            "live_retransmissions": float(report.retransmissions),
            "live_view_changes": float(result.view_changes),
            "live_digests_agree": 1.0 if report.digests_agree else 0.0,
            "live_unexpected_exits": float(len(result.unexpected_exits)),
            # Non-zero means the run finished before the plan's schedule and
            # the cell does NOT measure the requested faults.
            "live_unfired_actions": float(len(result.unfired_actions)),
        }
    )
    metrics.stage_breakdown.update(report.stage_breakdown)
    return metrics
