"""Plain-text reporting helpers used by benchmarks and examples.

The benchmark harness prints the same rows and series the paper's figures
show; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.engine import ExperimentEngine, RunResult
from repro.experiments.results import (
    BreakdownResult,
    FaultTimeline,
    ProportionPoint,
    ScalabilityPoint,
    UndetectableFaultPoint,
    figure_latency,
)
from repro.metrics.latency import STAGE_NAMES


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [render(list(headers)), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in materialized)
    return "\n".join(lines)


def scalability_table(points: list[ScalabilityPoint]) -> str:
    """Fig. 3 / Fig. 4 style table: protocol x replicas -> throughput, latency."""
    rows = [
        (
            point.protocol,
            point.num_replicas,
            point.stragglers,
            f"{point.throughput_ktps:.1f}",
            f"{point.latency_s:.2f}",
        )
        for point in points
    ]
    return format_table(
        ["protocol", "replicas", "stragglers", "throughput (ktps)", "latency (s)"],
        rows,
    )


def proportion_table(points: list[ProportionPoint]) -> str:
    """Fig. 5 style table."""
    rows = [
        (
            f"{point.payment_proportion * 100:.0f}%",
            point.stragglers,
            f"{point.throughput_ktps:.1f}",
            f"{point.latency_s:.2f}",
        )
        for point in points
    ]
    return format_table(
        ["payments", "stragglers", "throughput (ktps)", "latency (s)"], rows
    )


def breakdown_table(results: list[BreakdownResult]) -> str:
    """Fig. 1b / Fig. 6 style table: per-stage seconds for each protocol."""
    headers = ["protocol", *STAGE_NAMES, "total (s)"]
    rows = []
    for result in results:
        rows.append(
            (
                result.protocol,
                *(f"{result.stages.get(stage, 0.0):.3f}" for stage in STAGE_NAMES),
                f"{result.total_latency_s:.2f}",
            )
        )
    return format_table(headers, rows)


def fault_timeline_table(timelines: list[FaultTimeline], *, stride: int = 4) -> str:
    """Fig. 7 style table: throughput/latency samples over time."""
    headers = ["time (s)"]
    for timeline in timelines:
        headers.append(f"f={timeline.faulty_replicas} ktps")
        headers.append(f"f={timeline.faulty_replicas} lat(s)")
    rows = []
    if timelines:
        length = len(timelines[0].points)
        for index in range(0, length, stride):
            row: list[object] = [f"{timelines[0].points[index].time:.1f}"]
            for timeline in timelines:
                point = timeline.points[index] if index < len(timeline.points) else None
                row.append(f"{point.throughput_ktps:.1f}" if point else "-")
                row.append(f"{point.latency_s:.2f}" if point else "-")
            rows.append(row)
    return format_table(headers, rows)


def undetectable_table(points: list[UndetectableFaultPoint]) -> str:
    """Fig. 8 style table."""
    rows = [
        (
            point.faulty_replicas,
            f"{point.throughput_ktps:.1f}",
            f"{point.latency_s:.2f}",
        )
        for point in points
    ]
    return format_table(["faulty replicas", "throughput (ktps)", "latency (s)"], rows)


def grid_table(results: Sequence[RunResult]) -> str:
    """Generic table over engine result records (``repro grid``).

    One row per grid cell: the spec's coordinates plus the headline metrics.
    """
    rows = []
    for result in results:
        spec = result.spec
        rows.append(
            (
                spec.protocol,
                spec.num_replicas,
                spec.environment,
                spec.faults.summary(),
                f"{spec.payment_fraction * 100:.0f}%",
                spec.seed,
                f"{result.metrics.throughput_ktps:.1f}",
                f"{figure_latency(result.metrics):.2f}",
                "cached" if result.cached else "run",
            )
        )
    return format_table(
        [
            "protocol",
            "replicas",
            "env",
            "faults",
            "payments",
            "seed",
            "throughput (ktps)",
            "latency (s)",
            "source",
        ],
        rows,
    )


def engine_summary(engine: ExperimentEngine) -> str:
    """One-line account of what an engine actually executed vs reused."""
    stats = engine.stats
    return (
        f"{stats.total} cells: {stats.executed} executed, "
        f"{stats.cache_hits} cached, {stats.deduplicated} deduplicated"
    )


def phase_slo_table(phases: Sequence) -> str:
    """Per-fault-phase SLO table (pre/during/post latency + availability).

    ``phases`` is a sequence of :class:`repro.obs.slo.PhaseSLO`.
    """
    rows = []
    for slo in phases:
        rows.append(
            (
                slo.phase,
                f"{slo.duration:.1f}",
                slo.submitted,
                slo.completed,
                slo.committed,
                f"{slo.p50 * 1000:.1f}",
                f"{slo.p99 * 1000:.1f}",
                f"{slo.p999 * 1000:.1f}",
                f"{slo.availability * 100:.1f}%",
                "-" if slo.view_changes is None else slo.view_changes,
                "-"
                if getattr(slo, "regressions", None) is None
                else slo.regressions,
            )
        )
    return format_table(
        [
            "phase",
            "secs",
            "submitted",
            "completed",
            "committed",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "availability",
            "view changes",
            "regressions",
        ],
        rows,
    )


def relative_change(baseline: float, value: float) -> float:
    """Relative change of ``value`` with respect to ``baseline`` (fraction)."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline
