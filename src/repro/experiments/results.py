"""Result row types shared by the experiment scenarios and benchmarks.

Each row type corresponds to one figure of the paper and is constructed from
the engine's :class:`~repro.experiments.engine.RunResult` records via its
``from_result`` classmethod — the spec supplies the grid coordinates and the
metrics supply the measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.engine import RunResult
from repro.metrics.summary import RunMetrics


def figure_latency(metrics: RunMetrics) -> float:
    """Latency statistic reported in the figures (mean end-to-end)."""
    if metrics.latency.count:
        return metrics.latency.mean
    return metrics.confirmation_latency.mean


@dataclass
class ScalabilityPoint:
    """One point of the Fig. 3 / Fig. 4 sweeps."""

    protocol: str
    num_replicas: int
    environment: str
    stragglers: int
    throughput_ktps: float
    latency_s: float
    metrics: RunMetrics | None = field(default=None, repr=False)

    @classmethod
    def from_result(cls, result: RunResult) -> "ScalabilityPoint":
        """Build the figure row from one engine result record."""
        return cls(
            protocol=result.spec.protocol,
            num_replicas=result.spec.num_replicas,
            environment=result.spec.environment,
            stragglers=result.spec.faults.straggler_count,
            throughput_ktps=result.metrics.throughput_ktps,
            latency_s=figure_latency(result.metrics),
            metrics=result.metrics,
        )


@dataclass
class ProportionPoint:
    """One point of the Fig. 5 payment-proportion sweep."""

    payment_proportion: float
    stragglers: int
    throughput_ktps: float
    latency_s: float
    metrics: RunMetrics | None = field(default=None, repr=False)

    @classmethod
    def from_result(cls, result: RunResult) -> "ProportionPoint":
        """Build the figure row from one engine result record."""
        return cls(
            payment_proportion=result.spec.payment_fraction,
            stragglers=result.spec.faults.straggler_count,
            throughput_ktps=result.metrics.throughput_ktps,
            latency_s=figure_latency(result.metrics),
            metrics=result.metrics,
        )


@dataclass
class BreakdownResult:
    """Latency breakdown of one protocol (Fig. 1b / Fig. 6)."""

    protocol: str
    stages: dict[str, float]
    total_latency_s: float

    @classmethod
    def from_result(cls, result: RunResult) -> "BreakdownResult":
        """Build the figure row from one engine result record."""
        return cls(
            protocol=result.spec.protocol,
            stages=result.metrics.stage_breakdown,
            total_latency_s=figure_latency(result.metrics),
        )

    @property
    def global_ordering_share(self) -> float:
        """Fraction of the total spent in the global-ordering stage."""
        total = sum(self.stages.values())
        if total <= 0:
            return 0.0
        return self.stages.get("global_ordering", 0.0) / total


@dataclass
class TimelinePoint:
    """One window of the Fig. 7 time series."""

    time: float
    throughput_ktps: float
    latency_s: float


@dataclass
class FaultTimeline:
    """Fig. 7 series for one fault count."""

    faulty_replicas: int
    points: list[TimelinePoint]

    @classmethod
    def from_result(cls, result: RunResult) -> "FaultTimeline":
        """Build the time series from one engine result record."""
        metrics = result.metrics
        latency_by_window = {
            round(window_start, 3): value
            for window_start, value in metrics.latency_series
        }
        points = [
            TimelinePoint(
                time=point.window_start,
                throughput_ktps=point.rate / 1000.0,
                latency_s=latency_by_window.get(round(point.window_start, 3), 0.0),
            )
            for point in metrics.series
        ]
        return cls(faulty_replicas=result.spec.faults.crash_count, points=points)


@dataclass
class UndetectableFaultPoint:
    """One point of the Fig. 8 sweep."""

    faulty_replicas: int
    throughput_ktps: float
    latency_s: float
    metrics: RunMetrics | None = field(default=None, repr=False)

    @classmethod
    def from_result(cls, result: RunResult) -> "UndetectableFaultPoint":
        """Build the figure row from one engine result record."""
        return cls(
            faulty_replicas=result.spec.faults.undetectable_faults,
            throughput_ktps=result.metrics.throughput_ktps,
            latency_s=figure_latency(result.metrics),
            metrics=result.metrics,
        )
