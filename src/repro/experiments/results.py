"""Result row types shared by the experiment scenarios and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.summary import RunMetrics


@dataclass
class ScalabilityPoint:
    """One point of the Fig. 3 / Fig. 4 sweeps."""

    protocol: str
    num_replicas: int
    environment: str
    stragglers: int
    throughput_ktps: float
    latency_s: float
    metrics: RunMetrics | None = field(default=None, repr=False)


@dataclass
class ProportionPoint:
    """One point of the Fig. 5 payment-proportion sweep."""

    payment_proportion: float
    stragglers: int
    throughput_ktps: float
    latency_s: float
    metrics: RunMetrics | None = field(default=None, repr=False)


@dataclass
class BreakdownResult:
    """Latency breakdown of one protocol (Fig. 1b / Fig. 6)."""

    protocol: str
    stages: dict[str, float]
    total_latency_s: float

    @property
    def global_ordering_share(self) -> float:
        """Fraction of the total spent in the global-ordering stage."""
        total = sum(self.stages.values())
        if total <= 0:
            return 0.0
        return self.stages.get("global_ordering", 0.0) / total


@dataclass
class TimelinePoint:
    """One window of the Fig. 7 time series."""

    time: float
    throughput_ktps: float
    latency_s: float


@dataclass
class FaultTimeline:
    """Fig. 7 series for one fault count."""

    faulty_replicas: int
    points: list[TimelinePoint]


@dataclass
class UndetectableFaultPoint:
    """One point of the Fig. 8 sweep."""

    faulty_replicas: int
    throughput_ktps: float
    latency_s: float
    metrics: RunMetrics | None = field(default=None, repr=False)
