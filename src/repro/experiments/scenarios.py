"""Scenario library: one function per figure of the paper's evaluation.

Every scenario builds :class:`~repro.cluster.pipeline.PipelineConfig` runs,
executes them and returns structured rows that the benchmarks print and that
EXPERIMENTS.md records.  Scenarios accept a ``scale`` knob:

* ``"ci"`` (default) — laptop-sized runs: shorter measurement windows and a
  reduced replica grid, suitable for the benchmark suite.
* ``"paper"`` — the full grid the paper reports (8-128 replicas, longer
  windows); identical code, just more simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.faults import FaultPlan
from repro.cluster.pipeline import PipelineConfig, run_pipeline_experiment
from repro.experiments.results import (
    BreakdownResult,
    FaultTimeline,
    ProportionPoint,
    ScalabilityPoint,
    TimelinePoint,
    UndetectableFaultPoint,
)
from repro.metrics.summary import RunMetrics
from repro.protocols.registry import PROTOCOL_NAMES
from repro.workload.config import WorkloadConfig


@dataclass(frozen=True)
class ScenarioScale:
    """Run-size parameters shared by all scenarios.

    Straggler runs use longer measurement windows: confirmation of globally
    ordered transactions is gated by the straggler's (10x slower) block
    interval, so the window must span several of those intervals for the
    steady-state throughput to be visible.
    """

    replica_counts: tuple[int, ...]
    duration: float
    warmup: float
    samples_per_block: int
    straggler_duration: float
    straggler_warmup: float
    breakdown_replicas: int = 16

    @classmethod
    def named(cls, scale: str) -> "ScenarioScale":
        """Resolve a scale name to concrete parameters."""
        if scale == "paper":
            return cls(
                replica_counts=(8, 16, 32, 64, 128),
                duration=120.0,
                warmup=20.0,
                samples_per_block=16,
                straggler_duration=300.0,
                straggler_warmup=60.0,
            )
        if scale == "ci":
            return cls(
                replica_counts=(8, 16, 32, 64, 128),
                duration=60.0,
                warmup=10.0,
                samples_per_block=4,
                straggler_duration=120.0,
                straggler_warmup=25.0,
            )
        if scale == "smoke":
            return cls(
                replica_counts=(8, 16),
                duration=20.0,
                warmup=4.0,
                samples_per_block=4,
                straggler_duration=40.0,
                straggler_warmup=8.0,
            )
        raise ValueError(f"unknown scale {scale!r}")

    def window_for(self, stragglers: int) -> tuple[float, float]:
        """(duration, warmup) appropriate for the given straggler count."""
        if stragglers:
            return self.straggler_duration, self.straggler_warmup
        return self.duration, self.warmup


def _workload(payment_fraction: float | None = None, seed: int = 42) -> WorkloadConfig:
    config = WorkloadConfig(seed=seed)
    if payment_fraction is not None:
        config = replace(config, payment_fraction=payment_fraction)
    return config


def _base_config(
    protocol: str,
    num_replicas: int,
    environment: str,
    scale: ScenarioScale,
    faults: FaultPlan,
    *,
    payment_fraction: float | None = None,
    seed: int = 1,
) -> PipelineConfig:
    duration, warmup = scale.window_for(faults.straggler_count)
    return PipelineConfig(
        protocol=protocol,
        num_replicas=num_replicas,
        environment=environment,
        samples_per_block=scale.samples_per_block,
        duration=duration,
        warmup=warmup,
        seed=seed,
        workload=_workload(payment_fraction, seed=seed + 41),
        faults=faults,
    )


def _latency_of(metrics: RunMetrics) -> float:
    """Latency statistic reported in the figures (mean end-to-end)."""
    if metrics.latency.count:
        return metrics.latency.mean
    return metrics.confirmation_latency.mean


# -- Fig. 3 / Fig. 4: throughput and latency vs replica count ---------------------


def scalability_sweep(
    environment: str,
    *,
    stragglers: int = 0,
    protocols: tuple[str, ...] = PROTOCOL_NAMES,
    scale: str = "ci",
    seed: int = 1,
) -> list[ScalabilityPoint]:
    """Reproduce one panel of Fig. 3 (WAN) or Fig. 4 (LAN)."""
    scale_params = ScenarioScale.named(scale)
    fault_plan = (
        FaultPlan.with_straggler(instance=1) if stragglers else FaultPlan.none()
    )
    points: list[ScalabilityPoint] = []
    for num_replicas in scale_params.replica_counts:
        for protocol in protocols:
            config = _base_config(
                protocol, num_replicas, environment, scale_params, fault_plan, seed=seed
            )
            metrics = run_pipeline_experiment(config)
            points.append(
                ScalabilityPoint(
                    protocol=protocol,
                    num_replicas=num_replicas,
                    environment=environment,
                    stragglers=stragglers,
                    throughput_ktps=metrics.throughput_ktps,
                    latency_s=_latency_of(metrics),
                    metrics=metrics,
                )
            )
    return points


# -- Fig. 5: payment-proportion sweep -----------------------------------------------


def payment_proportion_sweep(
    *,
    stragglers: int = 0,
    proportions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 3,
) -> list[ProportionPoint]:
    """Reproduce Fig. 5: Orthrus under varying payment proportions (WAN)."""
    scale_params = ScenarioScale.named(scale)
    fault_plan = (
        FaultPlan.with_straggler(instance=1) if stragglers else FaultPlan.none()
    )
    points: list[ProportionPoint] = []
    for proportion in proportions:
        config = _base_config(
            "orthrus",
            num_replicas,
            "wan",
            scale_params,
            fault_plan,
            payment_fraction=proportion,
            seed=seed,
        )
        metrics = run_pipeline_experiment(config)
        points.append(
            ProportionPoint(
                payment_proportion=proportion,
                stragglers=stragglers,
                throughput_ktps=metrics.throughput_ktps,
                latency_s=_latency_of(metrics),
                metrics=metrics,
            )
        )
    return points


# -- Fig. 1b / Fig. 6: latency breakdown ----------------------------------------------


def latency_breakdown(
    *,
    protocols: tuple[str, ...] = ("orthrus", "iss"),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 5,
) -> list[BreakdownResult]:
    """Reproduce Fig. 6 (and Fig. 1b for ISS): five-stage latency breakdown."""
    scale_params = ScenarioScale.named(scale)
    fault_plan = FaultPlan.with_straggler(instance=1)
    results: list[BreakdownResult] = []
    for protocol in protocols:
        config = _base_config(
            protocol, num_replicas, "wan", scale_params, fault_plan, seed=seed
        )
        metrics = run_pipeline_experiment(config)
        results.append(
            BreakdownResult(
                protocol=protocol,
                stages=metrics.stage_breakdown,
                total_latency_s=_latency_of(metrics),
            )
        )
    return results


# -- Fig. 7: detectable faults over time -----------------------------------------------


def detectable_fault_timelines(
    *,
    fault_counts: tuple[int, ...] = (0, 1, 5),
    num_replicas: int = 16,
    fault_time: float = 9.0,
    duration: float = 35.0,
    scale: str = "ci",
    seed: int = 11,
) -> list[FaultTimeline]:
    """Reproduce Fig. 7: Orthrus throughput/latency over time under crashes."""
    scale_params = ScenarioScale.named(scale)
    timelines: list[FaultTimeline] = []
    for count in fault_counts:
        faults = (
            FaultPlan.with_crashes(list(range(count)), fault_time)
            if count
            else FaultPlan.none()
        )
        config = PipelineConfig(
            protocol="orthrus",
            num_replicas=num_replicas,
            environment="wan",
            samples_per_block=scale_params.samples_per_block,
            duration=duration,
            warmup=0.0,
            epoch_blocks=8,
            seed=seed,
            workload=_workload(seed=seed + 17),
            faults=faults,
        )
        metrics = run_pipeline_experiment(config)
        latency_by_window = {
            round(window_start, 3): value
            for window_start, value in metrics.latency_series
        }
        points = [
            TimelinePoint(
                time=point.window_start,
                throughput_ktps=point.rate / 1000.0,
                latency_s=latency_by_window.get(round(point.window_start, 3), 0.0),
            )
            for point in metrics.series
        ]
        timelines.append(FaultTimeline(faulty_replicas=count, points=points))
    return timelines


# -- Fig. 8: undetectable faults ------------------------------------------------------------


def undetectable_fault_sweep(
    *,
    fault_counts: tuple[int, ...] = (0, 1, 2, 3, 4, 5),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 13,
) -> list[UndetectableFaultPoint]:
    """Reproduce Fig. 8: Orthrus under undetectable Byzantine abstention."""
    scale_params = ScenarioScale.named(scale)
    points: list[UndetectableFaultPoint] = []
    for count in fault_counts:
        config = _base_config(
            "orthrus",
            num_replicas,
            "wan",
            scale_params,
            FaultPlan.with_undetectable(count),
            seed=seed,
        )
        metrics = run_pipeline_experiment(config)
        points.append(
            UndetectableFaultPoint(
                faulty_replicas=count,
                throughput_ktps=metrics.throughput_ktps,
                latency_s=_latency_of(metrics),
                metrics=metrics,
            )
        )
    return points
