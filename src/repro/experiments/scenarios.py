"""Scenario library: one function per figure of the paper's evaluation.

Every scenario is now a thin grid definition over the unified experiment
engine: it expands declarative :class:`~repro.experiments.engine.ScenarioSpec`
cells (shared with :mod:`repro.experiments.registry`), executes them through
an :class:`~repro.experiments.engine.ExperimentEngine` and adapts the result
records into the figure row types.  Pass an engine to parallelise the grid
(``jobs=N``) or to reuse cached cells across overlapping figures; without one
each call runs serially and uncached, exactly as before.

Scenarios accept a ``scale`` knob (see :class:`ScenarioScale`): ``"ci"`` for
laptop-sized runs, ``"paper"`` for the full grid the paper reports and
``"smoke"`` for quick sanity runs.
"""

from __future__ import annotations

from repro.experiments.engine import ExperimentEngine, ScenarioSpec
from repro.experiments.registry import (
    breakdown_specs,
    detectable_fault_specs,
    proportion_specs,
    scalability_specs,
    undetectable_fault_specs,
)
from repro.experiments.results import (
    BreakdownResult,
    FaultTimeline,
    ProportionPoint,
    ScalabilityPoint,
    UndetectableFaultPoint,
)
from repro.experiments.scale import ScenarioScale
from repro.protocols.registry import PROTOCOL_NAMES

__all__ = [
    "ScenarioScale",
    "detectable_fault_timelines",
    "latency_breakdown",
    "payment_proportion_sweep",
    "scalability_sweep",
    "undetectable_fault_sweep",
]


def _run(
    specs: list[ScenarioSpec], engine: ExperimentEngine | None
) -> list:
    """Execute specs through the given engine (serial/uncached by default)."""
    return (engine or ExperimentEngine()).run(specs)


# -- Fig. 3 / Fig. 4: throughput and latency vs replica count ---------------------


def scalability_sweep(
    environment: str,
    *,
    stragglers: int = 0,
    protocols: tuple[str, ...] = PROTOCOL_NAMES,
    scale: str = "ci",
    seed: int = 1,
    engine: ExperimentEngine | None = None,
) -> list[ScalabilityPoint]:
    """Reproduce one panel of Fig. 3 (WAN) or Fig. 4 (LAN)."""
    specs = scalability_specs(
        environment,
        stragglers=stragglers,
        protocols=protocols,
        scale=scale,
        seed=seed,
    )
    return [ScalabilityPoint.from_result(r) for r in _run(specs, engine)]


# -- Fig. 5: payment-proportion sweep -----------------------------------------------


def payment_proportion_sweep(
    *,
    stragglers: int = 0,
    proportions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 3,
    engine: ExperimentEngine | None = None,
) -> list[ProportionPoint]:
    """Reproduce Fig. 5: Orthrus under varying payment proportions (WAN)."""
    specs = proportion_specs(
        stragglers=stragglers,
        proportions=proportions,
        num_replicas=num_replicas,
        scale=scale,
        seed=seed,
    )
    return [ProportionPoint.from_result(r) for r in _run(specs, engine)]


# -- Fig. 1b / Fig. 6: latency breakdown ----------------------------------------------


def latency_breakdown(
    *,
    protocols: tuple[str, ...] = ("orthrus", "iss"),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 5,
    engine: ExperimentEngine | None = None,
) -> list[BreakdownResult]:
    """Reproduce Fig. 6 (and Fig. 1b for ISS): five-stage latency breakdown."""
    specs = breakdown_specs(
        protocols=protocols, num_replicas=num_replicas, scale=scale, seed=seed
    )
    return [BreakdownResult.from_result(r) for r in _run(specs, engine)]


# -- Fig. 7: detectable faults over time -----------------------------------------------


def detectable_fault_timelines(
    *,
    fault_counts: tuple[int, ...] = (0, 1, 5),
    num_replicas: int = 16,
    fault_time: float = 9.0,
    duration: float = 35.0,
    scale: str = "ci",
    seed: int = 11,
    engine: ExperimentEngine | None = None,
) -> list[FaultTimeline]:
    """Reproduce Fig. 7: Orthrus throughput/latency over time under crashes."""
    specs = detectable_fault_specs(
        fault_counts=fault_counts,
        num_replicas=num_replicas,
        fault_time=fault_time,
        duration=duration,
        scale=scale,
        seed=seed,
    )
    return [FaultTimeline.from_result(r) for r in _run(specs, engine)]


# -- Fig. 8: undetectable faults ------------------------------------------------------------


def undetectable_fault_sweep(
    *,
    fault_counts: tuple[int, ...] = (0, 1, 2, 3, 4, 5),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 13,
    engine: ExperimentEngine | None = None,
) -> list[UndetectableFaultPoint]:
    """Reproduce Fig. 8: Orthrus under undetectable Byzantine abstention."""
    specs = undetectable_fault_specs(
        fault_counts=fault_counts, num_replicas=num_replicas, scale=scale, seed=seed
    )
    return [UndetectableFaultPoint.from_result(r) for r in _run(specs, engine)]
