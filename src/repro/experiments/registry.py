"""Declarative scenario registry: named grids over the experiment engine.

Each of the paper's figures is a *grid* — a cartesian family of
:class:`~repro.experiments.engine.ScenarioSpec` cells.  This module keeps the
grid definitions in one declarative place so the CLI (``repro grid``), the
scenario library and the benchmark suite all expand the exact same specs, and
overlapping grids (e.g. Fig. 3 and the headline-claims table) hit the same
cache entries.

Grids are expanded for a named :class:`ScenarioScale` (``smoke``, ``ci`` or
``paper``); custom grids can be registered with :func:`register_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.experiments.engine import FaultSpec, ScenarioSpec
from repro.experiments.scale import ScenarioScale
from repro.protocols.registry import PROTOCOL_NAMES

# -- spec builders (shared by the scenario library and the named grids) -----------

#: Protocols covered by the head-to-head grids.  The paper's six baselines
#: plus the dependency-ordered Orthrus variant; figure rendering keeps using
#: the plain ``PROTOCOL_NAMES`` defaults so published figure data is
#: unaffected by the extra series.
GRID_PROTOCOLS: tuple[str, ...] = (*PROTOCOL_NAMES, "orthrus-dep")


def scalability_specs(
    environment: str,
    *,
    stragglers: int = 0,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    scale: str = "ci",
    seed: int = 1,
) -> list[ScenarioSpec]:
    """Fig. 3 / Fig. 4 cells: protocol x replica count for one environment."""
    scale_params = ScenarioScale.named(scale)
    faults = FaultSpec.with_straggler(instance=1) if stragglers else FaultSpec.none()
    duration, warmup = scale_params.window_for(faults.straggler_count)
    return [
        ScenarioSpec(
            protocol=protocol,
            num_replicas=num_replicas,
            environment=environment,
            duration=duration,
            warmup=warmup,
            samples_per_block=scale_params.samples_per_block,
            seed=seed,
            faults=faults,
        )
        for num_replicas in scale_params.replica_counts
        for protocol in protocols
    ]


def proportion_specs(
    *,
    stragglers: int = 0,
    proportions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 3,
) -> list[ScenarioSpec]:
    """Fig. 5 cells: Orthrus under varying payment proportions (WAN)."""
    scale_params = ScenarioScale.named(scale)
    faults = FaultSpec.with_straggler(instance=1) if stragglers else FaultSpec.none()
    duration, warmup = scale_params.window_for(faults.straggler_count)
    return [
        ScenarioSpec(
            protocol="orthrus",
            num_replicas=num_replicas,
            environment="wan",
            duration=duration,
            warmup=warmup,
            samples_per_block=scale_params.samples_per_block,
            seed=seed,
            payment_fraction=proportion,
            faults=faults,
        )
        for proportion in proportions
    ]


def breakdown_specs(
    *,
    protocols: Sequence[str] = ("orthrus", "iss"),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 5,
) -> list[ScenarioSpec]:
    """Fig. 1b / Fig. 6 cells: latency breakdown under one straggler."""
    scale_params = ScenarioScale.named(scale)
    faults = FaultSpec.with_straggler(instance=1)
    duration, warmup = scale_params.window_for(faults.straggler_count)
    return [
        ScenarioSpec(
            protocol=protocol,
            num_replicas=num_replicas,
            environment="wan",
            duration=duration,
            warmup=warmup,
            samples_per_block=scale_params.samples_per_block,
            seed=seed,
            faults=faults,
        )
        for protocol in protocols
    ]


def detectable_fault_specs(
    *,
    fault_counts: Sequence[int] = (0, 1, 5),
    num_replicas: int = 16,
    fault_time: float = 9.0,
    duration: float = 35.0,
    scale: str = "ci",
    seed: int = 11,
) -> list[ScenarioSpec]:
    """Fig. 7 cells: throughput/latency over time under leader crashes."""
    scale_params = ScenarioScale.named(scale)
    return [
        ScenarioSpec(
            protocol="orthrus",
            num_replicas=num_replicas,
            environment="wan",
            duration=duration,
            warmup=0.0,
            samples_per_block=scale_params.samples_per_block,
            epoch_blocks=8,
            seed=seed,
            workload_seed=seed + 17,
            faults=(
                FaultSpec.with_crashes(list(range(count)), fault_time)
                if count
                else FaultSpec.none()
            ),
        )
        for count in fault_counts
    ]


def undetectable_fault_specs(
    *,
    fault_counts: Sequence[int] = (0, 1, 2, 3, 4, 5),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 13,
) -> list[ScenarioSpec]:
    """Fig. 8 cells: Orthrus under undetectable Byzantine abstention."""
    scale_params = ScenarioScale.named(scale)
    duration, warmup = scale_params.window_for(0)
    return [
        ScenarioSpec(
            protocol="orthrus",
            num_replicas=num_replicas,
            environment="wan",
            duration=duration,
            warmup=warmup,
            samples_per_block=scale_params.samples_per_block,
            seed=seed,
            faults=FaultSpec.with_undetectable(count),
        )
        for count in fault_counts
    ]


def partition_specs(
    *,
    protocols: Sequence[str] = ("ladon", "orthrus-dep"),
    durations: Sequence[float] = (2.0, 4.0),
    wans: Sequence[str | None] = (None, "wan"),
    num_replicas: int = 4,
    partition_at: float = 3.0,
    scale: str = "ci",
    seed: int = 19,
) -> list[ScenarioSpec]:
    """Fig. 7-style live cells: minority partition duration x WAN matrix.

    Live backend only — the simulator has no partition semantics.  Each
    cell isolates the last replica (a minority, so quorums survive) for
    ``duration`` seconds starting at ``partition_at``, optionally under WAN
    per-destination delays, and measures availability and client-observed
    consistency through the partition and the heal.
    """
    scale_params = ScenarioScale.named(scale)
    return [
        ScenarioSpec(
            protocol=protocol,
            num_replicas=num_replicas,
            environment="wan",
            backend="live",
            # The run must outlive the heal plus the catch-up settle window,
            # or the heal-side assertions measure a truncated episode.
            duration=partition_at + duration + 6.0,
            warmup=0.0,
            samples_per_block=scale_params.samples_per_block,
            seed=seed,
            workload_seed=seed + 17,
            faults=FaultSpec.with_partition(
                partition_at,
                ((num_replicas - 1,),),
                duration,
                wan=wan,
                view_change_timeout=2.0,
            ),
        )
        for duration in durations
        for wan in wans
        for protocol in protocols
    ]


def comparison_specs(
    *,
    num_replicas: int = 16,
    environment: str = "wan",
    stragglers: int = 0,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    scale: str = "ci",
    seed: int = 1,
) -> list[ScenarioSpec]:
    """One cell per protocol at a fixed cluster size (``repro compare``)."""
    scale_params = ScenarioScale.named(scale)
    faults = FaultSpec.with_straggler(instance=1) if stragglers else FaultSpec.none()
    duration, warmup = scale_params.window_for(faults.straggler_count)
    return [
        ScenarioSpec(
            protocol=protocol,
            num_replicas=num_replicas,
            environment=environment,
            duration=duration,
            warmup=warmup,
            samples_per_block=scale_params.samples_per_block,
            seed=seed,
            faults=faults,
        )
        for protocol in protocols
    ]


# -- the registry -------------------------------------------------------------------


@dataclass(frozen=True)
class GridDefinition:
    """A named, scale-parameterised family of scenario specs."""

    name: str
    description: str
    build: Callable[[str], list[ScenarioSpec]]

    def expand(self, scale: str = "ci") -> list[ScenarioSpec]:
        """Expand the grid into concrete specs at the given scale."""
        return self.build(scale)


_GRIDS: dict[str, GridDefinition] = {}


def register_grid(
    name: str,
    description: str,
    build: Callable[[str], list[ScenarioSpec]],
) -> GridDefinition:
    """Register (or replace) a named grid and return its definition."""
    definition = GridDefinition(name=name, description=description, build=build)
    _GRIDS[name] = definition
    return definition


def grid_names() -> list[str]:
    """Registered grid names, in registration order."""
    return list(_GRIDS)


def grid(name: str) -> GridDefinition:
    """Look up a registered grid.

    Raises:
        ConfigurationError: For unknown grid names.
    """
    try:
        return _GRIDS[name]
    except KeyError:
        known = ", ".join(sorted(_GRIDS)) or "none"
        raise ConfigurationError(
            f"unknown grid {name!r} (registered: {known})"
        ) from None


def expand_grid(name: str, scale: str = "ci") -> list[ScenarioSpec]:
    """Expand a registered grid into concrete specs."""
    return grid(name).expand(scale)


def _both_straggler_panels(build: Callable[..., list[ScenarioSpec]], *args, **kwargs):
    def expand(scale: str) -> list[ScenarioSpec]:
        specs: list[ScenarioSpec] = []
        for stragglers in (0, 1):
            specs.extend(build(*args, stragglers=stragglers, scale=scale, **kwargs))
        return specs

    return expand


def bar_cost_specs(
    *,
    stragglers: int = 0,
    protocols: Sequence[str] = ("ladon", "orthrus", "orthrus-dep"),
    zipf_exponents: Sequence[float | None] = (None, 1.2),
    num_replicas: int = 16,
    scale: str = "ci",
    seed: int = 7,
) -> list[ScenarioSpec]:
    """Head-to-head cells isolating the cost of Ladon's global bar.

    Compares bar-gated global ordering (``ladon``, ``orthrus``) against
    dependency-gated release (``orthrus-dep``) at a fixed cluster size,
    across account-skew levels: higher Zipf ``s`` concentrates conflicts on
    hot keys, which is exactly where bar waits and dependency waits diverge.
    """
    scale_params = ScenarioScale.named(scale)
    faults = FaultSpec.with_straggler(instance=1) if stragglers else FaultSpec.none()
    duration, warmup = scale_params.window_for(faults.straggler_count)
    return [
        ScenarioSpec(
            protocol=protocol,
            num_replicas=num_replicas,
            environment="wan",
            duration=duration,
            warmup=warmup,
            samples_per_block=scale_params.samples_per_block,
            seed=seed,
            zipf_s=zipf_s,
            faults=faults,
        )
        for zipf_s in zipf_exponents
        for protocol in protocols
    ]


register_grid(
    "fig3",
    "WAN scalability: protocol x replicas, with and without a straggler",
    _both_straggler_panels(scalability_specs, "wan", protocols=GRID_PROTOCOLS),
)
register_grid(
    "fig4",
    "LAN scalability: protocol x replicas, with and without a straggler",
    _both_straggler_panels(scalability_specs, "lan", protocols=GRID_PROTOCOLS),
)
register_grid(
    "barcost",
    "Bar vs dependency release: ladon/orthrus/orthrus-dep x Zipf skew, both panels",
    _both_straggler_panels(bar_cost_specs),
)
register_grid(
    "fig5",
    "Payment-proportion sweep (Orthrus, WAN, 16 replicas), both panels",
    _both_straggler_panels(proportion_specs),
)
register_grid(
    "fig6",
    "Five-stage latency breakdown, Orthrus vs ISS under a straggler",
    lambda scale: breakdown_specs(scale=scale),
)
register_grid(
    "fig7",
    "Detectable faults over time: 0/1/5 leader crashes at t=9s",
    lambda scale: detectable_fault_specs(scale=scale),
)
register_grid(
    "fig8",
    "Undetectable Byzantine abstention: 0-5 faulty replicas",
    lambda scale: undetectable_fault_specs(scale=scale),
)
register_grid(
    "partition",
    "Live minority partitions: duration x WAN emulation, ladon vs orthrus-dep",
    lambda scale: partition_specs(scale=scale),
)
register_grid(
    "compare",
    "All six protocols once at 16 replicas (WAN)",
    lambda scale: comparison_specs(scale=scale),
)
