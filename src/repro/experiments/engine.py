"""Unified experiment engine: declarative specs, parallel execution, caching.

The paper's evaluation is a large grid of simulation runs (protocol x
replicas x environment x fault plan x workload).  This module gives that grid
a substrate:

* :class:`ScenarioSpec` — one run described declaratively.  Specs are frozen,
  hashable and serialise to canonical JSON, so a run is identified by the
  SHA-256 of its parameters rather than by the code path that produced it.
* :class:`ExperimentEngine` — executes batches of specs, optionally across a
  ``multiprocessing`` worker pool (``jobs=N``) and optionally backed by a
  JSON result cache (``cache_dir=...``).  Each spec embeds its own seeds, so
  parallel execution produces results identical to serial execution, and
  overlapping grids (e.g. the Fig. 3 sweep and the headline-claims table)
  share cells instead of re-simulating them.

The figure scenarios in :mod:`repro.experiments.scenarios` and the named
grids in :mod:`repro.experiments.registry` are thin layers over this engine.
"""

from __future__ import annotations

import functools
import hashlib
import json
import multiprocessing
import os
import pathlib
import sys
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Iterable, Sequence

from repro.cluster.faults import (
    PAPER_STRAGGLER_SLOWDOWN,
    PAPER_VIEW_CHANGE_TIMEOUT,
    FaultPlan,
)
from repro.cluster.pipeline import PipelineConfig, run_pipeline_experiment
from repro.metrics.latency import LatencySummary
from repro.metrics.summary import RunMetrics
from repro.metrics.throughput import ThroughputPoint
from repro.workload.config import (
    DEFAULT_ZIPF_EXPONENT,
    PAPER_PAYMENT_FRACTION,
    WorkloadConfig,
)

#: Bumped whenever the cache file format changes.
ENGINE_VERSION = 1


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the ``repro`` package's source files.

    Stored with every cached result and checked on load, so editing any
    simulation code automatically invalidates stale cells — a spec hash alone
    only identifies the *inputs* of a run, not the code that produced it.
    (Conservative by design: comment-only edits also invalidate.)
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class FaultSpec:
    """Hashable, declarative counterpart of :class:`FaultPlan`.

    ``FaultPlan`` holds mutable dicts; a spec must be hashable and serialise
    canonically, so degradations are stored as sorted tuples instead.
    """

    stragglers: tuple[tuple[int, float], ...] = ()
    crashes: tuple[tuple[int, float], ...] = ()
    restarts: tuple[tuple[int, float], ...] = ()
    partitions: tuple[tuple[float, tuple[tuple[int, ...], ...], float], ...] = ()
    oneway_drops: tuple[tuple[float, int, int, float], ...] = ()
    wan: str | tuple[tuple[float, ...], ...] | None = None
    expect_stall: bool = False
    view_change_timeout: float = PAPER_VIEW_CHANGE_TIMEOUT
    recovery_delay: float = 0.5
    undetectable_faults: int = 0
    retransmit_penalty_per_fault: float = 0.5

    @classmethod
    def none(cls) -> "FaultSpec":
        """A spec with no degradations."""
        return cls()

    @classmethod
    def with_straggler(
        cls, instance: int = 0, slowdown: float = PAPER_STRAGGLER_SLOWDOWN
    ) -> "FaultSpec":
        """The paper's standard one-straggler plan."""
        return cls(stragglers=((instance, slowdown),))

    @classmethod
    def with_crashes(
        cls,
        replicas: Sequence[int],
        at_time: float,
        *,
        view_change_timeout: float = PAPER_VIEW_CHANGE_TIMEOUT,
    ) -> "FaultSpec":
        """Crash ``replicas`` simultaneously at ``at_time`` (Fig. 7)."""
        return cls(
            crashes=tuple(sorted((replica, at_time) for replica in replicas)),
            view_change_timeout=view_change_timeout,
        )

    @classmethod
    def with_undetectable(cls, count: int) -> "FaultSpec":
        """``count`` undetectable Byzantine replicas (Fig. 8)."""
        return cls(undetectable_faults=count)

    @classmethod
    def with_partition(
        cls,
        at: float,
        groups: Sequence[Sequence[int]],
        duration: float,
        *,
        wan: str | tuple[tuple[float, ...], ...] | None = None,
        expect_stall: bool = False,
        view_change_timeout: float = PAPER_VIEW_CHANGE_TIMEOUT,
    ) -> "FaultSpec":
        """One symmetric partition healed after ``duration`` (live only)."""
        return cls(
            partitions=(
                (
                    float(at),
                    tuple(tuple(int(r) for r in group) for group in groups),
                    float(duration),
                ),
            ),
            wan=wan,
            expect_stall=expect_stall,
            view_change_timeout=view_change_timeout,
        )

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "FaultSpec":
        """Convert a runtime :class:`FaultPlan` into a declarative spec."""
        return cls(
            stragglers=tuple(sorted(plan.stragglers.items())),
            crashes=tuple(sorted(plan.crashes.items())),
            restarts=tuple(sorted(plan.restarts.items())),
            partitions=plan.partitions,
            oneway_drops=plan.oneway_drops,
            wan=plan.wan,
            expect_stall=plan.expect_stall,
            view_change_timeout=plan.view_change_timeout,
            recovery_delay=plan.recovery_delay,
            undetectable_faults=plan.undetectable_faults,
            retransmit_penalty_per_fault=plan.retransmit_penalty_per_fault,
        )

    def to_plan(self) -> FaultPlan:
        """Materialise the runtime :class:`FaultPlan` the cluster consumes."""
        return FaultPlan(
            stragglers=dict(self.stragglers),
            crashes=dict(self.crashes),
            restarts=dict(self.restarts),
            partitions=self.partitions,
            oneway_drops=self.oneway_drops,
            wan=self.wan,
            expect_stall=self.expect_stall,
            view_change_timeout=self.view_change_timeout,
            recovery_delay=self.recovery_delay,
            undetectable_faults=self.undetectable_faults,
            retransmit_penalty_per_fault=self.retransmit_penalty_per_fault,
        )

    @property
    def straggler_count(self) -> int:
        """Number of stragglers in the spec."""
        return len(self.stragglers)

    @property
    def crash_count(self) -> int:
        """Number of crashing replicas in the spec."""
        return len(self.crashes)

    def summary(self) -> str:
        """Short human-readable description used in tables."""
        parts = []
        if self.stragglers:
            parts.append(f"straggler x{len(self.stragglers)}")
        if self.crashes:
            parts.append(f"crash x{len(self.crashes)}")
        if self.restarts:
            parts.append(f"restart x{len(self.restarts)}")
        if self.partitions:
            parts.append(f"partition x{len(self.partitions)}")
        if self.oneway_drops:
            parts.append(f"drop x{len(self.oneway_drops)}")
        if self.wan is not None:
            parts.append("wan" if isinstance(self.wan, str) else "wan-matrix")
        if self.undetectable_faults:
            parts.append(f"byzantine x{self.undetectable_faults}")
        return "+".join(parts) if parts else "none"


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment run.

    A spec captures everything that determines a run's outcome — protocol,
    cluster size, environment, measurement window, fault plan, workload knobs
    and seeds — and nothing else.  Two equal specs are guaranteed to produce
    equal :class:`RunMetrics` (the simulator is deterministic), which is what
    makes spec-hash caching sound.

    Attributes:
        workload_seed: Seed of the synthetic workload.  ``None`` derives the
            scenario library's convention of ``seed + 41``.
        payment_fraction: The workload's payment share (Fig. 5); ``None``
            resolves to the trace default of 0.46.
        backend: ``"sim"`` runs the deterministic simulator (the default and
            the reference semantics); ``"live"`` spawns a real asyncio TCP
            cluster on localhost and drives it with the load generator, with
            the same :class:`FaultSpec` applied through
            :mod:`repro.runtime.chaos`.  Live results are nondeterministic
            and therefore never cached.
    """

    protocol: str = "orthrus"
    num_replicas: int = 16
    environment: str = "wan"
    duration: float = 40.0
    warmup: float = 5.0
    samples_per_block: int = 8
    seed: int = 1
    workload_seed: int | None = None
    payment_fraction: float | None = None
    zipf_s: float | None = None
    epoch_blocks: int | None = None
    faults: FaultSpec = FaultSpec()
    backend: str = "sim"

    def __post_init__(self) -> None:
        # Canonicalise derived defaults at construction, so semantically
        # identical runs compare, hash, deduplicate and cache identically
        # (e.g. ``workload_seed=None`` vs the explicit ``seed + 41`` it
        # resolves to).
        if self.workload_seed is None:
            object.__setattr__(self, "workload_seed", self.seed + 41)
        if self.payment_fraction is None:
            object.__setattr__(self, "payment_fraction", PAPER_PAYMENT_FRACTION)
        if self.zipf_s is None:
            object.__setattr__(self, "zipf_s", DEFAULT_ZIPF_EXPONENT)
        if self.backend not in ("sim", "live"):
            raise ValueError(f"unknown backend {self.backend!r} (sim or live)")

    # -- derived views ---------------------------------------------------------

    @property
    def resolved_workload_seed(self) -> int:
        """The workload seed actually used (always resolved post-init)."""
        return self.workload_seed

    def workload_config(self) -> WorkloadConfig:
        """The workload configuration this spec describes."""
        return WorkloadConfig(
            seed=self.workload_seed,
            payment_fraction=self.payment_fraction,
            zipf_exponent=self.zipf_s,
        )

    def pipeline_config(self) -> PipelineConfig:
        """Materialise the :class:`PipelineConfig` the cluster driver runs."""
        return PipelineConfig(
            protocol=self.protocol,
            num_replicas=self.num_replicas,
            environment=self.environment,
            samples_per_block=self.samples_per_block,
            duration=self.duration,
            warmup=self.warmup,
            epoch_blocks=self.epoch_blocks,
            seed=self.seed,
            workload=self.workload_config(),
            faults=self.faults.to_plan(),
        )

    def label(self) -> str:
        """Short human-readable identifier used in tables and logs."""
        parts = [self.protocol, f"n{self.num_replicas}", self.environment]
        if self.backend != "sim":
            parts.append(self.backend)
        if self.payment_fraction != PAPER_PAYMENT_FRACTION:
            parts.append(f"pay{self.payment_fraction:.0%}")
        if self.zipf_s != DEFAULT_ZIPF_EXPONENT:
            parts.append(f"zipf{self.zipf_s:g}")
        faults = self.faults.summary()
        if faults != "none":
            parts.append(faults)
        parts.append(f"s{self.seed}")
        return "/".join(parts)

    # -- canonical serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-compatible representation."""
        data = asdict(self)
        data["faults"] = {
            "stragglers": [list(pair) for pair in self.faults.stragglers],
            "crashes": [list(pair) for pair in self.faults.crashes],
            "restarts": [list(pair) for pair in self.faults.restarts],
            "view_change_timeout": self.faults.view_change_timeout,
            "recovery_delay": self.faults.recovery_delay,
            "undetectable_faults": self.faults.undetectable_faults,
            "retransmit_penalty_per_fault": self.faults.retransmit_penalty_per_fault,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        faults = payload.pop("faults", {})
        return cls(
            faults=FaultSpec(
                stragglers=tuple(
                    (int(i), float(s)) for i, s in faults.get("stragglers", [])
                ),
                crashes=tuple(
                    (int(i), float(t)) for i, t in faults.get("crashes", [])
                ),
                restarts=tuple(
                    (int(i), float(t)) for i, t in faults.get("restarts", [])
                ),
                view_change_timeout=float(
                    faults.get("view_change_timeout", PAPER_VIEW_CHANGE_TIMEOUT)
                ),
                recovery_delay=float(faults.get("recovery_delay", 0.5)),
                undetectable_faults=int(faults.get("undetectable_faults", 0)),
                retransmit_penalty_per_fault=float(
                    faults.get("retransmit_penalty_per_fault", 0.5)
                ),
            ),
            **payload,
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, no whitespace variance)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @property
    def spec_hash(self) -> str:
        """Stable identity of the run: SHA-256 of the canonical JSON."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


@dataclass
class RunResult:
    """One executed (or cache-loaded) cell of an experiment grid."""

    spec: ScenarioSpec
    metrics: RunMetrics
    cached: bool = field(default=False, compare=False)


# -- metrics serialisation ---------------------------------------------------------


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Flatten a :class:`RunMetrics` into JSON-compatible data."""
    return {
        "duration": metrics.duration,
        "throughput_tps": metrics.throughput_tps,
        "latency": asdict(metrics.latency),
        "confirmation_latency": asdict(metrics.confirmation_latency),
        "stage_breakdown": dict(metrics.stage_breakdown),
        "confirmed": metrics.confirmed,
        "committed": metrics.committed,
        "rejected": metrics.rejected,
        "partial_path": metrics.partial_path,
        "global_path": metrics.global_path,
        "series": [asdict(point) for point in metrics.series],
        "latency_series": [list(entry) for entry in metrics.latency_series],
        "extra": dict(metrics.extra),
    }


def metrics_from_dict(data: dict) -> RunMetrics:
    """Inverse of :func:`metrics_to_dict` (exact float round-trip)."""
    return RunMetrics(
        duration=data["duration"],
        throughput_tps=data["throughput_tps"],
        latency=LatencySummary(**data["latency"]),
        confirmation_latency=LatencySummary(**data["confirmation_latency"]),
        stage_breakdown=dict(data["stage_breakdown"]),
        confirmed=data["confirmed"],
        committed=data["committed"],
        rejected=data["rejected"],
        partial_path=data["partial_path"],
        global_path=data["global_path"],
        series=[ThroughputPoint(**point) for point in data["series"]],
        latency_series=[
            (entry[0], entry[1]) for entry in data["latency_series"]
        ],
        extra=dict(data["extra"]),
    )


# -- execution ----------------------------------------------------------------------


def run_spec(spec: ScenarioSpec) -> RunMetrics:
    """Execute one spec synchronously in the current process."""
    if spec.backend == "live":
        # Imported lazily: sim-only workflows must not pull in asyncio or
        # the runtime stack (and the import is cyclic at module level).
        from repro.experiments.live import run_live_spec

        return run_live_spec(spec)
    return run_pipeline_experiment(spec.pipeline_config())


def _worker_run(spec_json: str) -> tuple[str, RunMetrics]:
    """Worker-pool entry point: execute one spec identified by its JSON."""
    spec = ScenarioSpec.from_json(spec_json)
    return spec.spec_hash, run_spec(spec)


@dataclass
class EngineStats:
    """Execution counters of one :class:`ExperimentEngine` instance."""

    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0

    @property
    def total(self) -> int:
        """Cells served (executed + cache hits + duplicates)."""
        return self.executed + self.cache_hits + self.deduplicated


class ExperimentEngine:
    """Executes batches of :class:`ScenarioSpec`, with caching and fan-out.

    Args:
        cache_dir: Directory for per-spec JSON result files (``None``
            disables caching).  Files are keyed by ``spec_hash``, so any mix
            of grids may share one cache.
        jobs: Worker processes for cache misses.  ``1`` runs serially in the
            current process; higher values fan out with ``multiprocessing``.
            Results are identical either way — every spec carries its own
            seeds and runs on a private simulator.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        jobs: int = 1,
        live_runner=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            # Fail fast on an unusable cache directory, before any (possibly
            # hours-long) simulation work is invested.
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = jobs
        #: Callable executing one ``backend="live"`` spec; defaults to
        #: :func:`repro.experiments.live.run_live_spec` (resolved lazily) and
        #: is injectable so tests can exercise the dispatch without sockets.
        self.live_runner = live_runner
        self.stats = EngineStats()
        self._cache_write_warned = False

    # -- cache ------------------------------------------------------------------

    def _cache_path(self, spec: ScenarioSpec) -> pathlib.Path | None:
        if self.cache_dir is None or spec.backend != "sim":
            # Live runs are nondeterministic: serving yesterday's wall-clock
            # measurement as today's result would be silently wrong, so only
            # simulator cells are ever cached.
            return None
        return self.cache_dir / f"{spec.spec_hash}.json"

    def _load_cached(self, spec: ScenarioSpec) -> RunMetrics | None:
        path = self._cache_path(spec)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("engine_version") != ENGINE_VERSION:
            return None
        if payload.get("code_fingerprint") != code_fingerprint():
            return None
        # Guard against hash collisions and stale formats: the stored spec
        # must round-trip to the one being requested.
        try:
            if ScenarioSpec.from_dict(payload["spec"]) != spec:
                return None
            return metrics_from_dict(payload["metrics"])
        except (KeyError, TypeError, ValueError, IndexError):
            # Any malformed payload is a cache miss, never a crash.
            return None

    def _store_cached(self, spec: ScenarioSpec, metrics: RunMetrics) -> None:
        path = self._cache_path(spec)
        if path is None:
            return
        payload = json.dumps(
            {
                "engine_version": ENGINE_VERSION,
                "code_fingerprint": code_fingerprint(),
                "spec": spec.to_dict(),
                "metrics": metrics_to_dict(metrics),
            },
            sort_keys=True,
        )
        # A failed cache write must never discard the simulated result, but
        # it should not pass silently either (the user believes re-runs will
        # be free); warn once per engine and carry on uncached.
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic write: concurrent engines may share a cache directory.
            handle, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, path)
        except OSError as error:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if not self._cache_write_warned:
                self._cache_write_warned = True
                print(
                    f"warning: result cache write failed ({error}); "
                    "continuing without caching",
                    file=sys.stderr,
                )

    # -- running ------------------------------------------------------------------

    def run_one(self, spec: ScenarioSpec) -> RunResult:
        """Execute (or load) a single spec."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[ScenarioSpec]) -> list[RunResult]:
        """Execute a batch of specs, preserving input order.

        Duplicate specs within the batch are simulated once.  Cached cells
        are loaded instead of executed; fresh results are written back to the
        cache before returning.
        """
        unique: dict[str, ScenarioSpec] = {}
        for spec in specs:
            unique.setdefault(spec.spec_hash, spec)
        self.stats.deduplicated += len(specs) - len(unique)

        resolved: dict[str, RunMetrics] = {}
        misses: list[ScenarioSpec] = []
        for key, spec in unique.items():
            cached = self._load_cached(spec)
            if cached is not None:
                resolved[key] = cached
                self.stats.cache_hits += 1
            else:
                misses.append(spec)

        fresh: set[str] = set()
        for key, metrics in self._execute(misses):
            resolved[key] = metrics
            fresh.add(key)
            self.stats.executed += 1
            self._store_cached(unique[key], metrics)

        return [
            RunResult(
                spec=spec,
                metrics=resolved[spec.spec_hash],
                cached=spec.spec_hash not in fresh,
            )
            for spec in specs
        ]

    def _run_live(self, spec: ScenarioSpec) -> RunMetrics:
        runner = self.live_runner
        if runner is None:
            from repro.experiments.live import run_live_spec

            runner = run_live_spec
        return runner(spec)

    def _execute(
        self, specs: list[ScenarioSpec]
    ) -> Iterable[tuple[str, RunMetrics]]:
        if not specs:
            return []
        # Live specs run serially in this process: each one already spawns a
        # whole cluster of OS processes, and concurrent clusters on one host
        # would contend for CPU and corrupt each other's measurements.
        live = [spec for spec in specs if spec.backend == "live"]
        sims = [spec for spec in specs if spec.backend != "live"]
        results = [(spec.spec_hash, self._run_live(spec)) for spec in live]
        if not sims:
            return results
        if self.jobs == 1 or len(sims) == 1:
            return results + [(spec.spec_hash, run_spec(spec)) for spec in sims]
        workers = min(self.jobs, len(sims))
        with multiprocessing.Pool(processes=workers) as pool:
            return results + pool.map(
                _worker_run, [spec.to_json() for spec in sims]
            )
