"""Named run-size presets shared by every scenario grid.

* ``"ci"`` (default) — laptop-sized runs: shorter measurement windows and a
  reduced replica grid, suitable for the benchmark suite.
* ``"paper"`` — the full grid the paper reports (8-128 replicas, longer
  windows); identical code, just more simulated time.
* ``"smoke"`` — minutes-long sanity runs (reduced replica grid).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scale names accepted by :meth:`ScenarioScale.named` (and the CLI).
SCALE_NAMES: tuple[str, ...] = ("smoke", "ci", "paper")


@dataclass(frozen=True)
class ScenarioScale:
    """Run-size parameters shared by all scenarios.

    Straggler runs use longer measurement windows: confirmation of globally
    ordered transactions is gated by the straggler's (10x slower) block
    interval, so the window must span several of those intervals for the
    steady-state throughput to be visible.
    """

    replica_counts: tuple[int, ...]
    duration: float
    warmup: float
    samples_per_block: int
    straggler_duration: float
    straggler_warmup: float
    breakdown_replicas: int = 16

    @classmethod
    def named(cls, scale: str) -> "ScenarioScale":
        """Resolve a scale name to concrete parameters."""
        if scale == "paper":
            return cls(
                replica_counts=(8, 16, 32, 64, 128),
                duration=120.0,
                warmup=20.0,
                samples_per_block=16,
                straggler_duration=300.0,
                straggler_warmup=60.0,
            )
        if scale == "ci":
            return cls(
                replica_counts=(8, 16, 32, 64, 128),
                duration=60.0,
                warmup=10.0,
                samples_per_block=4,
                straggler_duration=120.0,
                straggler_warmup=25.0,
            )
        if scale == "smoke":
            return cls(
                replica_counts=(8, 16),
                duration=20.0,
                warmup=4.0,
                samples_per_block=4,
                straggler_duration=40.0,
                straggler_warmup=8.0,
            )
        raise ValueError(f"unknown scale {scale!r}")

    def window_for(self, stragglers: int) -> tuple[float, float]:
        """(duration, warmup) appropriate for the given straggler count."""
        if stragglers:
            return self.straggler_duration, self.straggler_warmup
        return self.duration, self.warmup
