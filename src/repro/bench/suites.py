"""The named benchmark suites behind ``repro bench``.

Each benchmark is a plain function returning a :class:`BenchResult`.  Micro
benchmarks auto-calibrate an inner loop until one timed repeat exceeds a
minimum wall-clock budget and report the *best* repeat (the standard
minimum-of-k estimator: the fastest observation has the least scheduler
noise).  The two end-to-end benchmarks (fig3-small simulation wall-clock and
the live localhost cluster) run once — they are long enough that a single
observation is meaningful, and the live one is nondeterministic anyway.

The functions deliberately measure through the same public entry points the
system uses (``Block.digest``, ``encode_envelope``/``decode_envelope``,
``LadonGlobalOrderer.on_deliver``, ``Simulator.run``, ``ExperimentEngine``),
so a regression anywhere on those paths is visible here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.ledger.blocks import Block, SystemState
from repro.ledger.transactions import Transaction, TransactionType
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind

#: Suite names accepted by ``repro bench --suite``.
SUITE_NAMES: tuple[str, ...] = ("quick", "full", "obs_overhead")

#: Minimum seconds one calibrated repeat of a micro benchmark must take.
_MIN_REPEAT_SECONDS = 0.1

#: Timed repeats per micro benchmark (best one is reported).
_REPEATS = 5


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's outcome.

    ``value`` is in ``unit``; ``higher_is_better`` orients regression checks
    (ops/s benchmarks regress when they drop, wall-clock benchmarks regress
    when they grow).
    """

    name: str
    unit: str
    value: float
    higher_is_better: bool
    meta: dict[str, Any] = field(default_factory=dict)


def _best_seconds_per_op(fn: Callable[[], Any]) -> float:
    """Best-of-``_REPEATS`` seconds per call of ``fn`` (auto-calibrated)."""
    loops = 1
    while True:
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= _MIN_REPEAT_SECONDS:
            break
        # Grow geometrically towards the budget (x1.3 headroom for noise).
        scale = _MIN_REPEAT_SECONDS / max(elapsed, 1e-9)
        loops = max(loops + 1, int(loops * scale * 1.3))
    best = elapsed
    for _ in range(_REPEATS - 1):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best / loops


# -- fixtures -----------------------------------------------------------------


def _operations(index: int) -> tuple[ObjectOperation, ...]:
    return (
        ObjectOperation(
            key=f"acct-{index % 512:04d}",
            kind=OperationKind.DECREMENT,
            amount=1,
            object_type=ObjectType.OWNED,
        ),
        ObjectOperation(
            key=f"acct-{(index + 7) % 512:04d}",
            kind=OperationKind.INCREMENT,
            amount=1,
            object_type=ObjectType.OWNED,
        ),
    )


def _fresh_transactions(count: int, ops: Iterable[tuple[ObjectOperation, ...]]) -> list[Transaction]:
    ops = list(ops)
    return [
        Transaction(
            tx_id=f"tx-{i:06d}",
            operations=ops[i % len(ops)],
            tx_type=TransactionType.PAYMENT,
            client_id="bench-client",
        )
        for i in range(count)
    ]


def _fresh_block(txs: list[Transaction], instances: int = 4) -> Block:
    return Block.create(
        instance=0,
        sequence_number=5,
        transactions=txs,
        state=SystemState.initial(instances),
        proposer=0,
        rank=17,
    )


# -- micro benchmarks ---------------------------------------------------------


def bench_digest() -> BenchResult:
    """Content digests of fresh transactions and blocks, accessed twice.

    One unit of work mirrors what every replica does per proposed block: hash
    each transaction and the block itself, then read each digest again (PBFT
    computes the block digest at proposal and re-checks it at pre-prepare and
    commit).  Objects are constructed fresh inside the timed region so
    memoization cannot carry over between iterations — the second access per
    object is exactly the in-protocol reuse it speeds up.
    """
    op_pool = [_operations(i) for i in range(64)]

    def work() -> int:
        txs = _fresh_transactions(64, op_pool)
        block = _fresh_block(txs)
        total = 0
        for tx in txs:
            total += len(tx.digest)
            total += len(tx.digest)
        total += len(block.digest)
        total += len(block.digest)
        return total

    seconds = _best_seconds_per_op(work)
    digests = 2 * (64 + 1)
    return BenchResult(
        name="digest_block_64tx",
        unit="digests/s",
        value=digests / seconds,
        higher_is_better=True,
        meta={"transactions": 64, "accesses_per_object": 2},
    )


def _codec_messages() -> list[Any]:
    from repro.cluster.messages import ClientRequest
    from repro.sb.pbft.messages import Commit, PrePrepare, Prepare

    txs = _fresh_transactions(64, [_operations(i) for i in range(64)])
    block = _fresh_block(txs)
    digest = block.digest
    return [
        Prepare(instance=0, view=0, sender=1, sequence_number=5, digest=digest),
        Commit(instance=0, view=0, sender=1, sequence_number=5, digest=digest),
        ClientRequest(tx=txs[0], client_node=1000),
        PrePrepare(
            instance=0, view=0, sender=0, sequence_number=5, block=block, digest=digest
        ),
    ]


def bench_codec_roundtrip() -> BenchResult:
    """Wire-codec round trip of a representative consensus message mix.

    The mix is one of each hot frame: the tiny quadratic-traffic messages
    (prepare/commit), a client request, and a 64-transaction pre-prepare —
    encoded and decoded at the transport's default wire version.
    """
    import repro.runtime.control  # noqa: F401  (registers control-plane types)
    from repro.runtime import codec

    messages = _codec_messages()
    version = getattr(codec, "DEFAULT_WIRE_VERSION", codec.WIRE_VERSION)

    def encode(message: Any) -> bytes:
        try:
            return codec.encode_envelope(1, message, version=version)
        except TypeError:  # pre-binary codec: no version parameter
            return codec.encode_envelope(1, message)

    frames = [encode(message) for message in messages]
    total_bytes = sum(len(frame) for frame in frames)

    def work() -> None:
        for message in messages:
            codec.decode_envelope(encode(message))

    seconds = _best_seconds_per_op(work)
    return BenchResult(
        name="codec_roundtrip_mix",
        unit="roundtrips/s",
        value=len(messages) / seconds,
        higher_is_better=True,
        meta={"wire_version": version, "frame_bytes_total": total_bytes},
    )


def _straggler_blocks(
    num_instances: int, pending: int
) -> tuple[list[Block], list[Block]]:
    """Blocks for the straggler release scenario.

    Instances ``1..m-1`` deliver ``pending`` blocks that all wait (instance 0
    has delivered nothing, so the bar never moves), then instance 0 catches up
    with high-rank blocks that release the entire backlog — the paper's
    straggler shape, at the scale where release-path complexity dominates.
    """
    state = SystemState.initial(num_instances)
    waiting: list[Block] = []
    rank = 0
    per_instance = pending // (num_instances - 1)
    for sn in range(per_instance):
        for instance in range(1, num_instances):
            rank += 1
            waiting.append(
                Block.create(
                    instance=instance,
                    sequence_number=sn,
                    transactions=[],
                    state=state,
                    proposer=instance,
                    rank=rank,
                )
            )
    releasers = [
        Block.create(
            instance=0,
            sequence_number=sn,
            transactions=[],
            state=state,
            proposer=0,
            rank=rank + sn + 1,
        )
        for sn in range(4)
    ]
    return waiting, releasers


def bench_ladon_release() -> BenchResult:
    """Ladon global ordering under a 10k-block straggler backlog."""
    from repro.ordering.ladon import LadonGlobalOrderer

    num_instances = 16
    waiting, releasers = _straggler_blocks(num_instances, pending=10_000)
    delivered = len(waiting) + len(releasers)

    def deliver_all() -> int:
        orderer = LadonGlobalOrderer(num_instances)
        for block in waiting:
            orderer.on_deliver(block)
        for block in releasers:
            orderer.on_deliver(block)
        return orderer.ordered_count

    # The scenario is deterministic: the release count observed in one
    # untimed run pins the behaviour every timed run must reproduce (the
    # last round's own high ranks stay above the bar, so it is slightly
    # below the delivered count).
    expected = deliver_all()
    assert expected > len(waiting) * 0.99, expected

    def work() -> None:
        assert deliver_all() == expected

    seconds = _best_seconds_per_op(work)
    return BenchResult(
        name="ladon_release_10k",
        unit="blocks/s",
        value=delivered / seconds,
        higher_is_better=True,
        meta={
            "instances": num_instances,
            "pending_blocks": len(waiting),
            "released_blocks": expected,
        },
    )


def bench_dependency_release() -> BenchResult:
    """Dependency global ordering under the same 10k-block straggler backlog.

    Delivers the exact block sequence ``ladon_release_10k`` times, with
    :data:`~repro.ordering.base.UNKNOWN_CONFLICTS` metadata so every block is
    barred: the conflict graph holds the full 10k backlog and the final
    deliveries trigger the same mass release.  The blocks/s figure is
    directly comparable to ``ladon_release_10k`` — the gap is the price of
    the per-key heaps and blocked-predecessor checks at matched behaviour.
    """
    from repro.ordering.base import UNKNOWN_CONFLICTS
    from repro.ordering.dependency import DependencyGlobalOrderer

    num_instances = 16
    waiting, releasers = _straggler_blocks(num_instances, pending=10_000)
    delivered = len(waiting) + len(releasers)

    def deliver_all() -> int:
        orderer = DependencyGlobalOrderer(num_instances)
        for block in waiting:
            orderer.on_deliver(block, UNKNOWN_CONFLICTS)
        for block in releasers:
            orderer.on_deliver(block, UNKNOWN_CONFLICTS)
        return orderer.ordered_count

    expected = deliver_all()
    assert expected > len(waiting) * 0.99, expected

    def work() -> None:
        assert deliver_all() == expected

    seconds = _best_seconds_per_op(work)
    return BenchResult(
        name="dependency_release_10k",
        unit="blocks/s",
        value=delivered / seconds,
        higher_is_better=True,
        meta={
            "instances": num_instances,
            "pending_blocks": len(waiting),
            "released_blocks": expected,
        },
    )


def bench_sim_events() -> BenchResult:
    """Raw simulator event dispatch, including timer-churn cancellations."""
    from repro.sim.simulator import Simulator

    events = 50_000

    def work() -> None:
        sim = Simulator()
        sink: list[float] = []
        append = sink.append
        handles = []
        for i in range(events):
            handle = sim.schedule(i * 1e-5, lambda: append(1.0))
            if i % 4 == 0:
                handles.append(handle)
        # A quarter of the events are cancelled before firing — the
        # view-change-timer churn shape the lazy-deletion heap compaction
        # exists for.
        for handle in handles:
            handle.cancel()
        sim.run()
        assert sim.processed_events == events - len(handles)

    seconds = _best_seconds_per_op(work)
    return BenchResult(
        name="sim_event_throughput",
        unit="events/s",
        value=events / seconds,
        higher_is_better=True,
        meta={"events": events, "cancelled_fraction": 0.25},
    )


# -- end-to-end benchmarks ----------------------------------------------------


def bench_fig3_small() -> BenchResult:
    """Wall-clock of one uncached fig3-shaped simulation cell.

    The cell is the ``repro run`` default (16 replicas, WAN, 40 simulated
    seconds) — the same shape every fig3 grid point simulates.  Best of three
    runs, each on a fresh engine with caching disabled.
    """
    from repro.experiments.engine import ExperimentEngine, ScenarioSpec

    spec = ScenarioSpec(
        protocol="orthrus",
        num_replicas=16,
        environment="wan",
        duration=40.0,
        warmup=8.0,
        samples_per_block=6,
        seed=1,
    )
    best = float("inf")
    throughput = 0.0
    for _ in range(3):
        engine = ExperimentEngine(cache_dir=None, jobs=1)
        start = time.perf_counter()
        result = engine.run_one(spec)
        best = min(best, time.perf_counter() - start)
        throughput = result.metrics.throughput_tps
    return BenchResult(
        name="fig3_small_wallclock",
        unit="seconds",
        value=best,
        higher_is_better=False,
        meta={
            "replicas": 16,
            "simulated_seconds": 40.0,
            "throughput_tps": round(throughput, 1),
        },
    )


def bench_live_smoke(transactions: int = 600) -> BenchResult:
    """Committed tx/s of a real 4-replica / 2-instance localhost cluster."""
    import asyncio

    from repro.runtime.client import ClientConfig
    from repro.runtime.cluster import ClusterSpec, LocalCluster
    from repro.runtime.loadgen import LoadGenConfig, run_loadgen
    from repro.workload.config import WorkloadConfig

    spec = ClusterSpec(
        num_replicas=4,
        num_instances=2,
        protocol="orthrus",
        batch_size=64,
        batch_interval=0.02,
        workload=WorkloadConfig(num_accounts=1024, seed=42),
    )
    load = LoadGenConfig(
        transactions=transactions,
        mode="closed",
        concurrency=32,
        workload=WorkloadConfig(
            num_accounts=1024, seed=42, payment_fraction=1.0
        ),
        client=ClientConfig(client_id=1000, timeout=10.0, retries=3),
    )
    cluster = LocalCluster(spec)
    cluster.start()
    try:
        report = asyncio.run(run_loadgen(list(cluster.endpoints), load))
    finally:
        cluster.stop()
    if report.failed or not report.digests_agree:
        raise RuntimeError(
            f"live smoke failed: {report.failed} failures, "
            f"digests_agree={report.digests_agree}"
        )
    return BenchResult(
        name="live_smoke_tps",
        unit="tx/s",
        value=report.metrics.throughput_tps,
        higher_is_better=True,
        meta={
            "replicas": 4,
            "instances": 2,
            "transactions": transactions,
            "digests_agree": report.digests_agree,
        },
    )


def bench_live_pipeline(transactions: int = 4000) -> BenchResult:
    """Committed tx/s with the scale path on: UDS + super-frames + routing.

    Same replica count as :func:`bench_live_smoke` but configured the way a
    throughput-focused deployment would be — Unix domain sockets, leader-
    routed submission (each transaction goes to the ``f + 1`` replicas that
    will answer, not all of them), deep pipelining — so the benchmark tracks
    the batched transport end to end rather than any single layer.
    """
    import asyncio

    from repro.runtime.client import ClientConfig
    from repro.runtime.cluster import ClusterSpec, LocalCluster
    from repro.runtime.loadgen import LoadGenConfig, run_loadgen
    from repro.workload.config import WorkloadConfig

    spec = ClusterSpec(
        num_replicas=4,
        num_instances=2,
        protocol="orthrus",
        batch_size=256,
        batch_interval=0.01,
        transport="uds",
        workload=WorkloadConfig(num_accounts=256, seed=42),
    )
    load = LoadGenConfig(
        transactions=transactions,
        mode="closed",
        concurrency=512,
        workload=WorkloadConfig(num_accounts=256, seed=42, payment_fraction=1.0),
        client=ClientConfig(
            client_id=1000, timeout=15.0, retries=3, route_instances=2
        ),
    )
    cluster = LocalCluster(spec)
    cluster.start()
    try:
        report = asyncio.run(run_loadgen(list(cluster.endpoints), load))
    finally:
        cluster.stop()
    if report.failed or not report.digests_agree:
        raise RuntimeError(
            f"live pipeline failed: {report.failed} failures, "
            f"digests_agree={report.digests_agree}"
        )
    return BenchResult(
        name="live_pipeline_tps",
        unit="tx/s",
        value=report.metrics.throughput_tps,
        higher_is_better=True,
        meta={
            "replicas": 4,
            "instances": 2,
            "transport": "uds",
            "routed": True,
            "transactions": transactions,
            "concurrency": 512,
            "digests_agree": report.digests_agree,
        },
    )


def bench_scale_100replica(transactions: int = 64) -> BenchResult:
    """Wall-clock to start, load and stop a 100-replica localhost cluster.

    The value is the full lifecycle in seconds: spawn 100 replica processes
    over UDS, commit a bounded transaction load with ``f + 1`` matching
    digests, shut down cleanly.  Consensus traffic is quadratic in ``n``, so
    this is the benchmark that catches any O(n²) cliff in the runtime layers
    (port reservation, connection mesh, supervision, client fan-out).
    """
    import asyncio

    from repro.runtime.client import ClientConfig
    from repro.runtime.cluster import ClusterSpec, LocalCluster
    from repro.runtime.loadgen import LoadGenConfig, run_loadgen
    from repro.workload.config import WorkloadConfig

    replicas = 100
    spec = ClusterSpec(
        num_replicas=replicas,
        num_instances=2,
        protocol="orthrus",
        batch_size=64,
        batch_interval=0.25,
        view_change_timeout=60.0,
        transport="uds",
        workload=WorkloadConfig(num_accounts=256, seed=42),
    )
    # Submit the whole bounded load at once: with batch_size == transactions
    # each instance cuts whole blocks instead of dribbling n² vote rounds.
    load = LoadGenConfig(
        transactions=transactions,
        mode="closed",
        concurrency=64,
        workload=WorkloadConfig(num_accounts=256, seed=42, payment_fraction=1.0),
        client=ClientConfig(client_id=1000, timeout=60.0, retries=2),
    )
    start = time.perf_counter()
    cluster = LocalCluster(spec)
    # 100 interpreters cold-start serially on a small host; the ready probe
    # itself is parallel, so the timeout covers the slowest straggler.
    cluster.start(ready_timeout=100.0)
    try:
        report = asyncio.run(run_loadgen(list(cluster.endpoints), load))
    finally:
        cluster.stop()
    elapsed = time.perf_counter() - start
    if report.failed or not report.digests_agree:
        raise RuntimeError(
            f"100-replica scale run failed: {report.failed} failures, "
            f"digests_agree={report.digests_agree}"
        )
    return BenchResult(
        name="scale_100replica",
        unit="seconds",
        value=elapsed,
        higher_is_better=False,
        meta={
            "replicas": replicas,
            "instances": 2,
            "transport": "uds",
            "transactions": transactions,
            "throughput_tps": round(report.metrics.throughput_tps, 1),
            "digests_agree": report.digests_agree,
        },
    )


# -- observability overhead ---------------------------------------------------


def bench_obs_instruments() -> BenchResult:
    """Hot-path cost of one counter increment plus one histogram observe.

    These are the two instrument calls that sit on the live transport and
    consensus paths (``frames_received.inc()``, ``bar_wait.observe()``); the
    benchmark reports how many such instrument operations a core sustains,
    which bounds the per-transaction bookkeeping cost.
    """
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    counter = registry.counter("bench.counter")
    histogram = registry.histogram("bench.histogram")
    batch = 1_000

    def work() -> None:
        for _ in range(batch):
            counter.inc()
            histogram.observe(1.5e-4)

    seconds = _best_seconds_per_op(work)
    return BenchResult(
        name="obs_instrument_ops",
        unit="ops/s",
        value=2 * batch / seconds,
        higher_is_better=True,
        meta={"instruments": ["counter.inc", "histogram.observe"]},
    )


def bench_obs_trace_emit() -> BenchResult:
    """Per-transaction cost of the sampling gate plus sampled emission.

    Mirrors the replica hot path at a 1% sample rate: every transaction pays
    ``sampled()`` (a crc32 and a compare) and one in a hundred additionally
    pays the buffered JSONL ``emit``.  The value is transactions per second
    through that gate.
    """
    import tempfile
    from pathlib import Path

    from repro.obs.trace import TraceWriter

    tx_ids = [f"client-1000-{n}" for n in range(2048)]
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        writer = TraceWriter(
            Path(tmp) / "trace.jsonl", node=0, sample_rate=0.01
        )
        sampled = sum(writer.sampled(tx_id) for tx_id in tx_ids)

        def work() -> None:
            for tx_id in tx_ids:
                if writer.sampled(tx_id):
                    writer.emit(tx_id, "received", 1.0)

        seconds = _best_seconds_per_op(work)
        writer.close()
    return BenchResult(
        name="obs_trace_gate_tx",
        unit="tx/s",
        value=len(tx_ids) / seconds,
        higher_is_better=True,
        meta={"sample_rate": 0.01, "sampled_of_2048": sampled},
    )


def bench_obs_live_overhead(transactions: int = 600) -> BenchResult:
    """A/B live-cluster overhead of the registry + sampled tracing.

    Runs the :func:`bench_live_smoke` shape twice — once with observability
    disabled (``--no-obs``: NULL registry, no tracer, no snapshots) and once
    with the registry, 1 s metrics snapshots and 1% tracing on — and reports
    the committed-throughput cost as a percentage.  The acceptance budget is
    5%; both absolute throughputs land in ``meta`` so a regression is
    attributable.
    """
    import asyncio
    import tempfile
    from pathlib import Path

    from repro.runtime.client import ClientConfig
    from repro.runtime.cluster import ClusterSpec, LocalCluster
    from repro.runtime.loadgen import LoadGenConfig, run_loadgen
    from repro.workload.config import WorkloadConfig

    def run_once(*, obs_enabled: bool, run_dir: str | None, trace_sample: float) -> float:
        spec = ClusterSpec(
            num_replicas=4,
            num_instances=2,
            protocol="orthrus",
            batch_size=64,
            batch_interval=0.02,
            workload=WorkloadConfig(num_accounts=1024, seed=42),
            obs_enabled=obs_enabled,
            run_dir=run_dir,
            trace_sample=trace_sample,
        )
        load = LoadGenConfig(
            transactions=transactions,
            mode="closed",
            concurrency=32,
            workload=WorkloadConfig(
                num_accounts=1024, seed=42, payment_fraction=1.0
            ),
            client=ClientConfig(client_id=1000, timeout=10.0, retries=3),
        )
        cluster = LocalCluster(spec)
        cluster.start()
        try:
            report = asyncio.run(run_loadgen(list(cluster.endpoints), load))
        finally:
            cluster.stop()
        if report.failed or not report.digests_agree:
            raise RuntimeError(
                f"obs overhead run (obs={obs_enabled}) failed: "
                f"{report.failed} failures, digests_agree={report.digests_agree}"
            )
        return report.metrics.throughput_tps

    tps_off = run_once(obs_enabled=False, run_dir=None, trace_sample=0.0)
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        tps_on = run_once(
            obs_enabled=True,
            run_dir=str(Path(tmp) / "run"),
            trace_sample=0.01,
        )
    overhead_pct = max(0.0, (tps_off - tps_on) / tps_off * 100.0)
    return BenchResult(
        name="obs_live_overhead",
        unit="percent",
        value=overhead_pct,
        higher_is_better=False,
        meta={
            "budget_percent": 5.0,
            "tps_obs_off": round(tps_off, 1),
            "tps_obs_on": round(tps_on, 1),
            "trace_sample": 0.01,
            "transactions": transactions,
        },
    )


# -- suites -------------------------------------------------------------------

#: The fast, deterministic-ish suite CI runs on every push.
_QUICK: tuple[Callable[[], BenchResult], ...] = (
    bench_digest,
    bench_codec_roundtrip,
    bench_ladon_release,
    bench_dependency_release,
    bench_sim_events,
)

#: Everything, including the end-to-end simulation and live-cluster runs.
_FULL: tuple[Callable[[], BenchResult], ...] = _QUICK + (
    bench_fig3_small,
    bench_live_smoke,
    bench_live_pipeline,
    bench_scale_100replica,
)

#: Observability cost: instrument microbenches plus the live A/B overhead run.
_OBS_OVERHEAD: tuple[Callable[[], BenchResult], ...] = (
    bench_obs_instruments,
    bench_obs_trace_emit,
    bench_obs_live_overhead,
)


def run_suite(
    suite: str, *, progress: Callable[[str], None] | None = None
) -> list[BenchResult]:
    """Run a named suite and return its results in execution order."""
    if suite == "quick":
        benchmarks = _QUICK
    elif suite == "full":
        benchmarks = _FULL
    elif suite == "obs_overhead":
        benchmarks = _OBS_OVERHEAD
    else:
        raise ValueError(f"unknown benchmark suite {suite!r}")
    results: list[BenchResult] = []
    for benchmark in benchmarks:
        if progress is not None:
            progress(benchmark.__name__)
        results.append(benchmark())
    return results
