"""``BENCH_<n>.json`` reading, writing and regression checking.

The report format is the repo's performance trajectory (schema documented in
``docs/performance.md``):

* ``value`` — the number measured when the file was written (this PR).
* ``baseline_pre_pr`` — the same benchmark measured with the same harness on
  the tree *before* the PR's changes, when the PR claims a speedup.
* ``speedup`` — improvement factor derived from the two, oriented so > 1.0
  is always better.

``check_regressions`` compares a fresh run against a committed report and is
what the CI ``bench-smoke`` job gates on.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Mapping

from repro.bench.suites import BenchResult

#: Bump when the report layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def host_speed_score() -> float:
    """A coarse single-thread speed score for the current host (ops/s).

    A fixed pure-Python workload (hashing + dict/list churn — the same kind
    of work the benchmarks measure) that does not touch ``repro`` code, so
    it is constant across PRs.  Regression checks scale a committed report's
    values by the ratio of the two hosts' scores before applying tolerance;
    without that, a gate recorded on a fast workstation fails spuriously on
    a slower CI runner with no code change at all.  Best of three rounds.
    """
    payload = b"host-speed-calibration" * 8

    def round_score() -> float:
        start = time.perf_counter()
        accumulator: dict[int, int] = {}
        digest = payload
        for index in range(8_000):
            digest = hashlib.sha256(digest).digest()
            accumulator[index & 255] = accumulator.get(index & 255, 0) + digest[0]
            if index & 7 == 0:
                sorted(accumulator.values())
        elapsed = time.perf_counter() - start
        return 8_000 / elapsed

    return max(round_score() for _ in range(3))


def _speedup(value: float, baseline: float, higher_is_better: bool) -> float:
    if baseline <= 0 or value <= 0:
        return 1.0
    return value / baseline if higher_is_better else baseline / value


def build_report(
    results: list[BenchResult],
    *,
    pr: int,
    suite: str,
    baselines: Mapping[str, float] | None = None,
) -> dict[str, Any]:
    """Assemble the JSON document for a benchmark run."""
    benchmarks: dict[str, Any] = {}
    for result in results:
        entry: dict[str, Any] = {
            "unit": result.unit,
            "higher_is_better": result.higher_is_better,
            "value": round(result.value, 3),
        }
        if result.meta:
            entry["meta"] = result.meta
        baseline = (baselines or {}).get(result.name)
        if baseline is not None:
            entry["baseline_pre_pr"] = round(float(baseline), 3)
            entry["speedup"] = round(
                _speedup(result.value, float(baseline), result.higher_is_better), 2
            )
        benchmarks[result.name] = entry
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "pr": pr,
        "suite": suite,
        "host": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "platform": platform.platform(),
            "speed_score": round(host_speed_score(), 1),
        },
        "benchmarks": benchmarks,
    }


def write_report(report: dict[str, Any], path: str | Path) -> None:
    """Write a report as stable, diff-friendly JSON."""
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def load_report(path: str | Path) -> dict[str, Any]:
    """Load a committed ``BENCH_<n>.json``."""
    report = json.loads(Path(path).read_text(encoding="utf-8"))
    version = report.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema {version!r} "
            f"(this tool reads {BENCH_SCHEMA_VERSION})"
        )
    return report


def check_regressions(
    results: list[BenchResult],
    committed: Mapping[str, Any],
    *,
    tolerance: float = 0.30,
    current_speed_score: float | None = None,
) -> list[str]:
    """Compare a fresh run against a committed report.

    Returns one human-readable line per benchmark that regressed more than
    ``tolerance`` (fractional; 0.30 means "more than 30 % worse than the
    committed value").  Benchmarks absent from the committed report are
    ignored — new benchmarks must not fail the gate that predates them.

    When the committed report carries a host ``speed_score``, the committed
    values are first scaled by ``current host score / committed host score``
    so the gate compares like with like across machines (a CI runner at
    half the committing workstation's speed is expected to measure roughly
    half the ops/s, not to fail the gate).  Pass ``current_speed_score`` to
    reuse an already-measured score; otherwise it is measured on the spot.
    """
    failures: list[str] = []
    committed_benchmarks = committed.get("benchmarks", {})
    committed_score = committed.get("host", {}).get("speed_score")
    scale = 1.0
    if committed_score:
        score = (
            current_speed_score
            if current_speed_score is not None
            else host_speed_score()
        )
        scale = score / float(committed_score)
    for result in results:
        entry = committed_benchmarks.get(result.name)
        if entry is None:
            continue
        reference = float(entry["value"])
        if reference <= 0:
            continue
        if result.higher_is_better:
            # ops/s scale linearly with host speed; wall-clock inversely.
            ratio = result.value / (reference * scale)
        else:
            ratio = (reference / scale) / max(result.value, 1e-12)
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{result.name}: {result.value:.3f} {result.unit} is "
                f"{(1.0 - ratio) * 100:.0f}% worse than the committed "
                f"{reference:.3f} (host-speed scale {scale:.2f}, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def format_results(results: list[BenchResult]) -> str:
    """Fixed-width table of results for terminal output."""
    lines = [f"{'benchmark':<24} {'value':>14} {'unit':<14}"]
    for result in results:
        lines.append(f"{result.name:<24} {result.value:>14,.1f} {result.unit:<14}")
    return "\n".join(lines)
