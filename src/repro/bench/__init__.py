"""Machine-readable performance benchmarks (the ``repro bench`` CLI).

This package is the repo's performance trajectory: each PR that claims a
speedup runs ``repro bench`` and commits the resulting ``BENCH_<n>.json`` at
the repository root, so later PRs (and CI) can compare like-for-like numbers.
See ``docs/performance.md`` for the schema and methodology.
"""

from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    check_regressions,
    load_report,
    write_report,
)
from repro.bench.suites import SUITE_NAMES, BenchResult, run_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchResult",
    "SUITE_NAMES",
    "check_regressions",
    "load_report",
    "run_suite",
    "write_report",
]
