"""Process abstraction: an addressable actor living inside the simulation.

A :class:`Process` owns a node identifier, can send messages through the
:class:`~repro.net.network.Network` it is registered with, and can set timers
on the shared :class:`~repro.sim.simulator.Simulator`.  Replicas, clients and
fault injectors are all processes.

``Process`` is the simulator-side implementation of the
:class:`~repro.net.transport.NodeTransport` host interface (``send`` /
``broadcast`` / ``set_timer`` / ``cancel_timers``; subclasses that act as
transports expose the clock as a ``now()`` method).  The live runtime provides
the same interface over asyncio TCP in
:class:`~repro.runtime.transport.AsyncioTransport`, so consensus code written
against the interface runs unchanged in either world.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.network import Network
    from repro.sim.simulator import Simulator


class Process:
    """Base class for simulated actors (replicas, clients, injectors)."""

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self._network: "Network | None" = None
        self._timers: list[EventHandle] = []

    # -- wiring -----------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called by the network when the process is registered."""
        self._network = network

    @property
    def network(self) -> "Network":
        """The network this process is attached to."""
        if self._network is None:
            raise SimulationError(
                f"process {self.node_id} is not attached to a network"
            )
        return self._network

    @property
    def sim(self) -> "Simulator":
        """The simulator driving this process."""
        return self.network.sim

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    # -- messaging --------------------------------------------------------

    def send(self, destination: int, message: Any) -> None:
        """Send ``message`` to another process over the network."""
        self.network.send(self.node_id, destination, message)

    def broadcast(self, message: Any, include_self: bool = False) -> None:
        """Send ``message`` to every registered process."""
        self.network.broadcast(self.node_id, message, include_self=include_self)

    def receive(self, sender: int, message: Any) -> None:
        """Handle a delivered message.  Subclasses override this."""
        raise NotImplementedError

    # -- timers -----------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Schedule a local callback ``delay`` seconds from now."""
        handle = self.sim.schedule(delay, callback)
        self._timers.append(handle)
        return handle

    def cancel_timers(self) -> None:
        """Cancel every timer this process has set and not yet fired."""
        for handle in self._timers:
            if handle.active:
                handle.cancel()
        self._timers.clear()
