"""Deterministic random-number utilities.

All stochastic choices in the library flow through :class:`DeterministicRNG`
so that a single integer seed reproduces an entire experiment bit-for-bit.
The class wraps :class:`random.Random` and adds the distributions the
network model and workload generator need (jitter, Zipf, order statistics).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """Seeded random source with the distributions used across the library."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRNG":
        """Return an independent RNG derived from this seed and ``label``.

        Forking lets separate subsystems (network, workload, faults) draw from
        independent streams while remaining reproducible from one root seed.

        The derivation uses a stable digest rather than Python's built-in
        ``hash()``: string hashing is randomised per interpreter process
        (``PYTHONHASHSEED``), which would make runs irreproducible across
        invocations — and result caching keyed by scenario spec unsound.
        """
        digest = hashlib.sha256(f"{self._seed}:{label}".encode("utf-8")).digest()
        derived = int.from_bytes(digest[:8], "big") & 0x7FFFFFFF
        return DeterministicRNG(derived)

    def uniform(self, low: float, high: float) -> float:
        """Uniform sample in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform sample in ``[0, 1)``."""
        return self._random.random()

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean (mean <= 0 returns 0)."""
        if mean <= 0:
            return 0.0
        return self._random.expovariate(1.0 / mean)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian sample."""
        return self._random.gauss(mean, stddev)

    def lognormal_jitter(self, scale: float, sigma: float = 0.25) -> float:
        """Positive multiplicative jitter around ``scale``.

        Used for per-message latency jitter: the result has median ``scale``
        and a heavy right tail, matching measured WAN latency distributions.
        """
        if scale <= 0:
            return 0.0
        return scale * math.exp(self._random.gauss(0.0, sigma))

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct items."""
        return self._random.sample(items, count)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def zipf_index(self, population: int, exponent: float = 1.0) -> int:
        """Return an index in ``[0, population)`` with Zipfian skew.

        Index 0 is the most popular element.  Implemented by inverse-CDF over
        the (cached) harmonic weights, which is exact and dependency-free.
        """
        if population <= 0:
            raise ValueError("population must be positive")
        weights = self._zipf_weights(population, exponent)
        target = self._random.random() * weights[-1]
        return _bisect_left(weights, target)

    def _zipf_weights(self, population: int, exponent: float) -> list[float]:
        key = (population, exponent)
        cache = getattr(self, "_zipf_cache", None)
        if cache is None:
            cache = {}
            self._zipf_cache = cache
        if key not in cache:
            cumulative: list[float] = []
            total = 0.0
            for rank in range(1, population + 1):
                total += 1.0 / (rank**exponent)
                cumulative.append(total)
            cache[key] = cumulative
        return cache[key]

    def order_statistic(
        self, samples: Iterable[float], quantile_index: int
    ) -> float:
        """Return the ``quantile_index``-th smallest value of ``samples``."""
        ordered = sorted(samples)
        if not ordered:
            raise ValueError("samples must be non-empty")
        index = min(max(quantile_index, 0), len(ordered) - 1)
        return ordered[index]


def _bisect_left(values: Sequence[float], target: float) -> int:
    low, high = 0, len(values)
    while low < high:
        mid = (low + high) // 2
        if values[mid] < target:
            low = mid + 1
        else:
            high = mid
    return min(low, len(values) - 1)
