"""Event primitives for the discrete-event simulator.

An :class:`Event` couples a firing time with a callback.  Events are totally
ordered by ``(time, priority, sequence)`` so that simultaneous events fire in
a deterministic order: first by explicit priority, then by scheduling order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Monotonic counter used to break ties between events scheduled for the same
#: simulated instant.  Deterministic because scheduling order is deterministic.
_sequence_counter = itertools.count()


@dataclass(order=True)
class Event:
    """A single scheduled callback in the simulation.

    Attributes:
        time: Absolute simulated time (seconds) at which the event fires.
        priority: Lower values fire first among events with equal ``time``.
        sequence: Tie-breaker assigned at scheduling time.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
        finished: Set by the owning simulator once the event has left its
            queue (fired or discarded), so late cancellations are no-ops for
            the simulator's pending-event accounting.
        owner: The simulator (or any object with ``_note_cancelled``) to
            notify when a still-queued event is cancelled.
    """

    time: float
    priority: int = 0
    sequence: int = field(default_factory=lambda: next(_sequence_counter))
    callback: Callable[[], Any] | None = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    finished: bool = field(compare=False, default=False)
    owner: Any = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None and not self.finished:
            self.owner._note_cancelled()

    @property
    def active(self) -> bool:
        """Whether the event is still scheduled to run."""
        return not self.cancelled


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding a handle allows the caller to cancel the event or inspect the
    time at which it is due to fire.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the underlying event fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the underlying event is still pending."""
        return self._event.active

    def cancel(self) -> None:
        """Cancel the underlying event if it has not fired yet."""
        self._event.cancel()
