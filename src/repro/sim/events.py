"""Event primitives for the discrete-event simulator.

An :class:`Event` couples a firing time with a callback.  Events are totally
ordered by ``(time, priority, sequence)`` so that simultaneous events fire in
a deterministic order: first by explicit priority, then by scheduling order.

``Event`` is a slotted plain class rather than a dataclass: simulations
allocate and compare millions of them (every heap push/pop compares events),
so the fixed slot layout and the hand-written ``(time, priority, sequence)``
comparisons are a measurable win over generated dataclass ordering.  Events
also carry optional positional ``args`` for their callback, which lets hot
callers (the network's delivery path) schedule bound methods directly instead
of allocating a closure per message.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

#: Monotonic counter used to break ties between events scheduled for the same
#: simulated instant.  Deterministic because scheduling order is deterministic.
_sequence_counter = itertools.count()


class Event:
    """A single scheduled callback in the simulation.

    Attributes:
        time: Absolute simulated time (seconds) at which the event fires.
        priority: Lower values fire first among events with equal ``time``.
        sequence: Tie-breaker assigned at scheduling time.
        callback: Callable invoked (with ``args``) when the event fires.
        args: Positional arguments passed to ``callback``.
        cancelled: Set by :meth:`cancel`; cancelled events are skipped.
        finished: Set by the owning simulator once the event has left its
            queue (fired or discarded), so late cancellations are no-ops for
            the simulator's pending-event accounting.
        owner: The simulator (or any object with ``_note_cancelled``) to
            notify when a still-queued event is cancelled.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "args",
        "cancelled",
        "finished",
        "owner",
    )

    def __init__(
        self,
        time: float,
        priority: int = 0,
        sequence: int | None = None,
        callback: Callable[..., Any] | None = None,
        args: tuple[Any, ...] = (),
        owner: Any = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = next(_sequence_counter) if sequence is None else sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.finished = False
        self.owner = owner

    # Total order on (time, priority, sequence); the remaining attributes are
    # deliberately excluded, matching the former dataclass(order=True) with
    # compare=False fields.

    def _key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        # The heap's hot comparison: written out field by field to avoid
        # allocating key tuples on every sift.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return other.__lt__(self)

    def __ge__(self, other: "Event") -> bool:
        return other.__le__(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"sequence={self.sequence!r}, cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None and not self.finished:
            self.owner._note_cancelled()

    @property
    def active(self) -> bool:
        """Whether the event is still scheduled to run."""
        return not self.cancelled


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding a handle allows the caller to cancel the event or inspect the
    time at which it is due to fire.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the underlying event fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the underlying event is still pending."""
        return self._event.active

    def cancel(self) -> None:
        """Cancel the underlying event if it has not fired yet."""
        self._event.cancel()
