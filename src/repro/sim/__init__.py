"""Discrete-event simulation substrate (clock, events, processes, RNG)."""

from repro.sim.events import Event, EventHandle
from repro.sim.process import Process
from repro.sim.rng import DeterministicRNG
from repro.sim.simulator import Simulator

__all__ = ["Event", "EventHandle", "Process", "DeterministicRNG", "Simulator"]
