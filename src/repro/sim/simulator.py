"""Deterministic discrete-event simulator.

The :class:`Simulator` is the heart of the reproduction substrate.  It keeps a
priority queue of :class:`~repro.sim.events.Event` objects and advances a
virtual clock from event to event.  Replica processes, the network, clients
and fault injectors all schedule callbacks on one shared simulator instance,
which gives every experiment a single consistent notion of time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventHandle
from repro.sim.rng import DeterministicRNG


class Simulator:
    """Single-threaded discrete-event simulation engine.

    Args:
        seed: Root seed for the simulation's random streams.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.5]
    """

    #: Lazy-deletion compaction thresholds: once more than ``_COMPACT_MIN``
    #: cancelled events sit in the heap AND they outnumber the live ones, the
    #: heap is rebuilt without them.  Cancellation-heavy workloads (timer
    #: churn: view-change timers armed per slot and cancelled on delivery)
    #: otherwise pay ``log n`` per push for a heap dominated by dead entries.
    _COMPACT_MIN = 1024

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._processed = 0
        self._cancelled_pending = 0
        self._running = False
        self.rng = DeterministicRNG(seed)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled (cancelled ones excluded)."""
        return len(self._queue) - self._cancelled_pending

    @property
    def cancelled_pending_events(self) -> int:
        """Cancelled events still occupying the heap (lazy deletion)."""
        return self._cancelled_pending

    def _note_cancelled(self) -> None:
        """Called by a queued :class:`Event` when it is cancelled."""
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > self._COMPACT_MIN
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events."""
        for event in self._queue:
            if event.cancelled:
                event.finished = True
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Args:
            delay: Non-negative offset from the current simulated time.
            callback: Callable to invoke.
            *args: Positional arguments passed to ``callback`` when it fires
                (lets hot callers schedule bound methods directly instead of
                allocating a closure per message).
            priority: Lower priorities fire first among simultaneous events.

        Returns:
            A handle that can cancel the event.

        Raises:
            SchedulingError: If ``delay`` is negative or not finite.
        """
        if delay < 0 or delay != delay or delay == float("inf"):
            raise SchedulingError(f"invalid delay: {delay!r}")
        event = Event(
            time=self._now + delay,
            priority=priority,
            callback=callback,
            args=args,
            owner=self,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time (>= now)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time:.6f}, current time is {self._now:.6f}"
            )
        return self.schedule(time - self._now, callback, *args, priority=priority)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> float:
        """Run the simulation.

        Args:
            until: Stop once the clock would pass this time (the clock is left
                at ``until``).  ``None`` runs until the queue drains.
            max_events: Safety cap on the number of events processed.

        Returns:
            The simulated time when the run stopped.

        Raises:
            SimulationError: If called re-entrantly from an event callback.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        try:
            processed_this_run = 0
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    if not event.finished:
                        event.finished = True
                        self._cancelled_pending -= 1
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and processed_this_run >= max_events:
                    break
                heapq.heappop(self._queue)
                event.finished = True
                if event.time > self._now:
                    self._now = event.time
                callback = event.callback
                if callback is not None:
                    callback(*event.args)
                self._processed += 1
                processed_this_run += 1
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def clear(self) -> None:
        """Drop all pending events (used between experiment phases)."""
        for event in self._queue:
            event.finished = True
        self._queue.clear()
        self._cancelled_pending = 0
