"""Cross-process transaction tracing: sampled span events + stitching.

Every traced process (client, each replica) appends one JSON line per span
event to its own trace file.  Events carry the *shared monotonic clock*
timestamp (``loop.time()``; see ``AsyncioTransport.now``), so events written
by different processes on one host are directly comparable and a
transaction's journey can be stitched back together after the run:

``submitted`` (client) → ``received`` → ``proposed`` → ``prepared`` →
``committed`` (SB delivery) → ``bar_released`` (global order) →
``executed`` → ``replied`` (client holds f+1).

Sampling is **deterministic by transaction id** (:func:`sample_tx`): every
process independently hashes the tx id against the same rate and reaches the
same keep/drop decision, so a sampled transaction is sampled *everywhere*
and its stitched timeline is never missing a process.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable

#: Span events in pipeline order (used to order rendering and map stages).
TRACE_EVENTS: tuple[str, ...] = (
    "submitted",
    "received",
    "proposed",
    "prepared",
    "committed",
    "bar_released",
    "executed",
    "replied",
)

#: (stage, start event, end event): the five-stage breakdown of Fig. 6
#: expressed over trace events.  ``committed`` is the SB delivery and
#: ``executed`` the confirmation, matching ``delivered_at``/``confirmed_at``
#: in :mod:`repro.metrics.latency`.
TRACE_STAGE_BOUNDARIES: tuple[tuple[str, str, str], ...] = (
    ("send", "submitted", "received"),
    ("preprocessing", "received", "proposed"),
    ("partial_ordering", "proposed", "committed"),
    ("global_ordering", "committed", "executed"),
    ("reply", "executed", "replied"),
)

_SAMPLE_BUCKETS = 1 << 16


def sample_tx(tx_id: str, rate: float) -> bool:
    """Deterministic keep/drop decision for one transaction at ``rate``.

    Hash-based, not random: every process computes the same answer for the
    same tx id, so cross-process stitching never sees partial transactions.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(tx_id.encode("utf-8")) % _SAMPLE_BUCKETS
    return bucket < rate * _SAMPLE_BUCKETS


@dataclass(frozen=True)
class TraceEvent:
    """One span event of one transaction, as written by one process."""

    tx_id: str
    event: str
    t: float
    node: int
    instance: int | None = None
    view: int | None = None

    def to_json(self) -> str:
        record: dict = {"tx": self.tx_id, "event": self.event, "t": self.t, "node": self.node}
        if self.instance is not None:
            record["instance"] = self.instance
        if self.view is not None:
            record["view"] = self.view
        return json.dumps(record, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        return cls(
            tx_id=str(data["tx"]),
            event=str(data["event"]),
            t=float(data["t"]),
            node=int(data.get("node", -1)),
            instance=None if data.get("instance") is None else int(data["instance"]),
            view=None if data.get("view") is None else int(data["view"]),
        )


#: Events buffered before an implicit flush (bounds loss on a hard kill
#: without paying one write syscall per event).
FLUSH_EVERY = 64


class TraceWriter:
    """Append-only JSONL trace sink for one process.

    ``emit`` is the hot-path call: the caller is expected to check
    :meth:`sampled` once per transaction and skip event construction
    entirely for unsampled ids.  Writes are buffered and flushed every
    :data:`FLUSH_EVERY` events, on :meth:`flush` (the server's periodic
    metrics timer calls it) and on :meth:`close`.
    """

    def __init__(self, path: str | Path, *, node: int, sample_rate: float = 1.0) -> None:
        self.path = Path(path)
        self.node = node
        self.sample_rate = max(0.0, min(1.0, sample_rate))
        self.events_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: IO[str] | None = self.path.open("a", encoding="utf-8")
        self._unflushed = 0

    def sampled(self, tx_id: str) -> bool:
        """Whether ``tx_id`` is traced at this writer's sample rate."""
        return sample_tx(tx_id, self.sample_rate)

    def emit(
        self,
        tx_id: str,
        event: str,
        t: float,
        *,
        instance: int | None = None,
        view: int | None = None,
    ) -> None:
        """Append one span event (caller has already checked :meth:`sampled`)."""
        if self._file is None:
            return
        self._file.write(
            TraceEvent(
                tx_id=tx_id, event=event, t=t, node=self.node, instance=instance, view=view
            ).to_json()
            + "\n"
        )
        self.events_written += 1
        self._unflushed += 1
        if self._unflushed >= FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None


# -- reading + stitching -------------------------------------------------------


def read_trace_file(path: str | Path) -> list[TraceEvent]:
    """Parse one JSONL trace file, skipping unparseable (torn) lines."""
    events: list[TraceEvent] = []
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(TraceEvent.from_json(line))
                except (ValueError, KeyError):
                    # A process killed mid-write leaves a torn final line;
                    # everything before it is still good.
                    continue
    except OSError:
        return []
    return events


def trace_files_under(root: str | Path) -> list[Path]:
    """Trace files under a run directory (``**/trace*.jsonl``)."""
    return sorted(Path(root).glob("**/trace*.jsonl"))


def load_trace_events(
    root: str | Path | None = None, files: Iterable[str | Path] = ()
) -> list[TraceEvent]:
    """Load every event from a run directory and/or explicit files."""
    events: list[TraceEvent] = []
    paths: list[Path] = list(map(Path, files))
    if root is not None:
        paths.extend(trace_files_under(root))
    for path in paths:
        events.extend(read_trace_file(path))
    return events


@dataclass
class StitchedTrace:
    """One transaction's events merged across every process that saw it."""

    tx_id: str
    events: list[TraceEvent]

    @property
    def start(self) -> float:
        return min(event.t for event in self.events)

    def first(self, event_name: str) -> TraceEvent | None:
        """Earliest occurrence of one event type (first receipt wins,
        matching :class:`~repro.metrics.latency.LatencyTracker` semantics)."""
        best: TraceEvent | None = None
        for event in self.events:
            if event.event == event_name and (best is None or event.t < best.t):
                best = event
        return best

    def stage_durations(self) -> dict[str, float]:
        """Five-stage durations from the earliest event of each boundary.

        Only stages whose two boundary events are both present appear, so the
        result is directly comparable to
        :meth:`~repro.metrics.latency.LatencyTracker.stage_breakdown_partial`.
        """
        durations: dict[str, float] = {}
        for stage, start_name, end_name in TRACE_STAGE_BOUNDARIES:
            start = self.first(start_name)
            end = self.first(end_name)
            if start is not None and end is not None:
                durations[stage] = end.t - start.t
        return durations

    def lines(self) -> list[str]:
        """Human-readable stitched timeline."""
        origin = self.start
        nodes = sorted({event.node for event in self.events})
        out = [
            f"tx {self.tx_id}: {len(self.events)} events across "
            f"{len(nodes)} nodes (origin t={origin:.6f})"
        ]
        order = {name: index for index, name in enumerate(TRACE_EVENTS)}
        for event in sorted(
            self.events, key=lambda e: (e.t, order.get(e.event, len(order)), e.node)
        ):
            extra = ""
            if event.instance is not None:
                extra += f" instance={event.instance}"
            if event.view is not None:
                extra += f" view={event.view}"
            out.append(
                f"  +{(event.t - origin) * 1000:9.3f} ms  "
                f"{event.event:<13} node={event.node}{extra}"
            )
        durations = self.stage_durations()
        if durations:
            rendered = "  |  ".join(
                f"{stage} {duration * 1000:.3f} ms" for stage, duration in durations.items()
            )
            out.append(f"  stages: {rendered}")
        return out


def stitch(events: Iterable[TraceEvent], tx_id: str) -> StitchedTrace | None:
    """Collect one transaction's events into a stitched timeline.

    ``tx_id`` may be a unique prefix of the full id (CLI convenience);
    ``None`` is returned when nothing matches, and a ``ValueError`` raised
    when a prefix is ambiguous.
    """
    exact = [event for event in events if event.tx_id == tx_id]
    if exact:
        return StitchedTrace(tx_id=tx_id, events=exact)
    matches: dict[str, list[TraceEvent]] = {}
    for event in events:
        if event.tx_id.startswith(tx_id):
            matches.setdefault(event.tx_id, []).append(event)
    if not matches:
        return None
    if len(matches) > 1:
        sample = ", ".join(sorted(matches)[:4])
        raise ValueError(f"tx id prefix {tx_id!r} is ambiguous ({sample}, ...)")
    full_id, found = matches.popitem()
    return StitchedTrace(tx_id=full_id, events=found)


def trace_tx_ids(events: Iterable[TraceEvent]) -> list[str]:
    """Distinct transaction ids present in ``events`` (sorted)."""
    return sorted({event.tx_id for event in events})
