"""Observability: metrics registry, cross-process tracing, structured logs.

The live runtime is instrumented through three cooperating pieces:

* :mod:`repro.obs.registry` — named counters/gauges/histograms collected in a
  per-process :class:`MetricsRegistry`; a shared inert :data:`NULL_REGISTRY`
  makes every instrument a no-op so the deterministic simulator pays nothing
  and stays bit-identical.
* :mod:`repro.obs.trace` — sampled per-transaction span events appended to
  JSONL files, one per process, stitched back into a cross-process timeline
  on the shared monotonic clock.
* :mod:`repro.obs.logging` — one-call structured (JSON-lines) or text logging
  setup shared by ``repro serve``/``repro cluster``.
* :mod:`repro.obs.slo` — per-fault-phase (pre/during/post) latency and
  availability windows computed from client-side timelines.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    TRACE_EVENTS,
    StitchedTrace,
    TraceEvent,
    TraceWriter,
    load_trace_events,
    sample_tx,
    stitch,
)

__all__ = [
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_EVENTS",
    "StitchedTrace",
    "TraceEvent",
    "TraceWriter",
    "load_trace_events",
    "sample_tx",
    "stitch",
]
