"""Shared logging setup for the live runtime CLIs.

``repro serve`` (and therefore every ``repro cluster`` child) routes its
stderr into per-replica log files; this module controls what lands there:
a ``--log-level`` threshold and either the classic text format or JSON
lines, one object per record, machine-greppable across a whole run
directory (``{"t": ..., "level": ..., "logger": ..., "msg": ..., ...}``).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Any

#: Accepted ``--log-level`` values, mapped onto the stdlib levels.
LOG_LEVELS: dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Accepted ``--log-format`` values.
LOG_FORMATS: tuple[str, ...] = ("text", "json")


class JsonLineFormatter(logging.Formatter):
    """Render each record as one JSON object per line.

    ``context`` fields (e.g. ``{"replica": 3}``) are merged into every
    record so one grep over a run directory can filter by process.
    """

    def __init__(self, context: dict[str, Any] | None = None) -> None:
        super().__init__()
        self.context = dict(context or {})

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "t": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        entry.update(self.context)
        if record.exc_info and record.exc_info[0] is not None:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, separators=(",", ":"), default=str)


def setup_logging(
    level: str = "info",
    fmt: str = "text",
    *,
    stream: IO[str] | None = None,
    context: dict[str, Any] | None = None,
) -> logging.Handler:
    """Configure the root logger once for a CLI process.

    Idempotent: previous handlers installed by this function are replaced,
    so re-invocation (tests, in-process drivers) never duplicates output.
    Returns the installed handler.
    """
    level_value = LOG_LEVELS.get(level.lower())
    if level_value is None:
        raise ValueError(f"unknown log level {level!r} (choose from {sorted(LOG_LEVELS)})")
    if fmt not in LOG_FORMATS:
        raise ValueError(f"unknown log format {fmt!r} (choose from {LOG_FORMATS})")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if fmt == "json":
        handler.set_name("repro-obs-json")
        handler.setFormatter(JsonLineFormatter(context))
    else:
        handler.set_name("repro-obs-text")
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    root = logging.getLogger()
    for existing in list(root.handlers):
        if (existing.get_name() or "").startswith("repro-obs-"):
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level_value)
    return handler
