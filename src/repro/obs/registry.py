"""Named-instrument metrics registry for the live runtime.

One :class:`MetricsRegistry` lives inside each live process (replica server,
benchmark harness).  Instruments are created once by name and then mutated on
hot paths with plain attribute arithmetic — no locks are needed because every
producer runs on the single consensus event loop, and the control-plane
reader snapshots from that same loop.

The simulator must stay bit-identical and pay nothing for instrumentation,
so the registry has an inert twin: :data:`NULL_REGISTRY` hands out shared
no-op instruments whose mutators discard their arguments.  Code holds an
instrument reference either way and never branches on "is observability on"
in a hot path.

Instrument naming convention: ``<layer>.<metric>`` with the layer one of
``transport``, ``server``, ``replica``, ``consensus``, ``ledger`` or
``workers`` (see ``docs/observability.md`` for the full catalogue).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable

#: Histogram bucket ladder: powers of two from 1 µs up to ~17 minutes (also
#: covers dimensionless sizes 1..2^30).  44 buckets keeps ``observe`` a
#: single bisect over a small tuple.
_BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2.0**k for k in range(44))


class Counter:
    """Monotonic counter (``inc``); read through :attr:`value`."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value: ``set`` explicitly, or computed by a callback.

    Callback gauges (see :meth:`MetricsRegistry.gauge_fn`) are evaluated
    lazily at snapshot time, so tracking a queue depth or a bucket backlog
    costs nothing between control-plane reads.
    """

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def read(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                # A dying callback (e.g. probing a torn-down replica) must
                # never break a metrics snapshot.
                return 0.0
        return self.value


class Histogram:
    """Fixed-ladder exponential histogram (count/sum/max + quantiles).

    ``observe`` is O(log buckets); quantiles are estimated as the geometric
    midpoint of the bucket holding the requested rank, which is accurate to
    the 2x bucket width — plenty for latency reporting.
    """

    __slots__ = ("name", "count", "total", "maximum", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        # One overflow slot past the ladder for values beyond the last bound.
        self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        self._buckets[bisect_right(_BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) of observed values."""
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0
        for index, bucket_count in enumerate(self._buckets):
            if not bucket_count:
                continue
            seen += bucket_count
            if seen > rank:
                if index == 0:
                    return _BUCKET_BOUNDS[0] / 2.0
                if index >= len(_BUCKET_BOUNDS):
                    return self.maximum
                low = _BUCKET_BOUNDS[index - 1]
                high = min(_BUCKET_BOUNDS[index], self.maximum or _BUCKET_BOUNDS[index])
                return (low + high) / 2.0
        return self.maximum


class MetricsRegistry:
    """Create-by-name instrument registry with a flat snapshot view."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> Gauge:
        """Register (or re-bind) a callback gauge evaluated at snapshot time."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, fn)
        else:
            instrument.fn = fn
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict[str, float]:
        """Flat ``{name: value}`` view of every instrument.

        Histograms expand into ``<name>.count/.mean/.p50/.p99/.max`` so the
        snapshot stays a JSON-friendly flat float map on the control plane.
        """
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            out[name] = gauge.read()
        for name, histogram in self._histograms.items():
            out[f"{name}.count"] = float(histogram.count)
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.p50"] = histogram.quantile(0.50)
            out[f"{name}.p99"] = histogram.quantile(0.99)
            out[f"{name}.max"] = histogram.maximum
        return dict(sorted(out.items()))


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0
    fn = None

    def set(self, value: float) -> None:
        pass

    def read(self) -> float:
        return 0.0


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    maximum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Inert registry: every instrument is a shared do-nothing singleton.

    This is what the simulator (and ``--no-obs`` live replicas) hold, so
    instrumented code never branches: ``self._hits.inc()`` is simply a no-op
    method call.  ``snapshot`` is empty, signalling "not instrumented" to
    the control plane.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict[str, float]:
        return {}


#: Process-wide inert registry; the simulator's default.
NULL_REGISTRY = NullRegistry()
