"""Phase-aware SLO windows: pre/during/post-fault latency and availability.

A chaos run is three experiments in one: the healthy warm-up before the
first fault fires, the degraded window while faults are active (plus the
detection/view-change settle time), and the recovered tail.  One end-of-run
aggregate blurs them together; this module splits the client-observed
timelines into those windows and computes, per phase:

* p50/p99/p999 **committed latency** (submit → f+1 replies, committed txs
  whose reply landed inside the phase);
* **time-windowed availability** — the fraction of fixed-size sub-windows
  (0.5 s, the paper's Fig. 7 resolution) in which at least one transaction
  completed, over the sub-windows where completions were in demand;
* **view changes** attributed to the phase from mid-run control-plane
  samples.

All timestamps live on the shared monotonic clock (``loop.time()``), the
same axis the trace files and ``LatencyTracker`` use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: Availability sub-window width in seconds (matches the throughput series).
AVAILABILITY_WINDOW = 0.5

#: Phase names in order.
PHASE_NAMES: tuple[str, ...] = ("pre", "during", "post")


def quantile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (0 for an empty sequence)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass(frozen=True)
class PhaseWindow:
    """One named half-open time window ``[start, end)`` on the run clock."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def fault_phase_windows(
    run_start: float,
    run_end: float,
    event_times: Iterable[float],
    *,
    settle: float = 0.0,
) -> list[PhaseWindow]:
    """Split ``[run_start, run_end)`` around fault events.

    ``pre`` ends at the first event, ``during`` spans first event → last
    event + ``settle`` (the failure-detector/view-change window — a crash's
    damage outlives the SIGKILL instant), ``post`` is the rest.  Events
    outside the run and empty windows are dropped; with no events the whole
    run is a single ``pre`` window.
    """
    times = sorted(t for t in event_times if run_start <= t <= run_end)
    if run_end <= run_start:
        return []
    if not times:
        return [PhaseWindow("pre", run_start, run_end)]
    during_start = times[0]
    during_end = min(run_end, times[-1] + max(0.0, settle))
    windows = [
        PhaseWindow("pre", run_start, during_start),
        PhaseWindow("during", during_start, during_end),
        PhaseWindow("post", during_end, run_end),
    ]
    return [w for w in windows if w.duration > 1e-9]


def fault_episode_windows(
    run_start: float,
    run_end: float,
    episodes: Iterable[tuple[float, float, str]],
    *,
    settle: float = 0.0,
) -> list[PhaseWindow]:
    """Split ``[run_start, run_end)`` around *each* fault episode.

    Where :func:`fault_phase_windows` folds every event into one global
    pre/during/post split, this keeps episodes apart: ``pre`` runs up to the
    first episode, then each episode contributes a ``during:<label>`` window
    (its ``[start, end + settle)`` interval) and a ``post:<label>`` window
    covering the recovered stretch up to the next episode (or the run end).
    Overlapping episodes — a crash inside a partition window, say — merge
    into one ``during`` window with their labels joined by `` + ``.

    ``episodes`` is an iterable of ``(start, end, label)`` on the run clock;
    with no episodes inside the run the whole thing is a single ``pre``
    window, mirroring :func:`fault_phase_windows`.
    """
    if run_end <= run_start:
        return []
    margin = max(0.0, settle)
    clamped: list[tuple[float, float, str]] = []
    for start, end, label in episodes:
        start = max(start, run_start)
        end = min(max(end, start) + margin, run_end)
        if start >= run_end or end <= run_start or end <= start:
            continue
        clamped.append((start, end, label))
    if not clamped:
        return [PhaseWindow("pre", run_start, run_end)]
    clamped.sort()
    merged: list[tuple[float, float, str]] = [clamped[0]]
    for start, end, label in clamped[1:]:
        last_start, last_end, last_label = merged[-1]
        if start < last_end:
            merged[-1] = (last_start, max(last_end, end), f"{last_label} + {label}")
        else:
            merged.append((start, end, label))
    windows = [PhaseWindow("pre", run_start, merged[0][0])]
    for index, (start, end, label) in enumerate(merged):
        next_start = merged[index + 1][0] if index + 1 < len(merged) else run_end
        windows.append(PhaseWindow(f"during:{label}", start, end))
        windows.append(PhaseWindow(f"post:{label}", end, next_start))
    return [w for w in windows if w.duration > 1e-9]


@dataclass
class PhaseSLO:
    """Client-observed service levels within one phase window."""

    phase: str
    start: float
    end: float
    submitted: int = 0
    completed: int = 0
    committed: int = 0
    p50: float = 0.0
    p99: float = 0.0
    p999: float = 0.0
    #: Fraction of in-demand availability sub-windows with >= 1 completion.
    availability: float = 1.0
    #: View changes attributed to this phase (None: no mid-run samples).
    view_changes: int | None = None
    #: Client-observed monotonicity violations (committed counter or
    #: delivered frontier regressing) inside this phase (None: no run log).
    regressions: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class StatusSample:
    """One replica's control-plane status at one poll instant.

    The chaos driver polls every replica ~twice a second; the resulting
    sample stream is the *run log* the client-side staleness and
    monotonicity checkers read.
    """

    at: float
    replica: int
    committed: int
    frontier: tuple[int, ...]
    digest: int


@dataclass
class ConsistencyReport:
    """Client-side consistency verdict over a run's status-sample log.

    *Monotonicity*: a client polling one replica must never watch its
    committed counter or delivered frontier move backwards (a planned
    process restart is an allowed reset — the fresh process legitimately
    starts from zero and catches back up).  *Convergence*: once the run
    settles, every replica must report one state digest.  *Staleness* is
    informational: how far (in seconds) the laggiest replica's committed
    state trailed the cluster head at the worst moment — a partitioned
    minority's staleness grows for the length of the partition and should
    collapse after heal + catch-up.
    """

    samples: int = 0
    replicas: int = 0
    committed_regressions: int = 0
    frontier_regressions: int = 0
    digest_forks: int = 0
    max_staleness: float = 0.0
    #: Times at which regressions were observed (feeds per-phase counts).
    regression_times: tuple[float, ...] = ()

    @property
    def ok(self) -> bool:
        """No client-observed regression and no settled digest fork."""
        return (
            self.committed_regressions == 0
            and self.frontier_regressions == 0
            and self.digest_forks == 0
        )

    def lines(self) -> list[str]:
        verdict = "ok" if self.ok else "VIOLATED"
        return [
            f"consistency          : {verdict} "
            f"({self.samples} samples, {self.replicas} replicas)",
            f"  committed regress  : {self.committed_regressions}",
            f"  frontier regress   : {self.frontier_regressions}",
            f"  settled digest forks: {self.digest_forks}",
            f"  max staleness      : {self.max_staleness:.2f}s",
        ]


def check_consistency(
    samples: Iterable[StatusSample],
    *,
    final_digests: dict[int, int] | None = None,
    resets: Iterable[tuple[float, int]] | None = None,
) -> ConsistencyReport:
    """Run the staleness/monotonicity checkers over a status-sample log.

    ``resets`` lists ``(time, replica)`` planned restarts: the first sample
    from a replica at or after one of its reset times re-baselines its
    monotonicity state instead of counting as a regression.  ``final_digests``
    (replica → settled state digest, e.g. ``LoadReport.state_digests``)
    feeds the settled-fork check; mid-run digest divergence is *not* a fork —
    replicas legitimately execute at different speeds.
    """
    ordered = sorted(samples, key=lambda s: (s.at, s.replica))
    per_replica_resets: dict[int, list[float]] = {}
    for at, replica in resets or ():
        per_replica_resets.setdefault(replica, []).append(at)
    for times in per_replica_resets.values():
        times.sort()

    report = ConsistencyReport(samples=len(ordered))
    report.replicas = len({s.replica for s in ordered})
    regression_times: list[float] = []

    previous: dict[int, StatusSample] = {}
    for sample in ordered:
        pending = per_replica_resets.get(sample.replica, [])
        if pending and sample.at >= pending[0]:
            # Consume every reset time this sample has passed; the sample
            # itself becomes the replica's new baseline.
            while pending and sample.at >= pending[0]:
                pending.pop(0)
            previous[sample.replica] = sample
            continue
        prev = previous.get(sample.replica)
        if prev is not None:
            if sample.committed < prev.committed:
                report.committed_regressions += 1
                regression_times.append(sample.at)
            length = min(len(sample.frontier), len(prev.frontier))
            if any(
                sample.frontier[i] < prev.frontier[i] for i in range(length)
            ):
                report.frontier_regressions += 1
                regression_times.append(sample.at)
        previous[sample.replica] = sample

    # Staleness: how long ago the cluster head was at this replica's
    # committed count.  The head history is the running max over all
    # replicas' committed counters.
    head: list[tuple[float, int]] = []
    running = 0
    for sample in ordered:
        if sample.committed > running:
            running = sample.committed
            head.append((sample.at, running))
    for sample in ordered:
        overtaken_at: float | None = None
        for at, value in head:
            if at > sample.at:
                break
            if value > sample.committed:
                overtaken_at = at
                break
        if overtaken_at is not None:
            report.max_staleness = max(report.max_staleness, sample.at - overtaken_at)

    if final_digests:
        report.digest_forks = max(0, len(set(final_digests.values())) - 1)
    report.regression_times = tuple(regression_times)
    return report


def _counter_at(samples: Sequence[tuple[float, int]], when: float) -> int:
    """Value of a sampled monotonic counter at time ``when`` (0 before the
    first sample; last sample at or before ``when`` otherwise)."""
    value = 0
    for t, count in samples:
        if t > when:
            break
        value = count
    return value


def compute_phase_slos(
    windows: Sequence[PhaseWindow],
    timelines: Iterable,
    *,
    availability_window: float = AVAILABILITY_WINDOW,
    view_change_samples: Sequence[tuple[float, int]] | None = None,
    regression_times: Sequence[float] | None = None,
) -> list[PhaseSLO]:
    """Compute per-phase SLOs from client-side transaction timelines.

    ``timelines`` is an iterable of
    :class:`~repro.metrics.latency.TransactionTimeline` (only
    ``submitted_at``/``replied_at``/``committed`` are consulted).
    ``view_change_samples`` is an optional sorted list of
    ``(time, cumulative view changes)`` pairs from mid-run status polls;
    ``regression_times`` the monotonicity-violation instants from
    :func:`check_consistency`, attributed to phases by time.
    """
    records = [
        (t.submitted_at, t.replied_at, t.committed)
        for t in timelines
        if t.submitted_at is not None
    ]
    samples = sorted(view_change_samples or [])
    out: list[PhaseSLO] = []
    for window in windows:
        latencies: list[float] = []
        submitted = completed = committed = 0
        completions: list[float] = []
        for submitted_at, replied_at, was_committed in records:
            if window.start <= submitted_at < window.end:
                submitted += 1
            if replied_at is None or not window.start <= replied_at < window.end:
                continue
            completed += 1
            completions.append(replied_at)
            if was_committed:
                committed += 1
                latencies.append(replied_at - submitted_at)
        slo = PhaseSLO(
            phase=window.name,
            start=window.start,
            end=window.end,
            submitted=submitted,
            completed=completed,
            committed=committed,
            p50=quantile(latencies, 0.50),
            p99=quantile(latencies, 0.99),
            p999=quantile(latencies, 0.999),
        )
        slo.availability = _availability(
            window, records, completions, availability_window
        )
        if samples:
            slo.view_changes = max(
                0, _counter_at(samples, window.end) - _counter_at(samples, window.start)
            )
        if regression_times is not None:
            slo.regressions = sum(
                1 for t in regression_times if window.start <= t < window.end
            )
        out.append(slo)
    return out


def _availability(
    window: PhaseWindow,
    records: list[tuple[float, float | None, bool]],
    completions: list[float],
    sub_window: float,
) -> float:
    """Fraction of in-demand sub-windows in which something completed.

    A sub-window is *in demand* when at least one transaction was submitted
    at or before its end and had not completed before it began — i.e. a
    client was actually waiting.  Idle sub-windows (nothing outstanding)
    don't count against availability; a phase with no demand at all is
    vacuously 100% available.
    """
    if sub_window <= 0 or window.duration <= 0:
        return 1.0
    count = int(window.duration / sub_window + 0.999999)
    completed_sorted = sorted(completions)
    available = 0
    in_demand = 0
    for index in range(count):
        sub_start = window.start + index * sub_window
        sub_end = min(window.start + (index + 1) * sub_window, window.end)
        demand = any(
            submitted_at <= sub_end and (replied_at is None or replied_at >= sub_start)
            for submitted_at, replied_at, _ in records
        )
        if not demand:
            continue
        in_demand += 1
        if any(sub_start <= t < sub_end for t in completed_sorted):
            available += 1
    if in_demand == 0:
        return 1.0
    return available / in_demand
