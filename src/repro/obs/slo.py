"""Phase-aware SLO windows: pre/during/post-fault latency and availability.

A chaos run is three experiments in one: the healthy warm-up before the
first fault fires, the degraded window while faults are active (plus the
detection/view-change settle time), and the recovered tail.  One end-of-run
aggregate blurs them together; this module splits the client-observed
timelines into those windows and computes, per phase:

* p50/p99/p999 **committed latency** (submit → f+1 replies, committed txs
  whose reply landed inside the phase);
* **time-windowed availability** — the fraction of fixed-size sub-windows
  (0.5 s, the paper's Fig. 7 resolution) in which at least one transaction
  completed, over the sub-windows where completions were in demand;
* **view changes** attributed to the phase from mid-run control-plane
  samples.

All timestamps live on the shared monotonic clock (``loop.time()``), the
same axis the trace files and ``LatencyTracker`` use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

#: Availability sub-window width in seconds (matches the throughput series).
AVAILABILITY_WINDOW = 0.5

#: Phase names in order.
PHASE_NAMES: tuple[str, ...] = ("pre", "during", "post")


def quantile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (0 for an empty sequence)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass(frozen=True)
class PhaseWindow:
    """One named half-open time window ``[start, end)`` on the run clock."""

    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def fault_phase_windows(
    run_start: float,
    run_end: float,
    event_times: Iterable[float],
    *,
    settle: float = 0.0,
) -> list[PhaseWindow]:
    """Split ``[run_start, run_end)`` around fault events.

    ``pre`` ends at the first event, ``during`` spans first event → last
    event + ``settle`` (the failure-detector/view-change window — a crash's
    damage outlives the SIGKILL instant), ``post`` is the rest.  Events
    outside the run and empty windows are dropped; with no events the whole
    run is a single ``pre`` window.
    """
    times = sorted(t for t in event_times if run_start <= t <= run_end)
    if run_end <= run_start:
        return []
    if not times:
        return [PhaseWindow("pre", run_start, run_end)]
    during_start = times[0]
    during_end = min(run_end, times[-1] + max(0.0, settle))
    windows = [
        PhaseWindow("pre", run_start, during_start),
        PhaseWindow("during", during_start, during_end),
        PhaseWindow("post", during_end, run_end),
    ]
    return [w for w in windows if w.duration > 1e-9]


@dataclass
class PhaseSLO:
    """Client-observed service levels within one phase window."""

    phase: str
    start: float
    end: float
    submitted: int = 0
    completed: int = 0
    committed: int = 0
    p50: float = 0.0
    p99: float = 0.0
    p999: float = 0.0
    #: Fraction of in-demand availability sub-windows with >= 1 completion.
    availability: float = 1.0
    #: View changes attributed to this phase (None: no mid-run samples).
    view_changes: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


def _counter_at(samples: Sequence[tuple[float, int]], when: float) -> int:
    """Value of a sampled monotonic counter at time ``when`` (0 before the
    first sample; last sample at or before ``when`` otherwise)."""
    value = 0
    for t, count in samples:
        if t > when:
            break
        value = count
    return value


def compute_phase_slos(
    windows: Sequence[PhaseWindow],
    timelines: Iterable,
    *,
    availability_window: float = AVAILABILITY_WINDOW,
    view_change_samples: Sequence[tuple[float, int]] | None = None,
) -> list[PhaseSLO]:
    """Compute per-phase SLOs from client-side transaction timelines.

    ``timelines`` is an iterable of
    :class:`~repro.metrics.latency.TransactionTimeline` (only
    ``submitted_at``/``replied_at``/``committed`` are consulted).
    ``view_change_samples`` is an optional sorted list of
    ``(time, cumulative view changes)`` pairs from mid-run status polls.
    """
    records = [
        (t.submitted_at, t.replied_at, t.committed)
        for t in timelines
        if t.submitted_at is not None
    ]
    samples = sorted(view_change_samples or [])
    out: list[PhaseSLO] = []
    for window in windows:
        latencies: list[float] = []
        submitted = completed = committed = 0
        completions: list[float] = []
        for submitted_at, replied_at, was_committed in records:
            if window.start <= submitted_at < window.end:
                submitted += 1
            if replied_at is None or not window.start <= replied_at < window.end:
                continue
            completed += 1
            completions.append(replied_at)
            if was_committed:
                committed += 1
                latencies.append(replied_at - submitted_at)
        slo = PhaseSLO(
            phase=window.name,
            start=window.start,
            end=window.end,
            submitted=submitted,
            completed=completed,
            committed=committed,
            p50=quantile(latencies, 0.50),
            p99=quantile(latencies, 0.99),
            p999=quantile(latencies, 0.999),
        )
        slo.availability = _availability(
            window, records, completions, availability_window
        )
        if samples:
            slo.view_changes = max(
                0, _counter_at(samples, window.end) - _counter_at(samples, window.start)
            )
        out.append(slo)
    return out


def _availability(
    window: PhaseWindow,
    records: list[tuple[float, float | None, bool]],
    completions: list[float],
    sub_window: float,
) -> float:
    """Fraction of in-demand sub-windows in which something completed.

    A sub-window is *in demand* when at least one transaction was submitted
    at or before its end and had not completed before it began — i.e. a
    client was actually waiting.  Idle sub-windows (nothing outstanding)
    don't count against availability; a phase with no demand at all is
    vacuously 100% available.
    """
    if sub_window <= 0 or window.duration <= 0:
        return 1.0
    count = int(window.duration / sub_window + 0.999999)
    completed_sorted = sorted(completions)
    available = 0
    in_demand = 0
    for index in range(count):
        sub_start = window.start + index * sub_window
        sub_end = min(window.start + (index + 1) * sub_window, window.end)
        demand = any(
            submitted_at <= sub_end and (replied_at is None or replied_at >= sub_start)
            for submitted_at, replied_at, _ in records
        )
        if not demand:
            continue
        in_demand += 1
        if any(sub_start <= t < sub_end for t in completed_sorted):
            available += 1
    if in_demand == 0:
        return 1.0
    return available / in_demand
