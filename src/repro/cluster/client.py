"""Simulated clients for the message-level cluster.

A client submits each transaction to ``f + 1`` (or all) replicas, waits for
``f + 1`` replies and records the end-to-end latency, matching the paper's
measurement methodology ("the average end-to-end delay from the moment clients
submit transactions until they receive f + 1 responses").
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.cluster.messages import ClientReply, ClientRequest
from repro.ledger.transactions import Transaction
from repro.metrics.summary import MetricsCollector
from repro.sim.process import Process


class ClientNode(Process):
    """An open-loop client driving the message-level cluster."""

    def __init__(
        self,
        node_id: int,
        replica_ids: list[int],
        metrics: MetricsCollector,
        *,
        fanout: int | None = None,
    ) -> None:
        super().__init__(node_id)
        self.replica_ids = list(replica_ids)
        self.metrics = metrics
        fault_tolerance = (len(replica_ids) - 1) // 3
        self.reply_quorum = fault_tolerance + 1
        self.fanout = fanout if fanout is not None else len(replica_ids)
        self._replies: dict[str, dict[int, bool]] = {}
        self._completed: set[str] = set()
        self.submitted = 0
        self.completed = 0

    # -- submission ------------------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        """Submit one transaction now."""
        now = self.sim.now
        tx.submitted_at = now
        self.metrics.latency.record_submitted(tx.tx_id, now)
        self.submitted += 1
        targets = self.replica_ids[: self.fanout]
        for replica in targets:
            self.send(replica, ClientRequest(tx=tx, client_node=self.node_id))

    def submit_schedule(self, transactions: Iterable[Transaction], times: Iterable[float]) -> None:
        """Schedule a sequence of submissions at absolute simulated times."""
        for tx, time in zip(transactions, times):
            self.sim.schedule_at(time, lambda tx=tx: self.submit(tx))

    # -- replies ------------------------------------------------------------------

    def receive(self, sender: int, message: Any) -> None:
        if not isinstance(message, ClientReply):
            return
        if message.tx_id in self._completed:
            return
        replies = self._replies.setdefault(message.tx_id, {})
        replies[message.replica] = message.committed
        if len(replies) >= self.reply_quorum:
            self._completed.add(message.tx_id)
            self.completed += 1
            self.metrics.latency.record_replied(message.tx_id, self.sim.now)

    # -- introspection ----------------------------------------------------------------

    def pending_count(self) -> int:
        """Transactions submitted but without a reply quorum yet."""
        return self.submitted - self.completed
