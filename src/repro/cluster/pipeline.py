"""Pipeline cluster: the quorum-fidelity experiment driver.

This driver reproduces the paper's large-scale experiments (up to 128
replicas) on a laptop by simulating the system at *instance* granularity:

* every SB instance is a block-production pipeline whose leader cuts batches
  from its bucket, occupies its uplink for the block's serialisation time and
  sees the block delivered after the quorum-latency model's consensus delay;
* one representative honest replica runs the full, real consensus core
  (Orthrus or a baseline) — partitioning, partial/global ordering, escrow and
  execution are exactly the library code the tests exercise;
* clients are closed-loop: the transaction pool is topped up as leaders drain
  it, which drives the system to its peak (saturation) throughput, the
  operating point the paper reports.

Sampling: blocks carry ``samples_per_block`` representative transactions while
the timing model charges the full ``represented_batch_size`` (4096 in the
paper).  Reported throughput is scaled by the ratio; latency, ordering and
execution behaviour are measured on the representative transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.faults import FaultPlan
from repro.core.config import CoreConfig
from repro.core.interfaces import ConsensusCore
from repro.core.outcomes import ConfirmationPath, TxOutcome
from repro.core.partition import TransactionPartitioner
from repro.crypto.signatures import CryptoCostModel
from repro.errors import ExperimentError
from repro.ledger.blocks import BLOCK_HEADER_BYTES, Block
from repro.ledger.transactions import Transaction
from repro.metrics.summary import MetricsCollector, RunMetrics
from repro.net.latency import BandwidthModel, latency_model_for
from repro.protocols.dqbft import DQBFTCore
from repro.protocols.registry import build_core
from repro.sb.quorum.model import QuorumLatencyModel
from repro.sim.simulator import Simulator
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload


@dataclass
class PipelineConfig:
    """Configuration of one pipeline-cluster experiment run."""

    protocol: str = "orthrus"
    num_replicas: int = 16
    environment: str = "wan"
    represented_batch_size: int = 4096
    samples_per_block: int = 8
    payload_size: int = 500
    batch_timeout: float = 0.25
    duration: float = 40.0
    warmup: float = 5.0
    max_in_flight: int = 4
    #: Log-normal sigma applied to each block's production occupancy.  Real
    #: leaders do not cut batches in lock-step (fill levels, GC pauses and
    #: scheduling noise desynchronise instances), and this jitter is what
    #: makes the global-ordering wait of pre-determined protocols visible
    #: even without stragglers.
    production_jitter_sigma: float = 0.25
    epoch_blocks: int | None = None
    epoch_pause: float = 0.5
    throughput_window: float = 0.5
    seed: int = 1
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    faults: FaultPlan = field(default_factory=FaultPlan.none)

    def __post_init__(self) -> None:
        if self.num_replicas < 4:
            raise ExperimentError("num_replicas must be at least 4")
        if self.samples_per_block <= 0:
            raise ExperimentError("samples_per_block must be positive")
        if self.represented_batch_size < self.samples_per_block:
            raise ExperimentError(
                "represented_batch_size must be >= samples_per_block"
            )
        if self.duration <= self.warmup:
            raise ExperimentError("duration must exceed warmup")

    @property
    def num_instances(self) -> int:
        """The paper runs one instance per replica (m = n)."""
        return self.num_replicas

    @property
    def scale_factor(self) -> float:
        """Throughput multiplier from representative to full batches."""
        return self.represented_batch_size / self.samples_per_block


class _InstanceState:
    """Mutable production state of one SB instance."""

    __slots__ = (
        "index",
        "leader",
        "next_sn",
        "uplink_free_at",
        "in_flight",
        "crashed",
        "waiting_for_slot",
        "produce_scheduled",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.leader = index
        self.next_sn = 0
        self.uplink_free_at = 0.0
        self.in_flight = 0
        self.crashed = False
        self.waiting_for_slot = False
        self.produce_scheduled = False


class PipelineCluster:
    """Quorum-fidelity Multi-BFT cluster simulation."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.sim = Simulator(config.seed)
        self._latency = latency_model_for(config.environment)
        self._bandwidth = BandwidthModel()
        self._crypto = CryptoCostModel()
        self._rng = self.sim.rng.fork("pipeline")
        self.quorum_model = QuorumLatencyModel(
            num_replicas=config.num_replicas,
            latency_model=self._latency,
            bandwidth_model=self._bandwidth,
            crypto_model=self._crypto,
            rng=self.sim.rng.fork("quorum"),
        )
        core_config = CoreConfig(
            num_instances=config.num_instances,
            batch_size=config.samples_per_block,
            batch_timeout=config.batch_timeout,
            epoch_length=config.epoch_blocks or 1_000_000,
        )
        self.core: ConsensusCore = build_core(config.protocol, core_config)
        workload_config = replace(config.workload, payload_size=config.payload_size)
        self.workload = EthereumStyleWorkload(workload_config)
        self.workload.universe.populate(self.core.store)
        self.metrics = MetricsCollector()
        self._instances = [
            _InstanceState(i) for i in range(config.num_instances)
        ]
        self._completed_epochs = 0
        self._epoch_paused_until = 0.0
        self._sequencer_instance = self._pick_sequencer()
        self._pending_decisions: list[tuple[int, int]] = []
        self._accounts_by_bucket = self._index_accounts_by_bucket()
        #: Simple counters surfaced through RunMetrics.extra.
        self.blocks_delivered = 0
        self.blocks_produced = 0

    # -- setup helpers ---------------------------------------------------------

    def _pick_sequencer(self) -> int:
        """DQBFT's ordering instance: the first non-straggler replica."""
        for candidate in range(self.config.num_replicas):
            if self.config.faults.slowdown_of(candidate) == 1.0:
                return candidate
        return 0

    def _index_accounts_by_bucket(self) -> list[list[str]]:
        """Group workload accounts by the bucket their key hashes to.

        Used for targeted (per-instance) closed-loop replenishment when the
        protocol partitions by payer: keeping every instance's bucket supplied
        is how the paper's peak-throughput operating point is reached, and it
        avoids penalising Orthrus for sampling artefacts that a 4096-deep
        batch would absorb in the real system.
        """
        buckets: list[list[str]] = [[] for _ in range(self.config.num_instances)]
        partitioner = self.core.partitioner
        for key in self.workload.universe.account_keys():
            buckets[partitioner.assign_object(key)].append(key)
        return buckets

    def _payer_for_instance(self, instance: int) -> str | None:
        """Zipf-skewed payer whose bucket is ``instance`` (None if empty)."""
        accounts = self._accounts_by_bucket[instance]
        if not accounts:
            return None
        index = self._rng.zipf_index(len(accounts), self.workload.config.zipf_exponent)
        return accounts[index]

    def _client_delay(self) -> float:
        """One-way delay between a client and a replica."""
        peer = self._rng.randint(0, self.config.num_replicas - 1)
        return self._latency.delay(self.config.num_replicas + 1, peer, self._rng) or 0.0005

    # -- workload ingestion -------------------------------------------------------

    def _replenish(self, count: int, *, instance: int | None = None) -> None:
        """Submit ``count`` fresh transactions (closed-loop load).

        When ``instance`` is given and the protocol partitions by payer, the
        new transactions' primary payers are drawn from accounts assigned to
        that instance so its bucket stays saturated.
        """
        now = self.sim.now
        target_by_payer = instance is not None and not isinstance(
            self.core.partitioner, TransactionPartitioner
        )
        for _ in range(count):
            payer = self._payer_for_instance(instance) if target_by_payer else None
            tx = self.workload.next_transaction(primary_payer=payer)
            self.metrics.latency.record_submitted(tx.tx_id, now)
            delay = self._client_delay()
            self.sim.schedule(delay, lambda tx=tx: self._receive(tx))

    def _receive(self, tx: Transaction) -> None:
        self.metrics.latency.record_received(tx.tx_id, self.sim.now)
        self.core.submit(tx)

    # -- block production ----------------------------------------------------------

    def start(self) -> None:
        """Prime the workload pool and start every instance's pipeline."""
        for state in self._instances:
            self._replenish(2 * self.config.samples_per_block, instance=state.index)
            self._schedule_produce(state, self.config.batch_timeout)
        for replica, crash_time in self.config.faults.crashes.items():
            self.sim.schedule(crash_time, lambda r=replica: self._crash(r))
        if isinstance(self.core, DQBFTCore):
            self.sim.schedule(self.config.batch_timeout, self._sequencer_tick)

    def _schedule_produce(self, state: _InstanceState, delay: float) -> None:
        if state.produce_scheduled:
            return
        state.produce_scheduled = True
        self.sim.schedule(max(delay, 0.0), lambda: self._try_produce(state))

    def _try_produce(self, state: _InstanceState) -> None:
        state.produce_scheduled = False
        now = self.sim.now
        if state.crashed:
            return
        if now < self._epoch_paused_until:
            self._schedule_produce(state, self._epoch_paused_until - now)
            return
        if not self._epoch_allows(state):
            state.waiting_for_slot = True
            return
        if now < state.uplink_free_at:
            self._schedule_produce(state, state.uplink_free_at - now)
            return
        if state.in_flight >= self.config.max_in_flight:
            state.waiting_for_slot = True
            return
        batch = self.core.select_batch(state.index, self.config.samples_per_block)
        if not batch:
            self._replenish(self.config.samples_per_block, instance=state.index)
            self._schedule_produce(state, self.config.batch_timeout)
            return
        self._produce_block(state, batch)

    def _produce_block(self, state: _InstanceState, batch: list[Transaction]) -> None:
        now = self.sim.now
        rank = self.core.next_rank() if self.core.uses_ranks else None
        block = Block.create(
            instance=state.index,
            sequence_number=state.next_sn,
            transactions=batch,
            state=self.core.delivered_state(),
            proposer=state.leader,
            epoch=state.next_sn // (self.config.epoch_blocks or 1_000_000),
            rank=rank,
        )
        state.next_sn += 1
        self.blocks_produced += 1
        for tx in batch:
            self.metrics.latency.record_proposed(tx.tx_id, now)

        slowdown = self.config.faults.slowdown_of(state.leader)
        represented_count = max(
            1,
            round(
                len(batch)
                * self.config.represented_batch_size
                / self.config.samples_per_block
            ),
        )
        represented_bytes = (
            BLOCK_HEADER_BYTES + represented_count * self.config.payload_size
        )
        occupancy = self.quorum_model.leader_occupancy(
            represented_bytes, represented_count, slowdown=slowdown
        )
        if self.config.production_jitter_sigma > 0:
            occupancy = self._rng.lognormal_jitter(
                occupancy, self.config.production_jitter_sigma
            )
        delivery_delay = self.quorum_model.delivery_latency(
            state.leader,
            represented_bytes,
            represented_count,
            slowdown=slowdown,
            abstaining=self.config.faults.undetectable_faults,
        )
        delivery_delay += (
            self.config.faults.undetectable_faults
            * self.config.faults.retransmit_penalty_per_fault
        )
        state.uplink_free_at = now + occupancy
        state.in_flight += 1
        self.sim.schedule(delivery_delay, lambda: self._deliver(state, block))
        self._replenish(len(batch), instance=state.index)
        self._schedule_produce(state, occupancy)

    # -- delivery and execution -------------------------------------------------------

    def _deliver(self, state: _InstanceState, block: Block) -> None:
        now = self.sim.now
        state.in_flight -= 1
        self.blocks_delivered += 1
        for tx in block.transactions:
            self.metrics.latency.record_delivered(tx.tx_id, now)
        outcomes = self.core.on_block_delivered(block)
        self._handle_outcomes(outcomes)
        if isinstance(self.core, DQBFTCore):
            self._pending_decisions.append(block.block_id)
        self._maybe_complete_epoch()
        self._resume_waiting()

    def _sequencer_tick(self) -> None:
        """DQBFT sequencer: batch pending ordering decisions periodically.

        The designated ordering instance shares its leader's uplink and CPU
        with that replica's worker instance, so decisions are cut at the same
        cadence as regular blocks and take one consensus round to deliver.
        """
        if not isinstance(self.core, DQBFTCore):
            return
        interval = self.quorum_model.leader_occupancy(
            BLOCK_HEADER_BYTES + self.config.represented_batch_size * self.config.payload_size,
            self.config.represented_batch_size,
            slowdown=self.config.faults.slowdown_of(self._sequencer_instance),
        )
        if self._pending_decisions:
            decisions = list(self._pending_decisions)
            self._pending_decisions.clear()
            decision_delay = self.quorum_model.delivery_latency(
                self._sequencer_instance,
                BLOCK_HEADER_BYTES,
                0,
                slowdown=self.config.faults.slowdown_of(self._sequencer_instance),
                abstaining=self.config.faults.undetectable_faults,
            )
            self.sim.schedule(
                decision_delay,
                lambda: self._handle_outcomes(
                    self.core.on_sequencer_decision(decisions)  # type: ignore[attr-defined]
                ),
            )
        self.sim.schedule(max(interval, 0.05), self._sequencer_tick)

    def _handle_outcomes(self, outcomes: list[TxOutcome]) -> None:
        now = self.sim.now
        for outcome in outcomes:
            reply_delay = self._client_delay()
            self.metrics.record_outcome(
                outcome.tx.tx_id,
                now,
                committed=outcome.committed,
                partial_path=outcome.path is ConfirmationPath.PARTIAL,
            )
            self.metrics.latency.record_replied(outcome.tx.tx_id, now + reply_delay)

    def _resume_waiting(self) -> None:
        for state in self._instances:
            if state.waiting_for_slot and not state.crashed:
                state.waiting_for_slot = False
                self._schedule_produce(state, 0.0)

    # -- epochs -----------------------------------------------------------------------

    def _epoch_allows(self, state: _InstanceState) -> bool:
        """Whether the instance may propose its next sequence number."""
        if self.config.epoch_blocks is None:
            return True
        boundary = (self._completed_epochs + 1) * self.config.epoch_blocks
        return state.next_sn < boundary

    def _maybe_complete_epoch(self) -> None:
        if self.config.epoch_blocks is None:
            return
        boundary = (self._completed_epochs + 1) * self.config.epoch_blocks - 1
        delivered = self.core.delivered_state().sequence_numbers
        if all(sn >= boundary for sn in delivered):
            self._completed_epochs += 1
            self._epoch_paused_until = self.sim.now + self.config.epoch_pause
            for state in self._instances:
                self._schedule_produce(state, self.config.epoch_pause)

    # -- faults --------------------------------------------------------------------------

    def _crash(self, replica: int) -> None:
        """Crash a replica: the instance it leads stops producing (Fig. 7)."""
        state = self._instances[replica]
        state.crashed = True
        recovery_delay = (
            self.config.faults.view_change_timeout + self.config.faults.recovery_delay
        )
        self.sim.schedule(recovery_delay, lambda: self._recover(replica))

    def _recover(self, replica: int) -> None:
        """View change completed: the next replica takes over the instance."""
        state = self._instances[replica]
        state.crashed = False
        state.leader = (replica + 1) % self.config.num_replicas
        state.uplink_free_at = self.sim.now
        self._schedule_produce(state, 0.0)

    # -- running ----------------------------------------------------------------------------

    def run(self) -> RunMetrics:
        """Run the experiment and return scaled metrics."""
        self.start()
        self.sim.run(until=self.config.duration)
        extra = {
            "blocks_produced": float(self.blocks_produced),
            "blocks_delivered": float(self.blocks_delivered),
            "scale_factor": self.config.scale_factor,
            "sample_confirmed": float(self.metrics.committed + self.metrics.rejected),
        }
        metrics = self.metrics.finalize(
            start=self.config.warmup,
            end=self.config.duration,
            window=self.config.throughput_window,
            extra=extra,
        )
        return self._scale(metrics)

    def _scale(self, metrics: RunMetrics) -> RunMetrics:
        """Scale sample-transaction throughput up to represented batches."""
        factor = self.config.scale_factor
        metrics.throughput_tps *= factor
        for point in metrics.series:
            point.transactions = int(round(point.transactions * factor))
        return metrics


def run_pipeline_experiment(config: PipelineConfig) -> RunMetrics:
    """Convenience wrapper: build, run and return one experiment's metrics."""
    return PipelineCluster(config).run()
