"""Cluster drivers: message-level deployment and pipeline (quorum) fidelity."""

from repro.cluster.builder import MessageCluster, MessageClusterConfig
from repro.cluster.client import ClientNode
from repro.cluster.faults import (
    PAPER_STRAGGLER_SLOWDOWN,
    PAPER_VIEW_CHANGE_TIMEOUT,
    FaultPlan,
)
from repro.cluster.messages import ClientReply, ClientRequest
from repro.cluster.pipeline import PipelineCluster, PipelineConfig, run_pipeline_experiment
from repro.cluster.replica import MultiBFTReplica

__all__ = [
    "ClientNode",
    "ClientReply",
    "ClientRequest",
    "FaultPlan",
    "MessageCluster",
    "MessageClusterConfig",
    "MultiBFTReplica",
    "PAPER_STRAGGLER_SLOWDOWN",
    "PAPER_VIEW_CHANGE_TIMEOUT",
    "PipelineCluster",
    "PipelineConfig",
    "run_pipeline_experiment",
]
