"""Client-facing messages used by the message-level cluster."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ledger.transactions import Transaction
from repro.net.message import MESSAGE_OVERHEAD_BYTES


@dataclass(frozen=True)
class ClientRequest:
    """A client's submission of one transaction to a replica."""

    tx: Transaction
    client_node: int

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD_BYTES + self.tx.payload_size


@dataclass(frozen=True)
class ClientReply:
    """A replica's confirmation response to the submitting client.

    ``confirmed_at`` is the replica-clock time the transaction was executed;
    the live load generator uses it (with the shared monotonic clock on one
    host) to measure the reply stage of the latency breakdown.  Simulated
    clients ignore it.
    """

    tx_id: str
    replica: int
    committed: bool
    confirmed_at: float | None = None

    @property
    def size_bytes(self) -> int:
        return MESSAGE_OVERHEAD_BYTES
