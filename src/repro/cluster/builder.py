"""Builder for message-level clusters (replicas + client + network).

This is the high-fidelity driver: every replica is a full protocol node
exchanging PBFT messages over the simulated network.  It is used by the test
suite, the examples and the fault experiments at small scale; the large
sweeps use :mod:`repro.cluster.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.client import ClientNode
from repro.cluster.faults import FaultPlan
from repro.cluster.replica import MultiBFTReplica
from repro.core.config import CoreConfig
from repro.errors import ExperimentError
from repro.ledger.transactions import Transaction
from repro.metrics.summary import MetricsCollector, RunMetrics
from repro.net.latency import BandwidthModel, latency_model_for
from repro.net.network import Network
from repro.protocols.registry import build_core
from repro.sb.pbft.endpoint import PBFTConfig
from repro.sim.simulator import Simulator
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload


@dataclass
class MessageClusterConfig:
    """Configuration of a message-level cluster."""

    protocol: str = "orthrus"
    num_replicas: int = 4
    num_instances: int | None = None
    environment: str = "lan"
    batch_size: int = 16
    batch_interval: float = 0.05
    epoch_length: int = 1_000_000
    view_change_timeout: float = 10.0
    seed: int = 7
    workload: WorkloadConfig = field(default_factory=lambda: WorkloadConfig(num_accounts=64))
    faults: FaultPlan = field(default_factory=FaultPlan.none)

    def __post_init__(self) -> None:
        if self.num_replicas < 4:
            raise ExperimentError("message-level clusters need at least 4 replicas")

    @property
    def instances(self) -> int:
        """Number of SB instances (defaults to one per replica)."""
        return self.num_instances or self.num_replicas


class MessageCluster:
    """A fully wired message-level deployment."""

    def __init__(self, config: MessageClusterConfig) -> None:
        self.config = config
        self.sim = Simulator(config.seed)
        self.network = Network(
            self.sim,
            latency_model=latency_model_for(config.environment),
            bandwidth_model=BandwidthModel(),
        )
        self.metrics = MetricsCollector()
        self.workload = EthereumStyleWorkload(config.workload)
        core_config = CoreConfig(
            num_instances=config.instances,
            batch_size=config.batch_size,
            epoch_length=config.epoch_length,
        )
        pbft_config = PBFTConfig(view_change_timeout=config.view_change_timeout)
        self.replicas: list[MultiBFTReplica] = []
        for replica_id in range(config.num_replicas):
            core = build_core(config.protocol, core_config)
            self.workload.universe.populate(core.store)
            replica = MultiBFTReplica(
                replica_id=replica_id,
                num_replicas=config.num_replicas,
                core=core,
                pbft_config=pbft_config,
                batch_size=config.batch_size,
                batch_interval=config.batch_interval,
                metrics=self.metrics if replica_id == 0 else None,
            )
            self.network.register(replica)
            self.replicas.append(replica)
        self.client = ClientNode(
            node_id=config.num_replicas,
            replica_ids=list(range(config.num_replicas)),
            metrics=self.metrics,
        )
        self.network.register(self.client)
        self._apply_faults()

    # -- fault wiring ------------------------------------------------------------

    def _apply_faults(self) -> None:
        for replica_id, slowdown in self.config.faults.stragglers.items():
            self.network.set_slowdown(replica_id, slowdown)
        for replica_id, crash_time in self.config.faults.crashes.items():
            self.sim.schedule_at(
                crash_time, lambda r=replica_id: self._crash_replica(r)
            )
        for replica_id in range(self.config.faults.undetectable_faults):
            victim = self.replicas[replica_id]
            others = [r for r in range(self.config.num_replicas) if r != replica_id]
            self.network.mute(victim.node_id, others)

    def _crash_replica(self, replica_id: int) -> None:
        self.replicas[replica_id].crash()
        self.network.crash(replica_id)

    # -- running --------------------------------------------------------------------

    def start(self) -> None:
        """Start every replica's proposal loop."""
        for replica in self.replicas:
            replica.start()

    def submit_transactions(
        self, transactions: list[Transaction], *, rate_tps: float | None = None
    ) -> None:
        """Submit a list of transactions, optionally paced at ``rate_tps``."""
        if rate_tps is None:
            for tx in transactions:
                self.sim.schedule(0.0, lambda tx=tx: self.client.submit(tx))
            return
        interval = 1.0 / rate_tps
        for index, tx in enumerate(transactions):
            self.sim.schedule(index * interval, lambda tx=tx: self.client.submit(tx))

    def run(self, duration: float) -> RunMetrics:
        """Run the simulation for ``duration`` seconds and collect metrics."""
        self.start()
        self.sim.run(until=duration)
        extra = {
            "messages_sent": float(self.network.stats.messages_sent),
            "messages_delivered": float(self.network.stats.messages_delivered),
            "bytes_sent": float(self.network.stats.bytes_sent),
        }
        return self.metrics.finalize(start=0.0, end=duration, extra=extra)

    def run_until_confirmed(
        self, expected: int, *, timeout: float = 120.0, step: float = 1.0
    ) -> float:
        """Run until ``expected`` transactions are confirmed (or timeout).

        Returns the simulated time at which the condition was met.
        """
        self.start()
        elapsed = 0.0
        while elapsed < timeout:
            elapsed = self.sim.run(until=elapsed + step)
            if self.metrics.committed + self.metrics.rejected >= expected:
                return elapsed
            if self.sim.pending_events == 0 and elapsed > 0:
                break
        return elapsed
