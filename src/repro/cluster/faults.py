"""Fault plans: stragglers, detectable crashes, undetectable Byzantine replicas.

The evaluation section exercises three degradation modes:

* **Stragglers** (Fig. 3/4/5/6): one instance runs 10x slower than the rest.
* **Detectable faults** (Fig. 7): leaders crash at a known time; the failure
  detector (10 s view-change timeout) eventually replaces them.
* **Undetectable faults** (Fig. 8): a Byzantine replica keeps proposing in
  the instance it leads but silently abstains from every other instance, so
  no timeout fires, yet quorums must be formed from the remaining replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Slowdown factor the paper uses for its straggler experiments.
PAPER_STRAGGLER_SLOWDOWN = 10.0
#: View-change timeout used in the fault experiments (Sec. VII-E).
PAPER_VIEW_CHANGE_TIMEOUT = 10.0


@dataclass
class FaultPlan:
    """Degradations applied to a cluster during an experiment.

    Attributes:
        stragglers: Mapping of replica/instance id to slowdown factor.
        crashes: Mapping of replica id to the simulated time it crashes.
        restarts: Mapping of replica id to the time its process is restarted
            after a crash (live runtime only; the simulator ignores
            restarts).  Whether the restarted replica rejoins fully depends
            on the cluster: with durability enabled it recovers from its
            snapshot + WAL and peer state transfer and resumes leading and
            voting; without durability it rebuilds from genesis and can
            only passively observe.
        churn: Repeated crash/restart cycles, as ``(at, replica,
            downtime)`` triples: the replica is killed at ``at`` and
            restarted ``downtime`` seconds later (live runtime only;
            requires durability for the replica to rejoin at full
            strength).
        view_change_timeout: Seconds before a crashed leader is replaced.
        recovery_delay: Extra seconds for the new leader to take over after
            the timeout expires (view-change message exchange).
        undetectable_faults: Number of replicas that abstain from instances
            they do not lead without triggering the failure detector.
        retransmit_penalty_per_fault: Extra per-round latency charged for each
            abstaining replica (timeout-driven retransmissions to silent
            peers); used by the quorum-fidelity model only.
        partitions: Symmetric network partitions, as ``(at, groups,
            duration)`` entries: at ``at`` the cluster splits into the
            listed ``groups`` (tuples of replica ids; replicas named in no
            group form one implicit remainder group) and heals ``duration``
            seconds later.  Live runtime only — frames between groups are
            dropped at the sender, the sim ignores partitions.
        oneway_drops: Asymmetric losses, as ``(at, source, destination,
            duration)`` entries: ``source``'s frames to ``destination`` are
            dropped for ``duration`` seconds while the reverse direction
            keeps flowing (live runtime only).
        wan: Optional WAN emulation: the named model ``"wan"`` (the sim's
            ``DEFAULT_WAN_MATRIX`` with round-robin region assignment) or an
            explicit square one-way delay matrix in seconds.  Applied as
            real per-destination due-time delays on the live path.
        expect_stall: Acknowledge that a partition in this plan denies some
            quorum (more than f replicas cut off from every group of
            ``n - f``); without it such plans are rejected by
            ``validate_fault_plan``.
    """

    stragglers: dict[int, float] = field(default_factory=dict)
    crashes: dict[int, float] = field(default_factory=dict)
    restarts: dict[int, float] = field(default_factory=dict)
    churn: tuple[tuple[float, int, float], ...] = ()
    partitions: tuple[tuple[float, tuple[tuple[int, ...], ...], float], ...] = ()
    oneway_drops: tuple[tuple[float, int, int, float], ...] = ()
    wan: str | tuple[tuple[float, ...], ...] | None = None
    expect_stall: bool = False
    view_change_timeout: float = PAPER_VIEW_CHANGE_TIMEOUT
    recovery_delay: float = 0.5
    undetectable_faults: int = 0
    retransmit_penalty_per_fault: float = 0.5

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan with no degradations."""
        return cls()

    @classmethod
    def with_straggler(
        cls, instance: int = 0, slowdown: float = PAPER_STRAGGLER_SLOWDOWN
    ) -> "FaultPlan":
        """The paper's standard one-straggler plan."""
        return cls(stragglers={instance: slowdown})

    @classmethod
    def with_crashes(
        cls,
        replicas: list[int],
        at_time: float,
        *,
        view_change_timeout: float = PAPER_VIEW_CHANGE_TIMEOUT,
    ) -> "FaultPlan":
        """Crash ``replicas`` simultaneously at ``at_time`` (Fig. 7)."""
        return cls(
            crashes={replica: at_time for replica in replicas},
            view_change_timeout=view_change_timeout,
        )

    @classmethod
    def with_churn(
        cls,
        cycles: list[tuple[float, int, float]],
        *,
        view_change_timeout: float = PAPER_VIEW_CHANGE_TIMEOUT,
    ) -> "FaultPlan":
        """Repeated crash/restart cycles: ``(at, replica, downtime)`` each."""
        return cls(
            churn=tuple(
                (float(at), int(replica), float(downtime))
                for at, replica, downtime in cycles
            ),
            view_change_timeout=view_change_timeout,
        )

    @classmethod
    def with_partition(
        cls,
        at: float,
        groups: list[list[int]] | tuple[tuple[int, ...], ...],
        duration: float,
        *,
        wan: str | tuple[tuple[float, ...], ...] | None = None,
        expect_stall: bool = False,
        view_change_timeout: float = PAPER_VIEW_CHANGE_TIMEOUT,
    ) -> "FaultPlan":
        """One symmetric partition into ``groups`` at ``at``, healed
        ``duration`` seconds later."""
        return cls(
            partitions=(
                (
                    float(at),
                    tuple(tuple(int(r) for r in group) for group in groups),
                    float(duration),
                ),
            ),
            wan=wan,
            expect_stall=expect_stall,
            view_change_timeout=view_change_timeout,
        )

    @classmethod
    def with_undetectable(cls, count: int) -> "FaultPlan":
        """``count`` undetectable Byzantine replicas (Fig. 8)."""
        return cls(undetectable_faults=count)

    def slowdown_of(self, node_id: int) -> float:
        """Slowdown factor of a node (1.0 when healthy)."""
        return self.stragglers.get(node_id, 1.0)

    def crash_time_of(self, node_id: int) -> float | None:
        """When (if ever) the node crashes."""
        return self.crashes.get(node_id)

    def restart_time_of(self, node_id: int) -> float | None:
        """When (if ever) the node's process is restarted after its crash."""
        return self.restarts.get(node_id)

    @property
    def straggler_count(self) -> int:
        """Number of stragglers in the plan."""
        return len(self.stragglers)
