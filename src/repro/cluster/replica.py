"""Message-level Multi-BFT replica node.

A :class:`MultiBFTReplica` is a full protocol participant: it hosts one PBFT
endpoint per SB instance, a consensus core (Orthrus or a baseline), leader
logic that cuts batches from its buckets, the epoch checkpoint exchange and
the client reply path.

The replica performs all I/O — message sends, broadcasts, timers and clock
reads — through a :class:`~repro.net.transport.NodeTransport`.  Inside the
simulation the replica is its own transport (it is a
:class:`~repro.sim.process.Process` wired to the modelled network); in the
live runtime an :class:`~repro.runtime.transport.AsyncioTransport` is injected
instead and the identical consensus code runs over real TCP sockets (see
:mod:`repro.runtime.server`).  This is the highest-fidelity driver; the test
suite and the small-scale examples use it, while the large simulated sweeps
use :mod:`repro.cluster.pipeline`.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.messages import ClientReply, ClientRequest
from repro.core.epochs import CheckpointQuorum
from repro.core.interfaces import ConsensusCore
from repro.core.outcomes import ConfirmationPath, TxOutcome, TxStatus
from repro.ledger.blocks import Block
from repro.metrics.summary import MetricsCollector
from repro.net.transport import NodeTransport
from repro.obs.registry import NULL_REGISTRY
from repro.obs.trace import TraceWriter
from repro.sb.pbft.endpoint import PBFTConfig, PBFTEndpoint
from repro.sb.pbft.messages import CheckpointMessage, PBFTMessage
from repro.sim.process import Process


#: Executed-transaction replies kept for answering retransmissions.  Bounds
#: replica memory on long-lived live servers; evicting the oldest half keeps
#: amortised cost O(1) and the retransmit window (seconds) far inside the
#: retained range at any realistic throughput.
REPLY_CACHE_LIMIT = 50_000


class MultiBFTReplica(Process):
    """One replica participating in every SB instance."""

    def __init__(
        self,
        replica_id: int,
        num_replicas: int,
        core: ConsensusCore,
        *,
        pbft_config: PBFTConfig | None = None,
        batch_size: int | None = None,
        batch_interval: float = 0.05,
        metrics: MetricsCollector | None = None,
        transport: NodeTransport | None = None,
        reply_cache_limit: int = REPLY_CACHE_LIMIT,
        registry: Any = None,
        tracer: TraceWriter | None = None,
        durability: Any = None,
    ) -> None:
        super().__init__(replica_id)
        #: Host transport for all I/O.  Defaults to the replica itself, which
        #: as a ``Process`` satisfies ``NodeTransport`` via the simulator.
        self.transport: NodeTransport = transport if transport is not None else self
        self.num_replicas = num_replicas
        self.core = core
        self.metrics = metrics
        self.batch_size = batch_size or core.config.batch_size
        self.batch_interval = batch_interval
        self.fault_tolerance = (num_replicas - 1) // 3
        self._pbft_config = pbft_config or PBFTConfig()
        self.endpoints: dict[int, PBFTEndpoint] = {}
        self._next_sequence: dict[int, int] = {}
        self._client_of_tx: dict[str, int] = {}
        #: Reply cache: lets a retransmitted request for an already-executed
        #: transaction be answered immediately (the live client's retry path;
        #: simulated clients never retransmit).  Bounded: the oldest half is
        #: evicted past ``reply_cache_limit``; requests for evicted entries
        #: are rebuilt from the core's terminal status (see
        #: :meth:`_handle_client_request`).
        self.reply_cache_limit = reply_cache_limit
        self._reply_of_tx: dict[str, ClientReply] = {}
        #: Instances this replica currently leads (tracked across views so a
        #: demotion can requeue the old leader's in-flight transactions).
        self._led: set[int] = set()
        self._checkpoints = CheckpointQuorum(2 * self.fault_tolerance + 1)
        self._last_proposal_at: dict[int, float] = {}
        #: Minimum idle time before an empty (no-op) block is proposed to keep
        #: the global ordering frontier advancing once client traffic stops.
        self.noop_interval = 0.5
        self._started = False
        self._crashed = False
        #: Confirmations produced by this replica (inspected by tests).
        self.outcomes: list[TxOutcome] = []
        #: Observability.  The sim path passes neither registry nor tracer,
        #: so every instrument below is an inert singleton and the replica's
        #: behaviour (and the simulator's determinism) is untouched.
        self.obs = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer
        #: Durability hooks (live runtime only — ``None`` on the sim path,
        #: where the replica's behaviour must stay bit-identical).  Duck-typed
        #: to :class:`repro.runtime.durability.ReplicaDurability`.
        self.durability = durability
        self._obs_on = bool(self.obs.enabled) or tracer is not None
        self._c_blocks_proposed = self.obs.counter("consensus.blocks_proposed")
        self._c_reply_cache_hits = self.obs.counter("replica.reply_cache_hits")
        self._c_reply_cache_evictions = self.obs.counter(
            "replica.reply_cache_evictions"
        )
        self._h_bar_wait = self.obs.histogram("consensus.bar_wait_seconds")
        #: Uniform across orderer families: time from SB delivery to release
        #: into the global log, whatever mechanism (bar, pre-determined slot,
        #: sequencer decision, conflict graph) gated the release.
        self._h_release_wait = self.obs.histogram("consensus.release_wait_seconds")
        self.obs.gauge_fn(
            "consensus.view_changes",
            lambda: sum(e.view_changes_completed for e in self.endpoints.values()),
        )
        self.obs.gauge_fn(
            "consensus.conflict_graph_size",
            lambda: self._conflict_graph_size(),
        )
        self.obs.gauge_fn(
            "consensus.rank_regressions",
            lambda: self.core.global_orderer.stats.rank_regressions,
        )
        self.obs.gauge_fn(
            "consensus.global_pending",
            lambda: self.core.global_orderer.pending_count(),
        )
        self.obs.gauge_fn(
            "consensus.max_waiting",
            lambda: self.core.global_orderer.stats.max_waiting,
        )
        self.obs.gauge_fn(
            "consensus.bucket_depth",
            lambda: sum(len(bucket) for bucket in self.core.buckets),
        )
        self.obs.gauge_fn(
            "consensus.escrow_conflicts",
            lambda: getattr(getattr(self.core, "escrow", None), "escrows_failed", 0),
        )
        self.obs.gauge_fn(
            "ledger.digest_cache_hits", lambda: self.core.store.digest_cache_hits
        )
        self.obs.gauge_fn(
            "ledger.digest_cache_misses", lambda: self.core.store.digest_cache_misses
        )
        self.obs.gauge_fn("replica.reply_cache_size", lambda: len(self._reply_of_tx))
        #: SB delivery time per (instance, sequence) block still waiting on
        #: the bar — feeds the bar-wait histogram and ``bar_released`` trace
        #: events; only populated when observability is on.
        self._sb_delivered_at: dict[tuple[int, int], float] = {}

        for instance in range(core.config.num_instances):
            endpoint = PBFTEndpoint(
                instance_id=instance,
                replica_id=replica_id,
                num_replicas=num_replicas,
                transport=self.transport,
                config=self._pbft_config,
            )
            endpoint.on_deliver(lambda block, inst=instance: self._on_deliver(block))
            endpoint.on_leader_change(
                lambda view, leader, inst=instance: self._on_leader_change(inst, leader)
            )
            if tracer is not None:
                endpoint.on_prepared(self._on_prepared)
            endpoint.pending_work_probe = (
                lambda inst=instance: self._has_pending_work(inst)
            )
            self.endpoints[instance] = endpoint
            self._next_sequence[instance] = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin the proposal loop for the instances this replica leads."""
        if self._started:
            return
        self._started = True
        for instance, endpoint in self.endpoints.items():
            endpoint.start()
            if endpoint.is_leader():
                self._led.add(instance)
        self.transport.set_timer(self.batch_interval, self._proposal_tick)

    def crash(self) -> None:
        """Stop participating entirely (used by fault-injection tests)."""
        self._crashed = True
        self.transport.cancel_timers()

    # -- transport interface (simulator hosting) ----------------------------

    def now(self) -> float:
        """Current simulated time (NodeTransport protocol, sim hosting)."""
        return self.sim.now

    # Process.send / Process.broadcast / Process.set_timer / Process.cancel_timers
    # satisfy the remaining NodeTransport requirements when the replica hosts
    # itself inside the simulator.

    # -- message handling -------------------------------------------------------------

    def receive(self, sender: int, message: Any) -> None:
        if self._crashed:
            return
        if isinstance(message, ClientRequest):
            self._handle_client_request(sender, message)
        elif isinstance(message, CheckpointMessage):
            self._checkpoints.add_vote(message.epoch, message.state_digest, message.sender)
        elif isinstance(message, PBFTMessage):
            endpoint = self.endpoints.get(message.instance)
            if endpoint is not None:
                endpoint.handle_message(sender, message)

    def _handle_client_request(self, sender: int, request: ClientRequest) -> None:
        tx = request.tx
        cached_reply = self._reply_of_tx.get(tx.tx_id)
        if cached_reply is not None:
            # Already executed: the original reply may have been lost in
            # transit, so answer the retransmission from the cache.
            self._c_reply_cache_hits.inc()
            self.transport.send(request.client_node, cached_reply)
            return
        status = self.core.status_of(tx.tx_id)
        if status.terminal:
            # Executed, but the cached reply was evicted: fail safe by
            # rebuilding the answer from the core's terminal status instead
            # of silently dropping the retransmission (re-submitting is not
            # an option — the bucket dedupe would swallow it and the client
            # would starve).
            reply = ClientReply(
                tx_id=tx.tx_id,
                replica=self.node_id,
                committed=status is TxStatus.COMMITTED,
                confirmed_at=None,
            )
            self._cache_reply(reply)
            self.transport.send(request.client_node, reply)
            return
        self._client_of_tx[tx.tx_id] = request.client_node
        if self.metrics is not None or self.tracer is not None:
            now = self.transport.now()
            if self.metrics is not None:
                self.metrics.latency.record_received(tx.tx_id, now)
            if self.tracer is not None and self.tracer.sampled(tx.tx_id):
                self.tracer.emit(tx.tx_id, "received", now)
        try:
            buckets = self.core.submit(tx)
        except Exception:
            return
        # Censorship detection: expect progress on every instance this
        # transaction was assigned to (Sec. V-B).
        for instance in buckets:
            self.endpoints[instance].notify_pending_work()

    # -- leader logic ---------------------------------------------------------------------

    def led_instances(self) -> list[int]:
        """Instances currently led by this replica."""
        return [
            instance
            for instance, endpoint in self.endpoints.items()
            if endpoint.is_leader()
        ]

    def _proposal_tick(self) -> None:
        if self._crashed:
            return
        for instance, endpoint in self.endpoints.items():
            if endpoint.is_leader():
                self._propose_for(instance)
            elif self._has_pending_work(instance):
                # Not our instance to lead, but work is waiting on it: keep
                # the failure detector armed so a crashed leader is detected
                # even when no further client request arrives (arming is
                # idempotent while the timer is active).
                endpoint.notify_pending_work()
        self.transport.set_timer(self.batch_interval, self._proposal_tick)

    def _has_pending_work(self, instance: int) -> bool:
        """Whether this instance owes progress (failure-detector predicate).

        True while non-terminal transactions are assigned to the instance
        (queued or pulled-but-unconfirmed), or globally delivered blocks are
        waiting for *some* instance to advance — a stalled instance must keep
        rotating leaders until the global log drains, or the whole cluster
        wedges on its frontier.  Deliberately *not* raw bucket length:
        executed transactions stay physically queued on backups until epoch
        GC, and counting them would fire spurious view changes on every
        healthy-but-idle cluster.
        """
        return (
            self.core.pending_work(instance) > 0
            or self.core.global_orderer.pending_count() > 0
        )

    def _propose_for(self, instance: int) -> None:
        batch = self.core.select_batch(instance, self.batch_size)
        if not batch and not self._should_propose_noop(instance):
            return
        rank = self.core.next_rank() if self.core.uses_ranks else None
        block = Block.create(
            instance=instance,
            sequence_number=self._next_sequence[instance],
            transactions=batch,
            state=self.core.delivered_state(),
            proposer=self.node_id,
            epoch=self._next_sequence[instance] // self.core.config.epoch_length,
            rank=rank,
        )
        self._next_sequence[instance] += 1
        self._c_blocks_proposed.inc()
        now = self.transport.now()
        self._last_proposal_at[instance] = now
        if self.metrics is not None:
            for tx in batch:
                self.metrics.latency.record_proposed(tx.tx_id, now)
        tracer = self.tracer
        if tracer is not None:
            view = self.endpoints[instance].view
            for tx in batch:
                if tracer.sampled(tx.tx_id):
                    tracer.emit(
                        tx.tx_id, "proposed", now, instance=instance, view=view
                    )
        self.endpoints[instance].broadcast_block(block)

    def _should_propose_noop(self, instance: int) -> bool:
        """Propose an empty block to unblock global ordering (ISS-style no-op).

        Rank- and position-based global ordering both need every instance to
        keep delivering for already-delivered blocks to become globally
        ordered; once client traffic drains, idle leaders fill their slots
        with no-ops so the remaining contract transactions confirm.
        """
        if self.core.global_orderer.pending_count() == 0:
            return False
        last = self._last_proposal_at.get(instance, 0.0)
        return self.transport.now() - last >= self.noop_interval

    def _on_leader_change(self, instance: int, leader: int) -> None:
        endpoint = self.endpoints[instance]
        # Rank monotonicity across the view change: blocks the old leader
        # left pre-prepared keep their original ranks when re-proposed, so
        # every replica — above all the next leader — must account for those
        # ranks *before* assigning new ones.  A fresh rank below a re-proposed
        # block's rank would violate the strictly-increasing-per-instance
        # precondition Ladon's bar relies on and diverge the global log
        # across replicas.
        for _, block in endpoint.slots.undelivered_proposals():
            self.core.rank_tracker.observe(block)
        if self.durability is not None:
            self.durability.on_view_installed(instance, endpoint.view)
        was_leader = instance in self._led
        if leader != self.node_id:
            self._led.discard(instance)
            if was_leader:
                # Demoted: return pulled-but-undelivered transactions to the
                # bucket and release the leader-side escrow reservations so
                # they neither vanish nor leak affordability.
                self.core.on_leadership_lost(instance)
            return
        self._led.add(instance)
        # Resume sequence numbering after whatever the old leader delivered or
        # left pre-prepared (re-proposed slots keep their original numbers, so
        # fresh proposals must start above them to avoid conflicting slots).
        delivered = self.core.delivered_state().sequence_numbers[instance]
        highest_started = endpoint.slots.highest_started()
        self._next_sequence[instance] = max(
            self._next_sequence[instance], delivered + 1, highest_started + 1
        )

    # -- delivery path --------------------------------------------------------------------

    def _on_prepared(self, block: Block, view: int) -> None:
        """Tracing hook: a slot reached the prepared state on this replica."""
        tracer = self.tracer
        if tracer is None or self._crashed:
            return
        now = self.transport.now()
        for tx in block.transactions:
            if tracer.sampled(tx.tx_id):
                tracer.emit(
                    tx.tx_id, "prepared", now, instance=block.instance, view=view
                )

    def _on_deliver(self, block: Block) -> None:
        if self._crashed:
            return
        if (
            block.sequence_number
            <= self.core.delivered_state().sequence_numbers[block.instance]
        ):
            # A live state transfer already applied this sequence number
            # while the slot's commit quorum was still completing; endpoints
            # deliver in order, so anything at or below the frontier is a
            # replay the core must not see twice.
            return
        now = self.transport.now()
        tracer = self.tracer
        if self.metrics is not None:
            for tx in block.transactions:
                self.metrics.latency.record_delivered(tx.tx_id, now)
        if tracer is not None:
            view = self.endpoints[block.instance].view
            for tx in block.transactions:
                if tracer.sampled(tx.tx_id):
                    tracer.emit(
                        tx.tx_id, "committed", now, instance=block.instance, view=view
                    )
        if self._obs_on:
            self._sb_delivered_at[(block.instance, block.sequence_number)] = now
        ordered_before = self.core.global_orderer.ordered_count
        outcomes = self.core.on_block_delivered(block)
        if self.durability is not None:
            self.durability.on_block_delivered(block)
        if self._obs_on:
            self._note_bar_released(ordered_before, now)
        self.outcomes.extend(outcomes)
        for outcome in outcomes:
            if self.metrics is not None:
                self.metrics.record_outcome(
                    outcome.tx.tx_id,
                    now,
                    committed=outcome.committed,
                    partial_path=outcome.path is ConfirmationPath.PARTIAL,
                )
            if tracer is not None and tracer.sampled(outcome.tx.tx_id):
                tracer.emit(outcome.tx.tx_id, "executed", now)
            client_node = self._client_of_tx.get(outcome.tx.tx_id)
            if client_node is not None:
                reply = ClientReply(
                    tx_id=outcome.tx.tx_id,
                    replica=self.node_id,
                    committed=outcome.committed,
                    confirmed_at=now,
                )
                self._cache_reply(reply)
                self.transport.send(client_node, reply)
        self._broadcast_checkpoints()
        if self.durability is not None:
            self.durability.maybe_cut_deferred_snapshot(self.core)

    def _conflict_graph_size(self) -> int:
        """Edges tracked by a dependency-aware orderer (0 for the others)."""
        probe = getattr(self.core.global_orderer, "conflict_graph_size", None)
        return probe() if probe is not None else 0

    def _note_bar_released(self, ordered_before: int, now: float) -> None:
        """Record release-wait time and trace ``bar_released`` for every block
        the last delivery pushed past the global-ordering gate."""
        released = self.core.global_orderer.global_log[ordered_before:]
        tracer = self.tracer
        for ordered_block in released:
            key = (ordered_block.instance, ordered_block.sequence_number)
            delivered_at = self._sb_delivered_at.pop(key, None)
            if delivered_at is not None:
                self._h_bar_wait.observe(now - delivered_at)
                self._h_release_wait.observe(now - delivered_at)
            if tracer is None:
                continue
            for tx in ordered_block.transactions:
                if tracer.sampled(tx.tx_id):
                    tracer.emit(
                        tx.tx_id,
                        "bar_released",
                        now,
                        instance=ordered_block.instance,
                    )

    def _cache_reply(self, reply: ClientReply) -> None:
        """Insert a reply into the bounded retransmission cache.

        Dict insertion order is the eviction order: entries are only ever
        inserted on first execution (cache hits answer without re-inserting,
        which would not reorder the dict anyway), so the first half of the
        keys really is the oldest half.  Overwriting an existing key keeps
        its original position, preserving that invariant.
        """
        self._reply_of_tx[reply.tx_id] = reply
        if len(self._reply_of_tx) > self.reply_cache_limit:
            stale_keys = list(self._reply_of_tx)[: self.reply_cache_limit // 2]
            for stale in stale_keys:
                del self._reply_of_tx[stale]
            self._c_reply_cache_evictions.inc(len(stale_keys))

    def _broadcast_checkpoints(self) -> None:
        pending = getattr(self.core, "pending_checkpoints", None)
        if not pending:
            return
        while pending:
            checkpoint = pending.pop(0)
            if self.durability is not None:
                self.durability.on_epoch_completed(
                    self.core, checkpoint.epoch, checkpoint.digest
                )
            message = CheckpointMessage(
                instance=0,
                view=0,
                sender=self.node_id,
                epoch=checkpoint.epoch,
                state_digest=checkpoint.digest,
            )
            self.transport.broadcast(message)
            self._checkpoints.add_vote(checkpoint.epoch, checkpoint.digest, self.node_id)

    # -- recovery -------------------------------------------------------------------------------

    def fast_forward(self, views: list[int] | None = None) -> None:
        """Re-align PBFT machinery with recovered core state (before
        :meth:`start`).

        Advances every endpoint's slot table past the recovered delivered
        frontier (those sequence numbers were agreed by the pre-crash
        incarnation and replayed from the WAL or fetched via state transfer),
        installs at least the given per-instance views, and resumes leader
        sequence numbering above the frontier.  Without this, a recovered
        leader would re-propose sequence number 0 and wedge on slots its
        peers already delivered.
        """
        delivered = self.core.delivered_state().sequence_numbers
        for instance, endpoint in self.endpoints.items():
            next_sequence = delivered[instance] + 1
            endpoint.slots.fast_forward(next_sequence)
            if views is not None and views[instance] > endpoint.view:
                endpoint.fast_forward_view(views[instance])
            self._next_sequence[instance] = max(
                self._next_sequence[instance], next_sequence
            )
        # Slots committed while delivery waited on a hole the transfer just
        # filled become deliverable only now; with no further PBFT traffic
        # guaranteed (e.g. post-load), they must drain here or strand.
        for endpoint in self.endpoints.values():
            endpoint.drain_deliverable()

    # -- introspection ------------------------------------------------------------------------

    def stable_checkpoint(self, epoch: int) -> bool:
        """Whether this replica holds a stable checkpoint for ``epoch``."""
        return self._checkpoints.is_stable(epoch)

    def stable_checkpoint_digest(self, epoch: int) -> str | None:
        """Quorum-stable checkpoint digest for ``epoch``, if one formed."""
        return self._checkpoints.stable_digest(epoch)

    def latest_stable_epoch(self) -> int:
        """Highest epoch with a quorum-stable checkpoint (-1 when none)."""
        stable = self._checkpoints._stable
        return max(stable) if stable else -1
