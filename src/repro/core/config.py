"""Configuration for consensus cores and protocol replicas."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Batch size used throughout the paper's evaluation.
DEFAULT_BATCH_SIZE = 4096


@dataclass
class CoreConfig:
    """Parameters shared by Orthrus and the baseline protocol cores.

    Attributes:
        num_instances: Number of SB instances (``m``; the paper uses m = n).
        batch_size: Maximum transactions per block (paper: 4096).
        batch_timeout: Seconds a leader waits for a full batch before cutting
            a partial one.
        epoch_length: Sequence numbers per instance per epoch; epochs drive
            checkpointing and garbage collection (Sec. V-D).
        validate_transactions: Whether cores validate transactions on
            submission (disabled only by micro-benchmarks).
        require_balanced_payments: Reject payments whose debits and credits
            do not match.
    """

    num_instances: int = 4
    batch_size: int = DEFAULT_BATCH_SIZE
    batch_timeout: float = 0.25
    epoch_length: int = 16
    validate_transactions: bool = True
    require_balanced_payments: bool = True

    def __post_init__(self) -> None:
        if self.num_instances <= 0:
            raise ConfigurationError("num_instances must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.batch_timeout < 0:
            raise ConfigurationError("batch_timeout must be non-negative")
        if self.epoch_length <= 0:
            raise ConfigurationError("epoch_length must be positive")
