"""Shared machinery for consensus cores.

A *consensus core* is the pure (simulator-independent) state machine of one
replica: buckets, partial logs, global ordering, execution and epochs.  Both
cluster drivers (message-level and pipeline/quorum fidelity) feed cores the
same inputs — submitted transactions and delivered blocks — and consume the
same outputs — batches to propose and transaction outcomes — so Orthrus and
every baseline protocol can run unchanged under either fidelity.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.buckets import Bucket
from repro.core.config import CoreConfig
from repro.core.epochs import Checkpoint, EpochTracker
from repro.core.logs import PartialLog, ProcessedFrontier
from repro.core.outcomes import TxOutcome, TxStatus
from repro.core.partition import Partitioner
from repro.errors import ValidationError
from repro.ledger.blocks import Block, SystemState
from repro.ledger.state import StateStore
from repro.ledger.transactions import Transaction
from repro.ledger.validation import TransactionValidator
from repro.ordering.base import GlobalOrderer, RankTracker


class ConsensusCore:
    """Base class for the Orthrus core and the baseline protocol cores."""

    #: Human-readable protocol name (overridden by subclasses).
    name = "abstract"
    #: Whether leaders must attach dynamic-ordering ranks to blocks.
    uses_ranks = False

    def __init__(
        self,
        config: CoreConfig,
        store: StateStore,
        partitioner: Partitioner,
        global_orderer: GlobalOrderer,
    ) -> None:
        self.config = config
        self.store = store
        self.partitioner = partitioner
        self.global_orderer = global_orderer
        self.buckets = [Bucket(i) for i in range(config.num_instances)]
        self.plogs = [PartialLog(i) for i in range(config.num_instances)]
        self.frontier = ProcessedFrontier(config.num_instances)
        self.epochs = EpochTracker(config.num_instances, config.epoch_length)
        self.rank_tracker = RankTracker()
        self._validator = TransactionValidator(
            require_balanced_payments=config.require_balanced_payments
        )
        self._status: dict[str, TxStatus] = {}
        #: Bucket indices each non-terminal transaction is assigned to, and
        #: the per-instance count of such transactions.  This is the O(1)
        #: "work owed" signal the failure detector needs: raw bucket length
        #: would overcount, because executed transactions stay physically
        #: queued on backups until epoch garbage collection.
        self._pending_assignments: dict[str, tuple[int, ...]] = {}
        self._pending_per_instance: list[int] = [0] * config.num_instances
        self._delivered_frontier = [-1] * config.num_instances
        #: Counters used by metrics and tests.
        self.submitted_count = 0
        self.rejected_on_submit = 0
        self.confirmed_count = 0

    # -- client-facing ------------------------------------------------------

    def submit(self, tx: Transaction) -> list[int]:
        """Validate ``tx`` and add it to its bucket(s).

        Returns the bucket indices the transaction was added to.  Raises
        :class:`ValidationError` when validation is enabled and fails.
        """
        if self.config.validate_transactions:
            report = self._validator.validate(tx)
            if not report.valid:
                self.rejected_on_submit += 1
                raise ValidationError("; ".join(report.errors))
        buckets = self.partitioner.buckets_for(tx)
        added: list[int] = []
        for index in buckets:
            if self.buckets[index].push(tx):
                added.append(index)
        if added:
            self.submitted_count += 1
            self._status.setdefault(tx.tx_id, TxStatus.PENDING)
            if (
                tx.tx_id not in self._pending_assignments
                and not self.status_of(tx.tx_id).terminal
            ):
                self._pending_assignments[tx.tx_id] = tuple(added)
                for index in added:
                    self._pending_per_instance[index] += 1
        return added

    # -- leader-facing ------------------------------------------------------

    def pull_batch(self, instance: int, max_count: int | None = None) -> list[Transaction]:
        """Pull the oldest pending transactions from an instance's bucket."""
        limit = max_count if max_count is not None else self.config.batch_size
        return self.buckets[instance].pull(limit)

    def select_batch(self, instance: int, max_count: int | None = None) -> list[Transaction]:
        """Leader-side batch selection (the paper's ``pullValidTx``).

        The base implementation simply pulls the oldest transactions; cores
        whose correctness depends on leaders only proposing transactions that
        are valid under the referenced state (Orthrus) override this.
        """
        return self.pull_batch(instance, max_count)

    def requeue(self, instance: int, txs: Sequence[Transaction]) -> int:
        """Return unordered transactions to the bucket (after view change)."""
        return self.buckets[instance].requeue(txs)

    def on_leadership_lost(self, instance: int) -> int:
        """React to this replica losing leadership of ``instance``.

        Transactions the demoted leader pulled but never saw delivered go
        back to the front of the bucket, so they survive into the new view
        (either the new leader's re-proposals deliver them — they then turn
        terminal and are skipped — or this replica re-proposes them when it
        regains leadership).  Returns the number of requeued transactions.
        """
        bucket = self.buckets[instance]
        pending = [
            tx
            for tx in bucket.in_flight_txs()
            if not self.status_of(tx.tx_id).terminal
        ]
        return bucket.requeue(pending)

    def bucket_size(self, instance: int) -> int:
        """Number of pending transactions in an instance's bucket."""
        return len(self.buckets[instance])

    def pending_work(self, instance: int) -> int:
        """Non-terminal transactions assigned to ``instance`` (queued or
        pulled-but-unconfirmed).  The failure detector's progress predicate:
        while this is positive the instance owes a delivery."""
        return self._pending_per_instance[instance]

    def total_pending(self) -> int:
        """Pending transactions summed over all buckets."""
        return sum(len(bucket) for bucket in self.buckets)

    def delivered_state(self) -> SystemState:
        """Frontier of delivered blocks (used by leaders as ``b.S``)."""
        return SystemState(tuple(self._delivered_frontier))

    def next_rank(self) -> int:
        """Rank to attach to the next proposed block (dynamic ordering only)."""
        return self.rank_tracker.next_rank()

    # -- delivery-facing ----------------------------------------------------

    def on_block_delivered(self, block: Block) -> list[TxOutcome]:
        """Feed a delivered block and return the resulting confirmations."""
        raise NotImplementedError

    def _record_delivery(self, block: Block) -> None:
        """Common bookkeeping every core performs on delivery."""
        self._delivered_frontier[block.instance] = max(
            self._delivered_frontier[block.instance], block.sequence_number
        )
        self.rank_tracker.observe(block)

    # -- status -------------------------------------------------------------

    def status_of(self, tx_id: str) -> TxStatus:
        """Current status of a transaction (PENDING if unknown)."""
        return self._status.get(tx_id, TxStatus.PENDING)

    def _set_status(self, tx: Transaction, status: TxStatus) -> None:
        previous = self._status.get(tx.tx_id, TxStatus.PENDING)
        if previous.terminal:
            return
        self._status[tx.tx_id] = status
        if status.terminal:
            self.confirmed_count += 1
            for index in self._pending_assignments.pop(tx.tx_id, ()):
                self._pending_per_instance[index] -= 1

    # -- epochs / checkpoints ------------------------------------------------

    def _maybe_complete_epochs(self) -> list[Checkpoint]:
        """Close finished epochs: build checkpoints and garbage-collect."""
        checkpoints: list[Checkpoint] = []
        for epoch in self.epochs.newly_completed():
            checkpoint = Checkpoint(
                epoch=epoch,
                frontier=tuple(self.frontier.as_state().sequence_numbers),
                state_digest=self.store.state_digest(),
            )
            checkpoints.append(checkpoint)
            self._garbage_collect(epoch)
        return checkpoints

    def _garbage_collect(self, epoch: int) -> None:
        """Discard data belonging to a stably completed epoch."""
        boundary = self.epochs.first_sequence_of(epoch + 1)
        for plog in self.plogs:
            plog.prune_below(boundary)
        confirmed = [tx_id for tx_id, status in self._status.items() if status.terminal]
        for bucket in self.buckets:
            bucket.mark_confirmed(confirmed)
            bucket.purge(confirmed)
