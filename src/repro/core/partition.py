"""Partition module: assigning transactions to buckets (Sec. V-A).

Orthrus assigns a transaction to the bucket of every owned object it
decrements (its payers), so that all transactions spending from one account
serialise through one SB instance.  Baseline Multi-BFT protocols (Mir-BFT's
bucket mechanism, inherited by ISS and RCC) hash the whole transaction into a
single bucket, which balances load but provides no payer affinity.

Hashing is deliberately *stable* (SHA-256 based) rather than Python's builtin
``hash`` so bucket assignment is identical across processes and runs.
"""

from __future__ import annotations

import hashlib

from repro.ledger.transactions import Transaction


def stable_hash(value: str) -> int:
    """Deterministic 64-bit hash of a string (process-independent)."""
    raw = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "big")


class Partitioner:
    """Maps objects and transactions to bucket indices."""

    def __init__(self, num_instances: int) -> None:
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        self.num_instances = num_instances
        #: Account universes are small and hot (every escrow check re-asks
        #: where a payer lives), so the SHA-256 per lookup is memoized.
        self._assign_memo: dict[str, int] = {}

    def assign_object(self, key: str) -> int:
        """Bucket index of an owned object (the paper's ``assign`` function)."""
        bucket = self._assign_memo.get(key)
        if bucket is None:
            bucket = self._assign_memo[key] = stable_hash(key) % self.num_instances
        return bucket

    def buckets_for(self, tx: Transaction) -> list[int]:
        """Bucket indices a transaction must be added to."""
        raise NotImplementedError


class PayerPartitioner(Partitioner):
    """Orthrus partitioning: one bucket per payer (owned decrement)."""

    def buckets_for(self, tx: Transaction) -> list[int]:
        buckets = sorted(
            {self.assign_object(op.key) for op in tx.decrement_operations()}
        )
        if buckets:
            return buckets
        # Transactions without decrements (pure mints / reads) fall back to a
        # deterministic bucket so they are still ordered exactly once.
        return [stable_hash(tx.tx_id) % self.num_instances]


class TransactionPartitioner(Partitioner):
    """Baseline partitioning: the whole transaction hashes to one bucket."""

    def buckets_for(self, tx: Transaction) -> list[int]:
        return [stable_hash(tx.tx_id) % self.num_instances]


class LoadBalancedPartitioner(PayerPartitioner):
    """Payer partitioning with an explicit placement override table.

    The paper notes the assignment function "can also be designed to balance
    loads across instances and minimize cross-instance interactions".  This
    variant lets an operator pin hot accounts to chosen instances while
    falling back to hashing for everything else; the ablation bench uses it
    to measure the effect of skewed bucket load.
    """

    def __init__(self, num_instances: int, placement: dict[str, int] | None = None) -> None:
        super().__init__(num_instances)
        self._placement = dict(placement or {})

    def pin(self, key: str, instance: int) -> None:
        """Pin an object to a specific instance."""
        if not 0 <= instance < self.num_instances:
            raise ValueError(f"instance {instance} out of range")
        self._placement[key] = instance

    def assign_object(self, key: str) -> int:
        if key in self._placement:
            return self._placement[key]
        return super().assign_object(key)
