"""Epochs, checkpoints and garbage collection (Sec. V-D).

Orthrus operates in epochs: each epoch assigns a fixed window of sequence
numbers to every instance, and a replica only closes the epoch after every
assigned sequence number has been delivered and processed.  On epoch
completion replicas exchange signed checkpoint digests; a quorum of
``2f + 1`` matching digests forms a *stable checkpoint* that authorises
garbage-collecting the epoch's blocks and any transactions that will never
execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.digest import DigestAccumulator


@dataclass(frozen=True)
class Checkpoint:
    """A replica's summary of one completed epoch."""

    epoch: int
    frontier: tuple[int, ...]
    state_digest: str
    block_digests: tuple[str, ...] = ()

    @cached_property
    def digest(self) -> str:
        """Digest replicas compare when forming a stable checkpoint.

        Built incrementally (every frontier entry feeds one running hash) and
        cached — checkpoints are immutable and their digest is compared once
        per vote received.
        """
        accumulator = DigestAccumulator()
        accumulator.append(self.state_digest)
        accumulator.append(str(self.epoch))
        for entry in self.frontier:
            accumulator.append(str(entry))
        return accumulator.hexdigest()


class EpochTracker:
    """Tracks per-instance delivery progress against epoch boundaries."""

    def __init__(self, num_instances: int, epoch_length: int) -> None:
        if epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        self.num_instances = num_instances
        self.epoch_length = epoch_length
        self._processed: list[int] = [-1] * num_instances
        self._completed_epochs = 0

    def epoch_of(self, sequence_number: int) -> int:
        """Epoch a sequence number belongs to."""
        return sequence_number // self.epoch_length

    def record_processed(self, instance: int, sequence_number: int) -> None:
        """Note that a block has been fully processed by the execution engine."""
        self._processed[instance] = max(self._processed[instance], sequence_number)

    def epoch_complete(self, epoch: int) -> bool:
        """Whether every instance has processed all of ``epoch``'s slots."""
        last_required = (epoch + 1) * self.epoch_length - 1
        return all(done >= last_required for done in self._processed)

    def newly_completed(self) -> list[int]:
        """Epochs that completed since the last call (in order)."""
        completed: list[int] = []
        while self.epoch_complete(self._completed_epochs):
            completed.append(self._completed_epochs)
            self._completed_epochs += 1
        return completed

    @property
    def completed_count(self) -> int:
        """Number of epochs fully completed so far."""
        return self._completed_epochs

    def restore(self, processed: list[int], completed_epochs: int) -> None:
        """Overwrite progress tracking (snapshot restore)."""
        if len(processed) != self.num_instances:
            raise ValueError("processed width mismatch")
        self._processed = [int(v) for v in processed]
        self._completed_epochs = int(completed_epochs)

    def first_sequence_of(self, epoch: int) -> int:
        """First sequence number belonging to ``epoch``."""
        return epoch * self.epoch_length


class CheckpointQuorum:
    """Collects checkpoint messages until a stable checkpoint forms."""

    def __init__(self, quorum: int) -> None:
        self.quorum = quorum
        self._votes: dict[tuple[int, str], set[int]] = {}
        self._stable: dict[int, str] = {}

    def add_vote(self, epoch: int, digest: str, replica: int) -> bool:
        """Record a checkpoint vote; returns True when it became stable."""
        if epoch in self._stable:
            return False
        voters = self._votes.setdefault((epoch, digest), set())
        voters.add(replica)
        if len(voters) >= self.quorum:
            self._stable[epoch] = digest
            return True
        return False

    def is_stable(self, epoch: int) -> bool:
        """Whether a stable checkpoint exists for ``epoch``."""
        return epoch in self._stable

    def stable_digest(self, epoch: int) -> str | None:
        """Digest of the stable checkpoint, if any."""
        return self._stable.get(epoch)
