"""Orthrus core: partitioning, buckets, logs, hybrid execution, epochs."""

from repro.core.buckets import Bucket
from repro.core.config import DEFAULT_BATCH_SIZE, CoreConfig
from repro.core.epochs import Checkpoint, CheckpointQuorum, EpochTracker
from repro.core.interfaces import ConsensusCore
from repro.core.logs import PartialLog, ProcessedFrontier
from repro.core.orthrus import OrthrusCore
from repro.core.outcomes import ConfirmationPath, TxOutcome, TxStatus
from repro.core.partition import (
    LoadBalancedPartitioner,
    Partitioner,
    PayerPartitioner,
    TransactionPartitioner,
    stable_hash,
)

__all__ = [
    "Bucket",
    "Checkpoint",
    "CheckpointQuorum",
    "ConfirmationPath",
    "ConsensusCore",
    "CoreConfig",
    "DEFAULT_BATCH_SIZE",
    "EpochTracker",
    "LoadBalancedPartitioner",
    "OrthrusCore",
    "PartialLog",
    "Partitioner",
    "PayerPartitioner",
    "ProcessedFrontier",
    "TransactionPartitioner",
    "TxOutcome",
    "TxStatus",
    "stable_hash",
]
