"""The Orthrus consensus core (Algorithm 1).

This module implements the paper's primary contribution: hybrid ordering with
concurrent partial ordering for payment transactions and global ordering for
contract transactions, glued together by the escrow mechanism (Algorithm 2).

The core is a pure state machine.  Cluster drivers feed it delivered blocks
(``on_block_delivered``) and it returns the transactions confirmed as a
result, each tagged with the path (partial or global) that confirmed it.

Processing model
----------------
* Every delivered block is appended to its instance's partial log and handed
  to the Ladon-style dynamic global orderer.
* The *partial path* walks each partial log in order.  A block is processed
  once the replica has processed everything the block's referenced state
  ``b.S`` requires.  Processing a block escrows, for each transaction, the
  owned decremental operations assigned to this instance; failed escrows
  abort the transaction everywhere, successful payment escrows confirm the
  transaction as soon as all of its payers are escrowed.
* The *global path* walks the global log.  Contract transactions execute at
  their last occurrence, under the escrow reservations made by the partial
  path; payments are skipped because the partial path already confirmed them.
"""

from __future__ import annotations

from collections import deque

from repro.core.config import CoreConfig
from repro.core.interfaces import ConsensusCore
from repro.core.outcomes import ConfirmationPath, TxOutcome, TxStatus
from repro.core.partition import PayerPartitioner, Partitioner
from repro.ledger.blocks import Block
from repro.ledger.escrow import EscrowLog
from repro.ledger.objects import ObjectType, OperationKind
from repro.ledger.state import StateStore
from repro.ledger.transactions import Transaction
from repro.ordering.base import GlobalOrderer, derive_conflicts
from repro.ordering.dependency import DependencyGlobalOrderer
from repro.ordering.ladon import LadonGlobalOrderer


class OrthrusCore(ConsensusCore):
    """Replica-local Orthrus state machine."""

    name = "orthrus"
    uses_ranks = True

    def __init__(
        self,
        config: CoreConfig,
        store: StateStore | None = None,
        *,
        global_orderer: GlobalOrderer | None = None,
        partitioner: Partitioner | None = None,
    ) -> None:
        store = store if store is not None else StateStore()
        super().__init__(
            config=config,
            store=store,
            partitioner=partitioner or PayerPartitioner(config.num_instances),
            global_orderer=global_orderer or LadonGlobalOrderer(config.num_instances),
        )
        self.escrow = EscrowLog(store)
        #: Globally ordered blocks awaiting execution of their contract txs.
        self._global_queue: deque[Block] = deque()
        #: Remaining glog occurrences before a multi-instance tx executes.
        self._remaining_occurrences: dict[str, int] = {}
        #: Payment/contract confirmations counted per path (for metrics).
        self.partial_confirmations = 0
        self.global_confirmations = 0
        self.pending_checkpoints: list = []
        #: Leader-side bookkeeping for ``pullValidTx``: debits proposed in
        #: blocks this replica created that have not been processed yet.
        self._inflight_debits: dict[str, int] = {}
        self._leader_reserved: dict[tuple[str, int], dict[str, int]] = {}

    # -- leader-side batch selection (pullValidTx, Sec. V-B) --------------------

    def select_batch(self, instance: int, max_count: int | None = None) -> list[Transaction]:
        """Pull the oldest transactions that are valid under the current state.

        The leader only proposes a transaction when every payer assigned to
        this instance can cover it, counting the debits of transactions the
        leader has already proposed but not yet seen processed.  Transactions
        that are not (yet) valid stay in the bucket: they may become valid
        once the payer receives funds from another instance, and are garbage
        collected at the end of the epoch otherwise.  This is what guarantees
        that partial-path execution succeeds identically on every honest
        replica (Lemma 1).

        Only a bounded window at the head of the bucket is scanned per call,
        pulling one transaction at a time and stopping as soon as the batch
        fills — transactions beyond that point are simply never pulled (same
        effect as the former pull-everything-then-requeue round trip, without
        touching O(scan window) entries per call).  Transactions skipped
        because they are currently unaffordable are deferred to the *back* of
        the bucket.  Re-queueing unaffordable transactions at the front would
        pin the scan window on a persistently unaffordable prefix (payer
        drained through another instance) and starve affordable transactions
        queued behind it until epoch garbage collection.
        """
        limit = max_count if max_count is not None else self.config.batch_size
        bucket = self.buckets[instance]
        scan_limit = max(limit * 4, 16)
        batch: list[Transaction] = []
        unaffordable: list[Transaction] = []
        scanned = 0
        while len(batch) < limit and scanned < scan_limit:
            tx = bucket.pull_one()
            if tx is None:
                break
            scanned += 1
            if self.status_of(tx.tx_id).terminal:
                # Confirmed through another instance; drops out of the queue
                # here (it stays in the in-flight map until garbage
                # collection clears terminal ids, exactly as before).
                continue
            if self._affordable(tx, instance):
                self._reserve_inflight(tx, instance)
                batch.append(tx)
            else:
                unaffordable.append(tx)
        bucket.defer(unaffordable)
        return batch

    def _affordable(self, tx: Transaction, instance: int) -> bool:
        for operation in tx.decrement_operations():
            if self.partitioner.assign_object(operation.key) != instance:
                continue
            if operation.key not in self.store:
                return False
            available = self.store.balance_of(operation.key) - self._inflight_debits.get(
                operation.key, 0
            )
            if available < operation.amount:
                return False
        return True

    def _reserve_inflight(self, tx: Transaction, instance: int) -> None:
        reserved: dict[str, int] = {}
        for operation in tx.decrement_operations():
            if self.partitioner.assign_object(operation.key) != instance:
                continue
            reserved[operation.key] = reserved.get(operation.key, 0) + operation.amount
            self._inflight_debits[operation.key] = (
                self._inflight_debits.get(operation.key, 0) + operation.amount
            )
        if reserved:
            existing = self._leader_reserved.setdefault((tx.tx_id, instance), {})
            for key, amount in reserved.items():
                existing[key] = existing.get(key, 0) + amount

    def on_leadership_lost(self, instance: int) -> int:
        """Release leader-side reservations before requeueing in-flight txs.

        A demoted leader's in-flight debit reservations would otherwise leak
        forever (their blocks may never be delivered), making payers look
        poorer than they are if this replica later leads again.
        """
        for tx in self.buckets[instance].in_flight_txs():
            self._release_inflight(tx.tx_id, instance)
        return super().on_leadership_lost(instance)

    def _release_inflight(self, tx_id: str, instance: int) -> None:
        reserved = self._leader_reserved.pop((tx_id, instance), None)
        if not reserved:
            return
        for key, amount in reserved.items():
            remaining = self._inflight_debits.get(key, 0) - amount
            if remaining > 0:
                self._inflight_debits[key] = remaining
            else:
                self._inflight_debits.pop(key, None)

    # -- delivery entry point -------------------------------------------------

    def on_block_delivered(self, block: Block) -> list[TxOutcome]:
        self._record_delivery(block)
        if not self.plogs[block.instance].add(block):
            return []
        if self.global_orderer.wants_conflicts:
            conflicts = derive_conflicts(block, self.partitioner.assign_object)
            newly_ordered = self.global_orderer.on_deliver(block, conflicts)
        else:
            newly_ordered = self.global_orderer.on_deliver(block)
        self._global_queue.extend(newly_ordered)

        outcomes: list[TxOutcome] = []
        progressed = True
        while progressed:
            partial_progress, partial_outcomes = self._drain_partial_logs()
            global_progress, global_outcomes = self._drain_global_log()
            outcomes.extend(partial_outcomes)
            outcomes.extend(global_outcomes)
            progressed = partial_progress or global_progress
        self.pending_checkpoints.extend(self._maybe_complete_epochs())
        return outcomes

    # -- partial path (plog execution, Algorithm 1 lines 20-30) ---------------

    def _drain_partial_logs(self) -> tuple[bool, list[TxOutcome]]:
        progressed = False
        outcomes: list[TxOutcome] = []
        advanced = True
        while advanced:
            advanced = False
            for plog in self.plogs:
                block = plog.peek_next()
                if block is None:
                    continue
                if not self.frontier.covers(block.state):
                    continue
                outcomes.extend(self._process_block_partial(block))
                plog.advance()
                self.frontier.advance(block.instance, block.sequence_number)
                self.epochs.record_processed(block.instance, block.sequence_number)
                advanced = True
                progressed = True
        return progressed, outcomes

    def _process_block_partial(self, block: Block) -> list[TxOutcome]:
        outcomes: list[TxOutcome] = []
        for tx in block.transactions:
            outcome = self._process_tx_partial(tx, block.instance)
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def _process_tx_partial(self, tx: Transaction, instance: int) -> TxOutcome | None:
        # The block containing this transaction is being processed, so any
        # leader-side in-flight reservation has served its purpose.
        self._release_inflight(tx.tx_id, instance)
        if self.status_of(tx.tx_id).terminal:
            return None
        # Escrow the owned decremental operations assigned to this instance.
        for operation in tx.decrement_operations():
            if self.partitioner.assign_object(operation.key) != instance:
                continue
            self.store.get_or_create(operation.key, ObjectType.OWNED)
            result = self.escrow.escrow(operation, tx)
            if not result.success:
                self.escrow.abort_escrow(tx)
                self._set_status(tx, TxStatus.REJECTED)
                return TxOutcome(
                    tx=tx,
                    status=TxStatus.REJECTED,
                    path=ConfirmationPath.PARTIAL,
                    instance=instance,
                    reason=result.reason,
                )
        if tx.is_payment and self.escrow.all_escrowed(tx):
            self.escrow.commit_escrow(tx)
            self._apply_increments(tx)
            self._set_status(tx, TxStatus.COMMITTED)
            self.partial_confirmations += 1
            return TxOutcome(
                tx=tx,
                status=TxStatus.COMMITTED,
                path=ConfirmationPath.PARTIAL,
                instance=instance,
            )
        return None

    # -- global path (glog execution, Algorithm 1 lines 32-41) ----------------

    def _drain_global_log(self) -> tuple[bool, list[TxOutcome]]:
        progressed = False
        outcomes: list[TxOutcome] = []
        while self._global_queue:
            block = self._global_queue[0]
            # A block's transactions may only execute under escrow
            # reservations made by the partial path, so the block must have
            # been partially processed first.
            if self.frontier[block.instance] < block.sequence_number:
                break
            self._global_queue.popleft()
            progressed = True
            for tx in block.transactions:
                outcome = self._process_tx_global(tx, block.instance)
                if outcome is not None:
                    outcomes.append(outcome)
        return progressed, outcomes

    def _process_tx_global(self, tx: Transaction, instance: int) -> TxOutcome | None:
        remaining = self._remaining_occurrences.get(
            tx.tx_id, len(self.partitioner.buckets_for(tx))
        )
        remaining -= 1
        self._remaining_occurrences[tx.tx_id] = remaining
        if remaining > 0:
            # Not the last occurrence in the global log: remove and move on.
            return None
        self._remaining_occurrences.pop(tx.tx_id, None)
        if self.status_of(tx.tx_id).terminal or tx.is_payment:
            # Payments are confirmed by the partial path; aborted transactions
            # were already removed from every log.
            return None
        return self._execute_contract(tx, instance)

    def _execute_contract(self, tx: Transaction, instance: int) -> TxOutcome:
        if not self.escrow.all_escrowed(tx):
            # Some payer could not cover the call: refund and reject.
            self.escrow.abort_escrow(tx)
            self._set_status(tx, TxStatus.REJECTED)
            return TxOutcome(
                tx=tx,
                status=TxStatus.REJECTED,
                path=ConfirmationPath.GLOBAL,
                instance=instance,
                reason="escrow incomplete at global execution",
            )
        self.escrow.commit_escrow(tx)
        self._apply_contract_effects(tx)
        self._apply_increments(tx)
        self._set_status(tx, TxStatus.COMMITTED)
        self.global_confirmations += 1
        return TxOutcome(
            tx=tx,
            status=TxStatus.COMMITTED,
            path=ConfirmationPath.GLOBAL,
            instance=instance,
        )

    # -- state mutation helpers -------------------------------------------------

    def _apply_increments(self, tx: Transaction) -> None:
        for operation in tx.increment_operations():
            if operation.object_type is not ObjectType.OWNED:
                continue  # shared-object effects are applied by the contract path
            self.store.get_or_create(operation.key, ObjectType.OWNED)
            self.store.credit(operation.key, operation.amount)

    def _apply_contract_effects(self, tx: Transaction) -> None:
        for operation in tx.operations:
            if operation.object_type is not ObjectType.SHARED:
                continue
            self.store.get_or_create(operation.key, ObjectType.SHARED)
            if operation.kind is OperationKind.ASSIGN:
                self.store.assign(operation.key, operation.amount)
            elif operation.kind is OperationKind.INCREMENT:
                self.store.credit(operation.key, operation.amount)
            elif operation.kind is OperationKind.DECREMENT:
                self.store.debit(operation.key, operation.amount)
            elif operation.kind is OperationKind.CONTRACT_CALL:
                # Contract calls fold their argument into the slot value in a
                # deterministic (order-dependent) way.
                current = self.store.balance_of(operation.key)
                self.store.assign(operation.key, current * 31 + operation.amount)


class DependencyOrthrusCore(OrthrusCore):
    """Orthrus with the dependency-aware global orderer (``orthrus-dep``).

    Identical partial path and escrow machinery; only the global-ordering
    layer changes.  Non-conflicting blocks release into the global log without
    waiting for the bar, while blocks carrying cross-instance conflict keys
    (shared contract objects, cross-instance payers) keep Ladon's bar
    semantics — which is exactly what keeps replica state stores convergent:
    execution order can only differ across replicas for blocks whose effects
    commute.  The orderer derives conflicts from the payer partitioner's
    bucket assignment, so conflict classification agrees with escrow routing.
    """

    name = "orthrus-dep"

    def __init__(self, config: CoreConfig, store: StateStore | None = None) -> None:
        partitioner = PayerPartitioner(config.num_instances)
        super().__init__(
            config,
            store,
            partitioner=partitioner,
            global_orderer=DependencyGlobalOrderer(
                config.num_instances, key_instance=partitioner.assign_object
            ),
        )
