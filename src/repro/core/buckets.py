"""Transaction buckets feeding the SB instances (Sec. V-A).

Each bucket is an append-only queue for backups; the instance's leader may
additionally *pull* transactions when forming a block.  Duplicate submissions
are ignored, and transactions that have already reached a terminal status can
be purged during garbage collection.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.ledger.transactions import Transaction


class Bucket:
    """Pending transactions assigned to one SB instance."""

    def __init__(self, instance: int) -> None:
        self.instance = instance
        self._queue: deque[Transaction] = deque()
        self._members: set[str] = set()
        #: ids pulled by the leader but not yet confirmed (kept for requeue).
        self._in_flight: dict[str, Transaction] = {}

    def push(self, tx: Transaction) -> bool:
        """Append a transaction; returns False for duplicates."""
        if tx.tx_id in self._members or tx.tx_id in self._in_flight:
            return False
        self._queue.append(tx)
        self._members.add(tx.tx_id)
        return True

    def pull(self, max_count: int) -> list[Transaction]:
        """Leader-only: remove up to ``max_count`` oldest transactions."""
        batch: list[Transaction] = []
        while self._queue and len(batch) < max_count:
            tx = self._queue.popleft()
            self._members.discard(tx.tx_id)
            self._in_flight[tx.tx_id] = tx
            batch.append(tx)
        return batch

    def requeue(self, txs: Iterable[Transaction]) -> int:
        """Return pulled-but-unordered transactions to the front of the queue.

        Used after a view change when the old leader's proposals are lost.
        """
        returned = 0
        for tx in reversed(list(txs)):
            self._in_flight.pop(tx.tx_id, None)
            if tx.tx_id in self._members:
                continue
            self._queue.appendleft(tx)
            self._members.add(tx.tx_id)
            returned += 1
        return returned

    def defer(self, txs: Iterable[Transaction]) -> int:
        """Return pulled transactions to the *back* of the queue.

        Used by leader batch selection for transactions that are currently
        unaffordable: requeueing them at the front would make the bounded scan
        window re-examine the same unaffordable prefix forever and starve
        affordable transactions deeper in the bucket.  Deferred transactions
        cycle behind everything already queued and are re-considered once the
        scan reaches them again (or garbage-collected at the epoch boundary).
        """
        deferred = 0
        for tx in txs:
            self._in_flight.pop(tx.tx_id, None)
            if tx.tx_id in self._members:
                continue
            self._queue.append(tx)
            self._members.add(tx.tx_id)
            deferred += 1
        return deferred

    def in_flight_txs(self) -> list[Transaction]:
        """Transactions pulled by the leader and not yet confirmed."""
        return list(self._in_flight.values())

    def mark_confirmed(self, tx_ids: Iterable[str]) -> None:
        """Drop confirmed transactions from the in-flight tracking set."""
        for tx_id in tx_ids:
            self._in_flight.pop(tx_id, None)

    def purge(self, tx_ids: Iterable[str]) -> int:
        """Remove queued transactions whose ids appear in ``tx_ids``.

        Called by garbage collection for transactions that were confirmed via
        another instance or will never execute (Sec. V-D).
        """
        drop = {tx_id for tx_id in tx_ids}
        if not drop:
            return 0
        kept = [tx for tx in self._queue if tx.tx_id not in drop]
        removed = len(self._queue) - len(kept)
        self._queue = deque(kept)
        self._members = {tx.tx_id for tx in kept}
        return removed

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._members

    def peek_all(self) -> list[Transaction]:
        """Copy of the queued transactions (oldest first), for inspection."""
        return list(self._queue)
