"""Transaction buckets feeding the SB instances (Sec. V-A).

Each bucket is an append-only queue for backups; the instance's leader may
additionally *pull* transactions when forming a block.  Duplicate submissions
are ignored, and transactions that have already reached a terminal status can
be purged during garbage collection.

Purging is lazy: garbage collection only moves the purged ids into a ghost
set (O(ids), not O(queue)), and the stale queue entries are skipped when the
scan reaches them (or dropped wholesale once ghosts outnumber live entries).
An id can occupy at most one queue slot at any time — ``push``/``requeue``/
``defer`` all dedupe against the live-member set — which is what makes the
ghost set sufficient to identify stale entries.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.ledger.transactions import Transaction

#: Ghost entries tolerated before the queue is physically compacted.
_COMPACT_MIN = 64


class Bucket:
    """Pending transactions assigned to one SB instance."""

    def __init__(self, instance: int) -> None:
        self.instance = instance
        self._queue: deque[Transaction] = deque()
        self._members: set[str] = set()
        #: ids pulled by the leader but not yet confirmed (kept for requeue).
        self._in_flight: dict[str, Transaction] = {}
        #: ids purged while queued; their single stale entry is still in
        #: ``_queue`` and is skipped (and forgotten) when encountered.
        self._ghosts: set[str] = set()

    def _evict_ghost(self, tx_id: str) -> None:
        """Physically drop the stale entry for ``tx_id`` (rare: the id is
        being re-added before its ghost was scanned past)."""
        self._ghosts.discard(tx_id)
        self._queue = deque(tx for tx in self._queue if tx.tx_id != tx_id)

    def _maybe_compact(self) -> None:
        if len(self._ghosts) > _COMPACT_MIN and len(self._ghosts) > len(self._members):
            self._queue = deque(
                tx for tx in self._queue if tx.tx_id not in self._ghosts
            )
            self._ghosts.clear()

    def push(self, tx: Transaction) -> bool:
        """Append a transaction; returns False for duplicates."""
        if tx.tx_id in self._members or tx.tx_id in self._in_flight:
            return False
        if tx.tx_id in self._ghosts:
            self._evict_ghost(tx.tx_id)
        self._queue.append(tx)
        self._members.add(tx.tx_id)
        return True

    def pull_one(self) -> Transaction | None:
        """Leader-only: remove and return the oldest pending transaction."""
        queue = self._queue
        ghosts = self._ghosts
        while queue:
            tx = queue.popleft()
            if ghosts and tx.tx_id in ghosts:
                ghosts.discard(tx.tx_id)
                continue
            self._members.discard(tx.tx_id)
            self._in_flight[tx.tx_id] = tx
            return tx
        return None

    def pull(self, max_count: int) -> list[Transaction]:
        """Leader-only: remove up to ``max_count`` oldest transactions."""
        batch: list[Transaction] = []
        while len(batch) < max_count:
            tx = self.pull_one()
            if tx is None:
                break
            batch.append(tx)
        return batch

    def requeue(self, txs: Iterable[Transaction]) -> int:
        """Return pulled-but-unordered transactions to the front of the queue.

        Used after a view change when the old leader's proposals are lost.
        """
        returned = 0
        for tx in reversed(list(txs)):
            self._in_flight.pop(tx.tx_id, None)
            if tx.tx_id in self._members:
                continue
            if tx.tx_id in self._ghosts:
                self._evict_ghost(tx.tx_id)
            self._queue.appendleft(tx)
            self._members.add(tx.tx_id)
            returned += 1
        return returned

    def defer(self, txs: Iterable[Transaction]) -> int:
        """Return pulled transactions to the *back* of the queue.

        Used by leader batch selection for transactions that are currently
        unaffordable: requeueing them at the front would make the bounded scan
        window re-examine the same unaffordable prefix forever and starve
        affordable transactions deeper in the bucket.  Deferred transactions
        cycle behind everything already queued and are re-considered once the
        scan reaches them again (or garbage-collected at the epoch boundary).
        """
        deferred = 0
        for tx in txs:
            self._in_flight.pop(tx.tx_id, None)
            if tx.tx_id in self._members:
                continue
            if tx.tx_id in self._ghosts:
                self._evict_ghost(tx.tx_id)
            self._queue.append(tx)
            self._members.add(tx.tx_id)
            deferred += 1
        return deferred

    def in_flight_txs(self) -> list[Transaction]:
        """Transactions pulled by the leader and not yet confirmed."""
        return list(self._in_flight.values())

    def mark_confirmed(self, tx_ids: Iterable[str]) -> None:
        """Drop confirmed transactions from the in-flight tracking set."""
        for tx_id in tx_ids:
            self._in_flight.pop(tx_id, None)

    def purge(self, tx_ids: Iterable[str]) -> int:
        """Remove queued transactions whose ids appear in ``tx_ids``.

        Called by garbage collection for transactions that were confirmed via
        another instance or will never execute (Sec. V-D).  O(len(tx_ids)):
        the queue entries become ghosts and are skipped lazily.
        """
        members = self._members
        drop = {tx_id for tx_id in tx_ids if tx_id in members}
        if not drop:
            return 0
        members -= drop
        self._ghosts |= drop
        self._maybe_compact()
        return len(drop)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._members

    def peek_all(self) -> list[Transaction]:
        """Copy of the queued transactions (oldest first), for inspection."""
        if not self._ghosts:
            return list(self._queue)
        return [tx for tx in self._queue if tx.tx_id not in self._ghosts]
