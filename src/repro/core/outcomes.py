"""Transaction outcomes emitted by consensus cores.

The paper counts a transaction as *confirmed* once it has been executed,
"either successfully or unsuccessfully".  Outcomes therefore distinguish
successful commits from rejected executions (e.g. insufficient funds), and
both count towards throughput; only the path that produced them differs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ledger.transactions import Transaction


class TxStatus(enum.Enum):
    """Lifecycle of a transaction inside a consensus core."""

    PENDING = "pending"
    COMMITTED = "committed"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        """Whether the transaction is confirmed (no further transitions)."""
        return self is not TxStatus.PENDING


class ConfirmationPath(enum.Enum):
    """Which ordering path confirmed the transaction."""

    PARTIAL = "partial"
    GLOBAL = "global"


@dataclass
class TxOutcome:
    """A confirmation event for one transaction."""

    tx: Transaction
    status: TxStatus
    path: ConfirmationPath
    instance: int
    reason: str = ""
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        """True when the transaction executed successfully."""
        return self.status is TxStatus.COMMITTED

    @property
    def confirmed(self) -> bool:
        """True for any terminal status (the paper's definition)."""
        return self.status.terminal
