"""Partial logs (``plog``) and the processed-frontier bookkeeping.

Every instance has one partial log per replica: the blocks that instance has
delivered, indexed by sequence number.  The execution engine walks each
partial log in order; a position may only be processed once the block's
referenced system state ``b.S`` is covered by what the replica has already
processed, which realises the cross-instance references of Sec. II-A.
"""

from __future__ import annotations

from repro.ledger.blocks import Block, SystemState


class PartialLog:
    """Delivered blocks of one SB instance, processed in sequence order."""

    def __init__(self, instance: int) -> None:
        self.instance = instance
        self._blocks: dict[int, Block] = {}
        self._next_to_process = 0
        self._highest_delivered = -1

    def add(self, block: Block) -> bool:
        """Record a delivered block; returns False for duplicates."""
        if block.sequence_number in self._blocks:
            return False
        self._blocks[block.sequence_number] = block
        self._highest_delivered = max(self._highest_delivered, block.sequence_number)
        return True

    def get(self, sequence_number: int) -> Block | None:
        """Block at ``sequence_number`` if delivered."""
        return self._blocks.get(sequence_number)

    @property
    def next_to_process(self) -> int:
        """Lowest sequence number the execution engine has not settled."""
        return self._next_to_process

    @property
    def highest_delivered(self) -> int:
        """Highest delivered sequence number (-1 when empty)."""
        return self._highest_delivered

    def peek_next(self) -> Block | None:
        """The next block awaiting processing, if it has been delivered."""
        return self._blocks.get(self._next_to_process)

    def advance(self) -> None:
        """Mark the current head position as processed."""
        self._next_to_process += 1

    def fast_forward(self, next_to_process: int) -> None:
        """Resume after a snapshot restore: everything below
        ``next_to_process`` is already processed (the blocks themselves are
        not re-materialised — they live in the WAL, not the snapshot)."""
        if next_to_process > self._next_to_process:
            self._next_to_process = next_to_process
            self._highest_delivered = max(
                self._highest_delivered, next_to_process - 1
            )

    def prune_below(self, sequence_number: int) -> int:
        """Garbage-collect processed blocks below ``sequence_number``."""
        stale = [
            sn
            for sn in self._blocks
            if sn < sequence_number and sn < self._next_to_process
        ]
        for sn in stale:
            del self._blocks[sn]
        return len(stale)

    def __len__(self) -> int:
        return len(self._blocks)


class ProcessedFrontier:
    """Tracks, per instance, the highest sequence number already processed."""

    def __init__(self, num_instances: int) -> None:
        self._frontier = [-1] * num_instances

    def advance(self, instance: int, sequence_number: int) -> None:
        """Record that ``(instance, sequence_number)`` has been processed."""
        self._frontier[instance] = max(self._frontier[instance], sequence_number)

    def restore(self, values: list[int]) -> None:
        """Overwrite the frontier (snapshot restore)."""
        if len(values) != len(self._frontier):
            raise ValueError("frontier width mismatch")
        self._frontier = [int(v) for v in values]

    def covers(self, state: SystemState) -> bool:
        """Whether every reference in ``state`` has been processed locally."""
        if len(state) != len(self._frontier):
            return False
        return all(
            have >= need
            for have, need in zip(self._frontier, state.sequence_numbers)
        )

    def as_state(self) -> SystemState:
        """Snapshot of the frontier as a :class:`SystemState`."""
        return SystemState(tuple(self._frontier))

    def __getitem__(self, instance: int) -> int:
        return self._frontier[instance]
