"""Ablation variant: Orthrus without the non-blocking escrow interaction.

DESIGN.md calls out the escrow mechanism as one of the load-bearing design
choices.  This variant answers "what if we had not built Solution-II?": a
pending contract transaction *locks* its payers until it is globally ordered,
so payment transactions behind it in the same partial log must wait instead
of being evaluated against the escrowed balance.

Everything else — partitioning, partial logs, dynamic global ordering,
multi-payer atomicity — is inherited unchanged from :class:`OrthrusCore`, so
benchmark differences between the two cores isolate the contribution of the
escrow-based non-blocking interaction (Challenge-II / Solution-II in the
paper).
"""

from __future__ import annotations

from repro.core.config import CoreConfig
from repro.core.orthrus import OrthrusCore
from repro.core.outcomes import TxOutcome
from repro.ledger.blocks import Block
from repro.ledger.state import StateStore
from repro.ledger.transactions import Transaction


class BlockingOrthrusCore(OrthrusCore):
    """Orthrus with payer locking instead of escrow for pending contracts."""

    name = "orthrus-blocking"

    def __init__(self, config: CoreConfig, store: StateStore | None = None) -> None:
        super().__init__(config, store)
        #: Payers locked by contract transactions awaiting global ordering.
        self._locked_payers: dict[str, str] = {}

    # -- partial path with locking ------------------------------------------------

    def _process_tx_partial(self, tx: Transaction, instance: int) -> TxOutcome | None:
        if not tx.is_payment:
            outcome = super()._process_tx_partial(tx, instance)
            # A contract transaction that escrowed successfully also locks its
            # payers until the global path releases them.
            if not self.status_of(tx.tx_id).terminal:
                for payer in tx.payers():
                    if self.partitioner.assign_object(payer) == instance:
                        self._locked_payers.setdefault(payer, tx.tx_id)
            return outcome
        blocked_by = self._blocking_contract(tx, instance)
        if blocked_by is not None:
            # Without Solution-II the payment cannot be evaluated until the
            # blocking contract confirms; park it for the global path to
            # re-drive once the lock holder resolves.
            self._blocked_payments.setdefault(blocked_by, []).append((tx, instance))
            return None
        return super()._process_tx_partial(tx, instance)

    def _blocking_contract(self, tx: Transaction, instance: int) -> str | None:
        for payer in tx.payers():
            if self.partitioner.assign_object(payer) != instance:
                continue
            holder = self._locked_payers.get(payer)
            if holder is not None and not self.status_of(holder).terminal:
                return holder
        return None

    # -- global path releases locks --------------------------------------------------

    @property
    def _blocked_payments(self) -> dict[str, list[tuple[Transaction, int]]]:
        if not hasattr(self, "_blocked_payments_store"):
            self._blocked_payments_store: dict[str, list[tuple[Transaction, int]]] = {}
        return self._blocked_payments_store

    def on_block_delivered(self, block: Block) -> list[TxOutcome]:
        outcomes = super().on_block_delivered(block)
        outcomes.extend(self._release_unblocked())
        return outcomes

    def _release_unblocked(self) -> list[TxOutcome]:
        released: list[TxOutcome] = []
        for holder in list(self._blocked_payments):
            if not self.status_of(holder).terminal:
                continue
            for payer, lock_holder in list(self._locked_payers.items()):
                if lock_holder == holder:
                    del self._locked_payers[payer]
            for tx, instance in self._blocked_payments.pop(holder):
                outcome = super()._process_tx_partial(tx, instance)
                if outcome is not None:
                    released.append(outcome)
        return released
