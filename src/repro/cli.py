"""Command-line interface for running experiments and regenerating figures.

Examples::

    python -m repro.cli run --protocol orthrus --replicas 16 --environment wan
    python -m repro.cli compare --replicas 16 --straggler
    python -m repro.cli figure fig3 --scale smoke
    python -m repro.cli workload --transactions 1000 --payment-fraction 0.8
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.comparison import (
    compare_latency,
    export_csv,
    summarize,
    throughput_sparkline,
)
from repro.cluster.faults import FaultPlan
from repro.cluster.pipeline import PipelineConfig, run_pipeline_experiment
from repro.experiments.reporting import (
    breakdown_table,
    fault_timeline_table,
    proportion_table,
    scalability_table,
    undetectable_table,
)
from repro.experiments.scenarios import (
    detectable_fault_timelines,
    latency_breakdown,
    payment_proportion_sweep,
    scalability_sweep,
    undetectable_fault_sweep,
)
from repro.protocols.registry import PROTOCOL_NAMES, available_protocols
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orthrus reproduction: run experiments and regenerate figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one protocol once")
    run_parser.add_argument("--protocol", default="orthrus", choices=available_protocols() + ["orthrus-blocking"])
    run_parser.add_argument("--replicas", type=int, default=16)
    run_parser.add_argument("--environment", default="wan", choices=["wan", "lan"])
    run_parser.add_argument("--duration", type=float, default=40.0)
    run_parser.add_argument("--warmup", type=float, default=8.0)
    run_parser.add_argument("--straggler", action="store_true")
    run_parser.add_argument("--payment-fraction", type=float, default=0.46)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--csv", action="store_true", help="emit CSV instead of text")

    compare_parser = subparsers.add_parser("compare", help="run every protocol once and compare")
    compare_parser.add_argument("--replicas", type=int, default=16)
    compare_parser.add_argument("--environment", default="wan", choices=["wan", "lan"])
    compare_parser.add_argument("--duration", type=float, default=40.0)
    compare_parser.add_argument("--warmup", type=float, default=8.0)
    compare_parser.add_argument("--straggler", action="store_true")
    compare_parser.add_argument("--seed", type=int, default=1)

    figure_parser = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument(
        "name",
        choices=["fig3", "fig4", "fig5", "fig6", "fig7", "fig8"],
        help="paper figure to regenerate",
    )
    figure_parser.add_argument("--scale", default="smoke", choices=["smoke", "ci", "paper"])

    workload_parser = subparsers.add_parser("workload", help="inspect the synthetic trace")
    workload_parser.add_argument("--transactions", type=int, default=1000)
    workload_parser.add_argument("--accounts", type=int, default=18_000)
    workload_parser.add_argument("--payment-fraction", type=float, default=0.46)
    workload_parser.add_argument("--seed", type=int, default=42)

    return parser


def _pipeline_config(args: argparse.Namespace, protocol: str) -> PipelineConfig:
    faults = FaultPlan.with_straggler(instance=1) if args.straggler else FaultPlan.none()
    return PipelineConfig(
        protocol=protocol,
        num_replicas=args.replicas,
        environment=args.environment,
        duration=args.duration,
        warmup=args.warmup,
        samples_per_block=6,
        seed=args.seed,
        workload=WorkloadConfig(payment_fraction=args.payment_fraction)
        if hasattr(args, "payment_fraction")
        else WorkloadConfig(),
        faults=faults,
    )


def _command_run(args: argparse.Namespace) -> int:
    metrics = run_pipeline_experiment(_pipeline_config(args, args.protocol))
    if args.csv:
        print(export_csv({args.protocol: metrics}), end="")
        return 0
    print(summarize({args.protocol: metrics}))
    print("stage breakdown:")
    for stage, seconds in metrics.stage_breakdown.items():
        print(f"  {stage:<18} {seconds:7.3f} s")
    spark = throughput_sparkline(metrics)
    if spark:
        print(f"throughput over time: [{spark}]")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    args.payment_fraction = 0.46
    results = {}
    for protocol in PROTOCOL_NAMES:
        results[protocol] = run_pipeline_experiment(_pipeline_config(args, protocol))
    print(summarize(results))
    print()
    for comparison in compare_latency(results, "orthrus"):
        print(
            f"orthrus vs {comparison.reference:<8} "
            f"latency reduction {comparison.latency_reduction_percent:6.1f} %   "
            f"throughput ratio {comparison.throughput_ratio:5.2f}x"
        )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    if args.name == "fig3":
        for stragglers in (0, 1):
            points = scalability_sweep("wan", stragglers=stragglers, scale=args.scale)
            print(scalability_table(points))
            print()
    elif args.name == "fig4":
        for stragglers in (0, 1):
            points = scalability_sweep("lan", stragglers=stragglers, scale=args.scale)
            print(scalability_table(points))
            print()
    elif args.name == "fig5":
        for stragglers in (0, 1):
            print(proportion_table(payment_proportion_sweep(stragglers=stragglers, scale=args.scale)))
            print()
    elif args.name == "fig6":
        print(breakdown_table(latency_breakdown(scale=args.scale)))
    elif args.name == "fig7":
        print(fault_timeline_table(detectable_fault_timelines(scale=args.scale)))
    elif args.name == "fig8":
        print(undetectable_table(undetectable_fault_sweep(scale=args.scale)))
    return 0


def _command_workload(args: argparse.Namespace) -> int:
    config = WorkloadConfig(
        num_accounts=args.accounts,
        num_transactions=args.transactions,
        payment_fraction=args.payment_fraction,
        seed=args.seed,
    )
    trace = EthereumStyleWorkload(config).generate()
    stats = trace.statistics
    print(f"transactions            : {stats.total}")
    print(f"payments                : {stats.payments} ({stats.payment_fraction * 100:.1f} %)")
    print(f"contract calls          : {stats.contracts}")
    print(f"multi-payer payments    : {stats.multi_payer_payments}")
    print(f"multi-caller contracts  : {stats.multi_caller_contracts}")
    print(f"distinct active accounts: {stats.unique_accounts}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "figure": _command_figure,
        "workload": _command_workload,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
