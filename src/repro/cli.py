"""Command-line interface for running experiments and regenerating figures.

Examples::

    python -m repro.cli run --protocol orthrus --replicas 16 --environment wan
    python -m repro.cli compare --replicas 16 --straggler --jobs 6
    python -m repro.cli figure fig3 --scale smoke --jobs 4 --cache-dir .cache
    python -m repro.cli grid fig5 --scale ci --jobs 8 --cache-dir .cache
    python -m repro.cli grid --list
    python -m repro.cli workload --transactions 1000 --payment-fraction 0.8

Live cluster (real asyncio TCP processes, not the simulator)::

    python -m repro.cli cluster --replicas 4 --instances 2 --duration 10
    python -m repro.cli serve --replica-id 0 --peers 127.0.0.1:7000,...
    python -m repro.cli loadgen --peers 127.0.0.1:7000,... --transactions 1000

Observability (docs/observability.md)::

    python -m repro.cli cluster --trace-sample 1.0 --duration 30
    python -m repro.cli top --peers 127.0.0.1:7000,... --iterations 3
    python -m repro.cli trace <tx-id-prefix> --dir /tmp/repro-run-...

Live fault injection (the paper's degradation modes on real sockets)::

    python -m repro.cli chaos --crash 0:2 --view-change-timeout 2
    python -m repro.cli chaos --straggle 1:10
    python -m repro.cli chaos --byzantine 1
    python -m repro.cli cluster --fault-plan '{"crashes": {"0": 5}}'
    python -m repro.cli run --backend live --replicas 4 --straggler

Performance benchmarks (the BENCH_<n>.json trajectory, docs/performance.md)::

    python -m repro.cli bench --suite quick
    python -m repro.cli bench --suite full --output BENCH_5.json
    python -m repro.cli bench --suite quick --check BENCH_5.json

All experiment commands accept ``--jobs N`` (parallel execution across a
process pool; results are identical to serial runs) and ``--cache-dir PATH``
(completed cells are stored as JSON keyed by spec hash, so re-runs and
overlapping grids are free).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Sequence

from repro.analysis.comparison import (
    compare_latency,
    export_csv,
    export_results_csv,
    results_by_protocol,
    summarize,
    throughput_sparkline,
)
from repro.errors import ConfigurationError, ReproError
from repro.experiments.engine import ExperimentEngine, FaultSpec, ScenarioSpec
from repro.experiments.registry import expand_grid, grid, grid_names
from repro.experiments.reporting import (
    breakdown_table,
    engine_summary,
    fault_timeline_table,
    grid_table,
    proportion_table,
    scalability_table,
    undetectable_table,
)
from repro.experiments.scale import SCALE_NAMES
from repro.experiments.scenarios import (
    detectable_fault_timelines,
    latency_breakdown,
    payment_proportion_sweep,
    scalability_sweep,
    undetectable_fault_sweep,
)
from repro.protocols.registry import PROTOCOL_NAMES, available_protocols
from repro.workload.config import DEFAULT_ZIPF_EXPONENT, WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

#: Default workload seed of ad-hoc ``run``/``compare`` invocations (the
#: figure grids derive their own seeds; see ``ScenarioSpec``).
_CLI_WORKLOAD_SEED = 42


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _add_wire_version_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--wire-version",
        type=int,
        default=None,
        choices=[1, 2, 3],
        help=(
            "highest wire version to speak (default: 3, binary with batched "
            "super-frames; 2 struct-packed binary without batching; 1 pins "
            "canonical JSON); per-connection encoding is negotiated down via "
            "the hello handshake"
        ),
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by serve/cluster/chaos."""
    parser.add_argument(
        "--no-obs",
        action="store_true",
        help="disable the metrics registry, tracing and snapshots entirely",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help="stderr logging threshold (default: info)",
    )
    parser.add_argument(
        "--log-format",
        default="text",
        choices=["text", "json"],
        help="stderr log rendering: text (default) or json (one object per line)",
    )


def _add_cluster_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Run-directory observability flags shared by cluster/chaos."""
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="PATH",
        help=(
            "directory for run artifacts (replica-<i>/trace.jsonl, "
            "metrics.jsonl, stderr.log); default: a repro-run-* temp dir "
            "when tracing is on"
        ),
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help=(
            "fraction of transactions traced across every process "
            "(deterministic by tx id; 0 disables tracing, 1.0 traces all)"
        ),
    )
    parser.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between per-replica metrics snapshots (default: 1.0)",
    )
    _add_obs_arguments(parser)


def _add_durability_arguments(parser: argparse.ArgumentParser) -> None:
    """Durability flags shared by cluster/chaos."""
    parser.add_argument(
        "--durability",
        action="store_true",
        help=(
            "give every replica a WAL + snapshots under its run directory so "
            "crashed replicas rejoin at full strength after a restart"
        ),
    )
    parser.add_argument(
        "--epoch-length",
        type=_positive_int,
        default=1_000_000,
        metavar="BLOCKS",
        help="blocks per epoch (checkpoint/snapshot cadence; default: 1000000)",
    )
    parser.add_argument(
        "--snapshot-every-epochs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="cut a snapshot at most every N completed epochs (default: 1)",
    )


def _add_cluster_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transport",
        default="tcp",
        choices=["tcp", "uds"],
        help="peer sockets: tcp (default) or uds (Unix domain, localhost only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="crypto/codec worker processes per replica (default: 0, inline)",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for grid cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for cached per-spec results (default: no cache)",
    )


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orthrus reproduction: run experiments and regenerate figures.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one protocol once")
    run_parser.add_argument("--protocol", default="orthrus", choices=available_protocols() + ["orthrus-blocking"])
    run_parser.add_argument(
        "--backend",
        default="sim",
        choices=["sim", "live"],
        help="sim: deterministic simulator; live: real asyncio cluster on localhost",
    )
    run_parser.add_argument("--replicas", type=int, default=16)
    run_parser.add_argument("--environment", default="wan", choices=["wan", "lan"])
    run_parser.add_argument("--duration", type=float, default=40.0)
    run_parser.add_argument("--warmup", type=float, default=8.0)
    run_parser.add_argument("--straggler", action="store_true")
    run_parser.add_argument("--payment-fraction", type=float, default=0.46)
    run_parser.add_argument(
        "--zipf-s",
        type=float,
        default=None,
        help="Zipf skew of account activity (default: 0.8; higher = hotter keys)",
    )
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--csv", action="store_true", help="emit CSV instead of text")
    _add_engine_arguments(run_parser)

    compare_parser = subparsers.add_parser("compare", help="run every protocol once and compare")
    compare_parser.add_argument("--replicas", type=int, default=16)
    compare_parser.add_argument("--environment", default="wan", choices=["wan", "lan"])
    compare_parser.add_argument("--duration", type=float, default=40.0)
    compare_parser.add_argument("--warmup", type=float, default=8.0)
    compare_parser.add_argument("--straggler", action="store_true")
    compare_parser.add_argument("--seed", type=int, default=1)
    _add_engine_arguments(compare_parser)

    figure_parser = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument(
        "name",
        choices=["fig3", "fig4", "fig5", "fig6", "fig7", "fig8"],
        help="paper figure to regenerate",
    )
    figure_parser.add_argument("--scale", default="smoke", choices=list(SCALE_NAMES))
    _add_engine_arguments(figure_parser)

    grid_parser = subparsers.add_parser(
        "grid", help="expand and run a named scenario grid"
    )
    grid_parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered grid name (see --list)",
    )
    grid_parser.add_argument("--scale", default="smoke", choices=list(SCALE_NAMES))
    grid_parser.add_argument(
        "--list", action="store_true", help="list registered grids and exit"
    )
    grid_parser.add_argument("--csv", action="store_true", help="emit CSV instead of text")
    _add_engine_arguments(grid_parser)

    workload_parser = subparsers.add_parser("workload", help="inspect the synthetic trace")
    workload_parser.add_argument("--transactions", type=int, default=1000)
    workload_parser.add_argument("--accounts", type=int, default=18_000)
    workload_parser.add_argument("--payment-fraction", type=float, default=0.46)
    workload_parser.add_argument(
        "--zipf-s",
        type=float,
        default=DEFAULT_ZIPF_EXPONENT,
        help="Zipf skew of account activity (0 = uniform)",
    )
    workload_parser.add_argument("--seed", type=int, default=42)

    serve_parser = subparsers.add_parser(
        "serve", help="run one live replica server (asyncio TCP)"
    )
    serve_parser.add_argument("--replica-id", type=int, required=True)
    serve_parser.add_argument(
        "--peers",
        required=True,
        help="comma-separated host:port listen endpoints, one per replica, in id order",
    )
    serve_parser.add_argument(
        "--protocol", default="orthrus", choices=available_protocols()
    )
    serve_parser.add_argument("--instances", type=int, default=None)
    serve_parser.add_argument("--batch-size", type=int, default=64)
    serve_parser.add_argument("--batch-interval", type=float, default=0.05)
    serve_parser.add_argument(
        "--epoch-length",
        type=_positive_int,
        default=1_000_000,
        metavar="BLOCKS",
        help="blocks per epoch (checkpoint/snapshot cadence; default: 1000000)",
    )
    serve_parser.add_argument("--view-change-timeout", type=float, default=10.0)
    serve_parser.add_argument("--accounts", type=int, default=1024)
    serve_parser.add_argument("--workload-seed", type=int, default=42)
    serve_parser.add_argument(
        "--zipf-s",
        type=float,
        default=DEFAULT_ZIPF_EXPONENT,
        help="Zipf skew of the genesis/workload account universe",
    )
    serve_parser.add_argument(
        "--send-delay",
        type=float,
        default=0.0,
        help="chaos: delay every outbound replica frame by SECONDS (straggler)",
    )
    serve_parser.add_argument(
        "--wan",
        default=None,
        metavar="MODEL|MATRIX",
        help=(
            "chaos: WAN emulation — 'wan'/'lan', a JSON square delay matrix "
            "in seconds, or @file.json (per-destination due-time delays)"
        ),
    )
    serve_parser.add_argument(
        "--byzantine-abstain",
        action="store_true",
        help="chaos: drop consensus messages for instances this replica does not lead",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="crypto/codec worker processes (default: 0, decode inline)",
    )
    serve_parser.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="JSONL file sampled transaction span events are appended to",
    )
    serve_parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of transactions traced (deterministic by tx id)",
    )
    serve_parser.add_argument(
        "--metrics-file",
        default=None,
        metavar="PATH",
        help="JSONL file periodic metrics-registry snapshots are appended to",
    )
    serve_parser.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between metrics snapshots (default: 1.0)",
    )
    serve_parser.add_argument(
        "--run-dir",
        default=None,
        metavar="PATH",
        help=(
            "directory for this replica's durable state (wal.jsonl, "
            "snapshot-*.json); enables WAL + snapshots + crash recovery"
        ),
    )
    serve_parser.add_argument(
        "--recovery",
        default="snapshot",
        choices=["snapshot", "genesis"],
        help=(
            "what a restart does with durable state: recover from the newest "
            "snapshot + WAL (default) or wipe it and rejoin from genesis"
        ),
    )
    serve_parser.add_argument(
        "--snapshot-every-epochs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="cut a snapshot at most every N completed epochs (default: 1)",
    )
    _add_obs_arguments(serve_parser)
    _add_wire_version_argument(serve_parser)

    cluster_parser = subparsers.add_parser(
        "cluster", help="spawn and supervise a local live cluster"
    )
    cluster_parser.add_argument("--replicas", type=_positive_int, default=4)
    cluster_parser.add_argument("--instances", type=int, default=None)
    cluster_parser.add_argument(
        "--protocol", default="orthrus", choices=available_protocols()
    )
    cluster_parser.add_argument("--base-port", type=int, default=None)
    cluster_parser.add_argument("--batch-size", type=int, default=64)
    cluster_parser.add_argument("--batch-interval", type=float, default=0.05)
    cluster_parser.add_argument("--view-change-timeout", type=float, default=10.0)
    cluster_parser.add_argument("--accounts", type=int, default=1024)
    cluster_parser.add_argument("--workload-seed", type=int, default=42)
    cluster_parser.add_argument(
        "--zipf-s",
        type=float,
        default=DEFAULT_ZIPF_EXPONENT,
        help="Zipf skew of the genesis/workload account universe",
    )
    cluster_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds to run before shutting down (default: until Ctrl-C)",
    )
    cluster_parser.add_argument(
        "--fault-plan",
        default=None,
        help=(
            "JSON fault plan or @file: "
            '{"stragglers": {"1": 10}, "crashes": {"0": 5}, '
            '"restarts": {"0": 15}, "churn": [[5, 0, 3]], '
            '"partitions": [[5, [[3]], 3]], "wan": "wan", '
            '"undetectable_faults": 1}'
        ),
    )
    cluster_parser.add_argument(
        "--wan",
        default=None,
        metavar="MODEL|MATRIX",
        help=(
            "WAN emulation for every replica — 'wan'/'lan', a JSON square "
            "delay matrix in seconds, or @file.json"
        ),
    )
    _add_durability_arguments(cluster_parser)
    _add_cluster_scale_arguments(cluster_parser)
    _add_cluster_obs_arguments(cluster_parser)
    _add_wire_version_argument(cluster_parser)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run a fault-injected load experiment against a fresh live cluster",
    )
    chaos_parser.add_argument("--replicas", type=_positive_int, default=4)
    chaos_parser.add_argument("--instances", type=int, default=None)
    chaos_parser.add_argument(
        "--protocol", default="orthrus", choices=available_protocols()
    )
    chaos_parser.add_argument("--base-port", type=int, default=None)
    chaos_parser.add_argument("--batch-size", type=int, default=64)
    chaos_parser.add_argument("--batch-interval", type=float, default=0.02)
    chaos_parser.add_argument("--view-change-timeout", type=float, default=2.0)
    chaos_parser.add_argument("--accounts", type=int, default=1024)
    chaos_parser.add_argument("--workload-seed", type=int, default=42)
    chaos_parser.add_argument(
        "--zipf-s",
        type=float,
        default=DEFAULT_ZIPF_EXPONENT,
        help="Zipf skew of the workload (sweep to vary contention)",
    )
    chaos_parser.add_argument("--transactions", type=_positive_int, default=1000)
    chaos_parser.add_argument("--mode", choices=["closed", "open"], default="closed")
    chaos_parser.add_argument("--concurrency", type=_positive_int, default=32)
    chaos_parser.add_argument("--rate", type=float, default=500.0)
    chaos_parser.add_argument("--payment-fraction", type=float, default=1.0)
    chaos_parser.add_argument("--client-timeout", type=float, default=None)
    chaos_parser.add_argument(
        "--straggle",
        action="append",
        default=[],
        metavar="REPLICA:FACTOR",
        help="slow one replica down (paper straggler: 0:10); repeatable",
    )
    chaos_parser.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="REPLICA:SECONDS",
        help="SIGKILL one replica at a time offset; repeatable",
    )
    chaos_parser.add_argument(
        "--restart",
        action="append",
        default=[],
        metavar="REPLICA:SECONDS",
        help="restart a crashed replica at a time offset; repeatable",
    )
    chaos_parser.add_argument(
        "--churn",
        action="append",
        default=[],
        metavar="AT:REPLICA:DOWNTIME",
        help=(
            "crash a replica at AT seconds and restart it DOWNTIME seconds "
            "later (combine with --durability for full rejoin); repeatable"
        ),
    )
    chaos_parser.add_argument(
        "--partition",
        action="append",
        default=[],
        metavar="AT:DURATION:GROUPS",
        help=(
            "split the cluster at AT seconds for DURATION seconds; GROUPS is "
            "pipe-separated comma lists of replica ids (e.g. '3' isolates "
            "replica 3, '0,1|2,3' splits in half); repeatable"
        ),
    )
    chaos_parser.add_argument(
        "--wan",
        default=None,
        metavar="MODEL|MATRIX",
        help=(
            "WAN emulation for every replica — 'wan'/'lan', a JSON square "
            "delay matrix in seconds, or @file.json"
        ),
    )
    chaos_parser.add_argument(
        "--expect-stall",
        action="store_true",
        help=(
            "acknowledge that a partition denies some quorum (required to "
            "run plans isolating more than f replicas from every group)"
        ),
    )
    chaos_parser.add_argument(
        "--byzantine",
        type=int,
        default=0,
        metavar="COUNT",
        help="replicas that abstain from instances they do not lead (Fig. 8)",
    )
    chaos_parser.add_argument(
        "--fault-plan",
        default=None,
        help="JSON fault plan or @file (overrides the individual fault flags)",
    )
    _add_durability_arguments(chaos_parser)
    _add_cluster_scale_arguments(chaos_parser)
    _add_cluster_obs_arguments(chaos_parser)
    _add_wire_version_argument(chaos_parser)

    loadgen_parser = subparsers.add_parser(
        "loadgen", help="drive a live cluster with synthetic load"
    )
    loadgen_parser.add_argument(
        "--peers", required=True, help="comma-separated replica host:port endpoints"
    )
    loadgen_parser.add_argument("--transactions", type=_positive_int, default=1000)
    loadgen_parser.add_argument("--mode", choices=["closed", "open"], default="closed")
    loadgen_parser.add_argument("--concurrency", type=_positive_int, default=32)
    loadgen_parser.add_argument("--rate", type=float, default=500.0)
    loadgen_parser.add_argument("--payment-fraction", type=float, default=1.0)
    loadgen_parser.add_argument("--accounts", type=int, default=1024)
    loadgen_parser.add_argument("--workload-seed", type=int, default=42)
    loadgen_parser.add_argument(
        "--zipf-s",
        type=float,
        default=DEFAULT_ZIPF_EXPONENT,
        help="Zipf skew of the workload (sweep to vary contention)",
    )
    loadgen_parser.add_argument("--client-id", type=int, default=1000)
    loadgen_parser.add_argument("--timeout", type=float, default=5.0)
    loadgen_parser.add_argument(
        "--route-instances",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "leader-route each transaction to the f+1 replicas responsible "
            "for it (pass the cluster's instance count; default: submit to "
            "every replica)"
        ),
    )
    loadgen_parser.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help=(
            "JSONL file the client's submitted/replied span events are "
            "appended to (point it into the cluster's run dir so repro "
            "trace can stitch the full timeline)"
        ),
    )
    loadgen_parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of transactions traced (must match the replicas' rate)",
    )
    _add_wire_version_argument(loadgen_parser)

    top_parser = subparsers.add_parser(
        "top",
        help="live cluster state: poll status + metrics and render a table",
    )
    top_parser.add_argument(
        "--peers", required=True, help="comma-separated replica host:port endpoints"
    )
    top_parser.add_argument("--client-id", type=int, default=998)
    top_parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between refreshes (default: 1.0)",
    )
    top_parser.add_argument(
        "--iterations",
        type=_positive_int,
        default=None,
        help="refreshes before exiting (default: until Ctrl-C)",
    )
    _add_wire_version_argument(top_parser)

    trace_parser = subparsers.add_parser(
        "trace",
        help="stitch one transaction's cross-process timeline from trace files",
    )
    trace_parser.add_argument(
        "tx_id",
        nargs="?",
        default=None,
        help="transaction id (a unique prefix works); omit to list traced ids",
    )
    trace_parser.add_argument(
        "--dir",
        required=True,
        metavar="PATH",
        help="run directory containing the trace JSONL files (searched recursively)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the performance benchmark suite and emit BENCH_<n>.json",
    )
    from repro.bench import SUITE_NAMES

    bench_parser.add_argument(
        "--suite",
        default="quick",
        choices=list(SUITE_NAMES),
        help="quick: micro benchmarks only; full: + fig3-small sim and live cluster",
    )
    bench_parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the results as a BENCH_<n>.json report to PATH",
    )
    bench_parser.add_argument(
        "--pr",
        type=int,
        default=6,
        help="PR number recorded in the report (default: 6)",
    )
    bench_parser.add_argument(
        "--baselines",
        default=None,
        metavar="PATH",
        help=(
            "JSON mapping of benchmark name -> pre-PR value, merged into the "
            "report as baseline_pre_pr (speedups are derived)"
        ),
    )
    bench_parser.add_argument(
        "--check",
        default=None,
        metavar="PATH",
        help="compare against a committed BENCH_<n>.json; exit 1 on regression",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fractional regression tolerated by --check (default: 0.30)",
    )

    return parser


def _engine_from_args(args: argparse.Namespace) -> ExperimentEngine:
    try:
        return ExperimentEngine(cache_dir=args.cache_dir, jobs=args.jobs)
    except OSError as error:
        raise SystemExit(
            f"error: cannot use cache directory {args.cache_dir!r}: {error}"
        ) from None


def _spec_from_args(args: argparse.Namespace, protocol: str) -> ScenarioSpec:
    faults = FaultSpec.with_straggler(instance=1) if args.straggler else FaultSpec.none()
    return ScenarioSpec(
        protocol=protocol,
        num_replicas=args.replicas,
        environment=args.environment,
        duration=args.duration,
        warmup=args.warmup,
        samples_per_block=6,
        seed=args.seed,
        workload_seed=_CLI_WORKLOAD_SEED,
        payment_fraction=getattr(args, "payment_fraction", None),
        zipf_s=getattr(args, "zipf_s", None),
        faults=faults,
        backend=getattr(args, "backend", "sim"),
    )


def _command_run(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    result = engine.run_one(_spec_from_args(args, args.protocol))
    metrics = result.metrics
    if args.csv:
        print(export_csv({args.protocol: metrics}), end="")
        return 0
    print(summarize({args.protocol: metrics}))
    print("stage breakdown:")
    for stage, seconds in metrics.stage_breakdown.items():
        print(f"  {stage:<18} {seconds:7.3f} s")
    spark = throughput_sparkline(metrics)
    if spark:
        print(f"throughput over time: [{spark}]")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    args.payment_fraction = 0.46
    engine = _engine_from_args(args)
    specs = [_spec_from_args(args, protocol) for protocol in PROTOCOL_NAMES]
    results = results_by_protocol(engine.run(specs))
    print(summarize(results))
    print()
    for comparison in compare_latency(results, "orthrus"):
        print(
            f"orthrus vs {comparison.reference:<8} "
            f"latency reduction {comparison.latency_reduction_percent:6.1f} %   "
            f"throughput ratio {comparison.throughput_ratio:5.2f}x"
        )
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    if args.name == "fig3":
        for stragglers in (0, 1):
            points = scalability_sweep(
                "wan", stragglers=stragglers, scale=args.scale, engine=engine
            )
            print(scalability_table(points))
            print()
    elif args.name == "fig4":
        for stragglers in (0, 1):
            points = scalability_sweep(
                "lan", stragglers=stragglers, scale=args.scale, engine=engine
            )
            print(scalability_table(points))
            print()
    elif args.name == "fig5":
        for stragglers in (0, 1):
            print(
                proportion_table(
                    payment_proportion_sweep(
                        stragglers=stragglers, scale=args.scale, engine=engine
                    )
                )
            )
            print()
    elif args.name == "fig6":
        print(breakdown_table(latency_breakdown(scale=args.scale, engine=engine)))
    elif args.name == "fig7":
        print(
            fault_timeline_table(
                detectable_fault_timelines(scale=args.scale, engine=engine)
            )
        )
    elif args.name == "fig8":
        print(undetectable_table(undetectable_fault_sweep(scale=args.scale, engine=engine)))
    return 0


def _command_grid(args: argparse.Namespace) -> int:
    if args.list or args.name is None:
        for name in grid_names():
            print(f"{name:<10} {grid(name).description}")
        if args.name is None and not args.list:
            print("\nerror: grid name required (or use --list)", file=sys.stderr)
            return 2
        return 0
    engine = _engine_from_args(args)
    try:
        specs = expand_grid(args.name, scale=args.scale)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = engine.run(specs)
    summary = f"# grid {args.name} [{args.scale}] — {engine_summary(engine)}"
    if args.csv:
        print(export_results_csv(results), end="")
        print(summary, file=sys.stderr)
    else:
        print(grid_table(results))
        print(summary)
    return 0


def _parse_peers(text: str) -> list[tuple[str, int]]:
    from repro.runtime.config import parse_endpoint

    # ConfigurationError propagates to main()'s ReproError handler (exit 2),
    # the same path every other bad-configuration error takes.
    return [parse_endpoint(entry.strip()) for entry in text.split(",") if entry.strip()]


def _command_serve(args: argparse.Namespace) -> int:
    from repro.obs.logging import setup_logging
    from repro.runtime.config import ReplicaRuntimeConfig
    from repro.runtime.server import run_server
    from repro.runtime.transport import install_uvloop

    setup_logging(
        args.log_level,
        args.log_format,
        context={"replica": args.replica_id},
    )
    peers = _parse_peers(args.peers)
    config = ReplicaRuntimeConfig(
        replica_id=args.replica_id,
        peers=tuple(peers),
        protocol=args.protocol,
        num_instances=args.instances,
        batch_size=args.batch_size,
        batch_interval=args.batch_interval,
        epoch_length=args.epoch_length,
        view_change_timeout=args.view_change_timeout,
        workload=WorkloadConfig(
            num_accounts=args.accounts,
            seed=args.workload_seed,
            zipf_exponent=args.zipf_s,
        ),
        send_delay=args.send_delay,
        wan=args.wan,
        byzantine_abstain=args.byzantine_abstain,
        wire_version=args.wire_version,
        workers=args.workers,
        obs_enabled=not args.no_obs,
        trace_file=args.trace_file,
        trace_sample=args.trace_sample,
        metrics_file=args.metrics_file,
        metrics_interval=args.metrics_interval,
        log_level=args.log_level,
        log_format=args.log_format,
        run_dir=args.run_dir,
        recovery=args.recovery,
        snapshot_every_epochs=args.snapshot_every_epochs,
    )
    install_uvloop()
    asyncio.run(run_server(config))
    return 0


def _print_cluster_statuses(statuses) -> None:
    digests = {status.state_digest for status in statuses}
    for status in sorted(statuses, key=lambda s: s.replica):
        print(
            f"replica {status.replica}: committed={status.committed} "
            f"rejected={status.rejected} view_changes={status.view_changes} "
            f"digest={status.state_digest[:16]}..."
        )
    agreement = "yes" if len(digests) <= 1 else "NO — replicas diverged!"
    print(f"state digests agree: {agreement}")


def _command_cluster(args: argparse.Namespace) -> int:
    import time as _time

    from repro.cluster.faults import FaultPlan
    from repro.runtime.chaos import ChaosController, fault_plan_from_json
    from repro.runtime.client import ClientConfig, OrthrusClient
    from repro.runtime.cluster import ClusterSpec, LocalCluster
    from repro.runtime.config import format_endpoint

    if args.fault_plan is not None:
        faults = fault_plan_from_json(
            args.fault_plan, default_view_change_timeout=args.view_change_timeout
        )
    else:
        faults = FaultPlan.none()
        faults.view_change_timeout = args.view_change_timeout
    if args.wan is not None:
        faults.wan = args.wan
    spec = ClusterSpec(
        num_replicas=args.replicas,
        num_instances=args.instances,
        protocol=args.protocol,
        base_port=args.base_port,
        batch_size=args.batch_size,
        batch_interval=args.batch_interval,
        epoch_length=args.epoch_length,
        view_change_timeout=faults.view_change_timeout,
        workload=WorkloadConfig(
            num_accounts=args.accounts,
            seed=args.workload_seed,
            zipf_exponent=args.zipf_s,
        ),
        faults=faults,
        wire_version=args.wire_version,
        transport=args.transport,
        workers=args.workers,
        obs_enabled=not args.no_obs,
        run_dir=args.run_dir,
        durability=args.durability,
        snapshot_every_epochs=args.snapshot_every_epochs,
        trace_sample=args.trace_sample,
        metrics_interval=args.metrics_interval,
        log_level=args.log_level,
        log_format=args.log_format,
    )
    cluster = LocalCluster(spec)
    cluster.start()
    controller = ChaosController(cluster, faults)
    peers = ",".join(format_endpoint(endpoint) for endpoint in cluster.endpoints)
    print(f"cluster up: {args.replicas} replicas, {spec.num_instances or args.replicas} instances")
    print(f"peers: {peers}")
    if cluster.run_dir is not None:
        print(f"run dir: {cluster.run_dir}")
        if spec.trace_sample > 0:
            print(
                f"loadgen: repro loadgen --peers {peers} "
                f"--trace-file {cluster.run_dir / 'client' / 'trace.jsonl'} "
                f"--trace-sample {spec.trace_sample}"
            )
            print(f"trace:   repro trace <tx-id> --dir {cluster.run_dir}")
    else:
        print(f"loadgen: repro loadgen --peers {peers} --transactions 1000")

    async def final_status():
        client = OrthrusClient(list(cluster.endpoints), ClientConfig(client_id=999))
        # Chaos-crashed replicas may be unreachable; probe the survivors.
        await client.connect(require_all=not controller.down)
        try:
            statuses = await client.cluster_status()
            await client.shutdown_cluster("cluster supervisor shutdown")
            return statuses
        finally:
            await client.close()

    exit_code = 0
    started = _time.monotonic()
    try:
        deadline = None if args.duration is None else started + args.duration
        while deadline is None or _time.monotonic() < deadline:
            # Event-driven supervision: wakes immediately when a child exits
            # instead of discovering it on the next poll tick.
            cluster.wait_for_exit(0.25)
            for event in controller.poll(_time.monotonic() - started):
                print(f"chaos: {event.describe()} @ {event.at:.2f}s")
            dead = controller.unexpected_exits()
            if dead:
                print(f"error: replicas exited unexpectedly: {dead}", file=sys.stderr)
                exit_code = 1
                break
        if exit_code == 0:
            # A scheduled fault that never fired means the run did not cover
            # the requested plan — that is a failed measurement, not a note.
            for at, action, target in controller.unfired_actions():
                print(
                    f"error: {action} ({target}) scheduled at {at:.2f}s "
                    f"never fired — extend --duration to cover the plan",
                    file=sys.stderr,
                )
                exit_code = 1
    except KeyboardInterrupt:
        print("\ninterrupted — shutting down cluster")
    if exit_code == 0:
        try:
            _print_cluster_statuses(asyncio.run(final_status()))
        except Exception as error:  # noqa: BLE001 - shutdown is best-effort
            print(f"warning: could not collect final statuses: {error}", file=sys.stderr)
    cluster.stop()
    return exit_code


def _parse_fault_pairs(entries: list[str], flag: str) -> dict[int, float]:
    pairs: dict[int, float] = {}
    for entry in entries:
        replica_text, separator, value_text = entry.partition(":")
        if not separator:
            raise ConfigurationError(
                f"--{flag} expects REPLICA:VALUE, got {entry!r}"
            )
        try:
            pairs[int(replica_text)] = float(value_text)
        except ValueError:
            raise ConfigurationError(
                f"--{flag} expects numeric REPLICA:VALUE, got {entry!r}"
            ) from None
    return pairs


def _parse_churn(entries: list[str]) -> tuple[tuple[float, int, float], ...]:
    cycles: list[tuple[float, int, float]] = []
    for entry in entries:
        parts = entry.split(":")
        if len(parts) != 3:
            raise ConfigurationError(
                f"--churn expects AT:REPLICA:DOWNTIME, got {entry!r}"
            )
        try:
            cycles.append((float(parts[0]), int(parts[1]), float(parts[2])))
        except ValueError:
            raise ConfigurationError(
                f"--churn expects numeric AT:REPLICA:DOWNTIME, got {entry!r}"
            ) from None
    return tuple(cycles)


def _parse_partitions(
    entries: list[str],
) -> tuple[tuple[float, tuple[tuple[int, ...], ...], float], ...]:
    rules: list[tuple[float, tuple[tuple[int, ...], ...], float]] = []
    for entry in entries:
        parts = entry.split(":", 2)
        if len(parts) != 3:
            raise ConfigurationError(
                f"--partition expects AT:DURATION:GROUPS, got {entry!r}"
            )
        at_text, duration_text, groups_text = parts
        try:
            at_time = float(at_text)
            duration = float(duration_text)
            groups = tuple(
                tuple(int(r) for r in group.split(",") if r.strip())
                for group in groups_text.split("|")
            )
        except ValueError:
            raise ConfigurationError(
                f"--partition expects numeric AT:DURATION:GROUPS "
                f"(groups like '3' or '0,1|2,3'), got {entry!r}"
            ) from None
        if not groups or any(not group for group in groups):
            raise ConfigurationError(
                f"--partition needs at least one non-empty group, got {entry!r}"
            )
        rules.append((at_time, groups, duration))
    return tuple(rules)


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.cluster.faults import FaultPlan
    from repro.runtime.chaos import (
        fault_plan_from_json,
        run_chaos,
        validate_fault_plan,
    )
    from repro.runtime.client import ClientConfig
    from repro.runtime.cluster import ClusterSpec
    from repro.runtime.loadgen import LoadGenConfig

    if args.fault_plan is not None:
        plan = fault_plan_from_json(
            args.fault_plan, default_view_change_timeout=args.view_change_timeout
        )
    else:
        plan = FaultPlan(
            stragglers=_parse_fault_pairs(args.straggle, "straggle"),
            crashes=_parse_fault_pairs(args.crash, "crash"),
            restarts=_parse_fault_pairs(args.restart, "restart"),
            churn=_parse_churn(args.churn),
            partitions=_parse_partitions(args.partition),
            wan=args.wan,
            expect_stall=args.expect_stall,
            view_change_timeout=args.view_change_timeout,
            undetectable_faults=args.byzantine,
        )
    validate_fault_plan(plan, args.replicas)
    spec = ClusterSpec(
        num_replicas=args.replicas,
        num_instances=args.instances,
        protocol=args.protocol,
        base_port=args.base_port,
        batch_size=args.batch_size,
        batch_interval=args.batch_interval,
        view_change_timeout=plan.view_change_timeout,
        workload=WorkloadConfig(
            num_accounts=args.accounts,
            seed=args.workload_seed,
            zipf_exponent=args.zipf_s,
        ),
        faults=plan,
        wire_version=args.wire_version,
        transport=args.transport,
        workers=args.workers,
        obs_enabled=not args.no_obs,
        run_dir=args.run_dir,
        durability=args.durability,
        snapshot_every_epochs=args.snapshot_every_epochs,
        trace_sample=args.trace_sample,
        metrics_interval=args.metrics_interval,
        log_level=args.log_level,
        log_format=args.log_format,
    )
    # Submissions routed through a crashed leader's instance must outlive the
    # view change, so the client's patience scales with the detector timeout.
    timeout = (
        args.client_timeout
        if args.client_timeout is not None
        else max(5.0, plan.view_change_timeout + 3.0)
    )
    load = LoadGenConfig(
        transactions=args.transactions,
        mode=args.mode,
        concurrency=args.concurrency,
        rate_tps=args.rate,
        workload=WorkloadConfig(
            num_accounts=args.accounts,
            seed=args.workload_seed,
            payment_fraction=args.payment_fraction,
            zipf_exponent=args.zipf_s,
        ),
        client=ClientConfig(
            client_id=1000,
            timeout=timeout,
            retries=3,
            wire_version=args.wire_version,
        ),
    )
    print(
        f"# chaos [{plan_summary(plan)}] — {args.replicas} replicas, "
        f"{spec.num_instances or args.replicas} instances, "
        f"{args.transactions} tx ({args.mode})"
    )
    result = asyncio.run(run_chaos(spec, load))
    for line in result.lines():
        print(line)
    return 0 if result.ok else 1


def plan_summary(plan) -> str:
    """One-line description of a fault plan for headers and logs."""
    parts = []
    if plan.stragglers:
        parts.append(
            "straggle " + ",".join(f"{r}x{s:g}" for r, s in sorted(plan.stragglers.items()))
        )
    if plan.crashes:
        parts.append(
            "crash " + ",".join(f"{r}@{t:g}s" for r, t in sorted(plan.crashes.items()))
        )
    if plan.restarts:
        parts.append(
            "restart " + ",".join(f"{r}@{t:g}s" for r, t in sorted(plan.restarts.items()))
        )
    if plan.churn:
        parts.append(
            "churn "
            + ",".join(
                f"{replica}@{at:g}s+{downtime:g}s"
                for at, replica, downtime in sorted(plan.churn)
            )
        )
    if plan.partitions:
        parts.append(
            "partition "
            + ",".join(
                "|".join("{" + ",".join(map(str, group)) + "}" for group in groups)
                + f"@{at:g}s+{duration:g}s"
                for at, groups, duration in plan.partitions
            )
        )
    if plan.oneway_drops:
        parts.append(
            "drop "
            + ",".join(
                f"{source}->{destination}@{at:g}s+{duration:g}s"
                for at, source, destination, duration in plan.oneway_drops
            )
        )
    if plan.wan is not None:
        parts.append(
            f"wan {plan.wan}" if isinstance(plan.wan, str) else "wan matrix"
        )
    if plan.undetectable_faults:
        parts.append(f"byzantine x{plan.undetectable_faults}")
    return "; ".join(parts) if parts else "no faults"


def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.runtime.client import ClientConfig
    from repro.runtime.loadgen import LoadGenConfig, run_loadgen
    from repro.runtime.transport import install_uvloop

    peers = _parse_peers(args.peers)
    config = LoadGenConfig(
        transactions=args.transactions,
        mode=args.mode,
        concurrency=args.concurrency,
        rate_tps=args.rate,
        workload=WorkloadConfig(
            num_accounts=args.accounts,
            seed=args.workload_seed,
            payment_fraction=args.payment_fraction,
            zipf_exponent=args.zipf_s,
        ),
        client=ClientConfig(
            client_id=args.client_id,
            timeout=args.timeout,
            wire_version=args.wire_version,
            route_instances=args.route_instances,
        ),
        trace_file=args.trace_file,
        trace_sample=args.trace_sample,
    )
    install_uvloop()
    report = asyncio.run(run_loadgen(peers, config))
    print(f"# loadgen [{args.mode}] against {len(peers)} replicas")
    for line in report.lines():
        print(line)
    return 0 if report.failed == 0 and report.digests_agree else 1


def _human_bytes(value: float) -> str:
    """Render a byte count with a binary suffix (metrics tables)."""
    amount = float(value)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if amount < 1024 or suffix == "GiB":
            return f"{amount:.0f}{suffix}" if suffix == "B" else f"{amount:.1f}{suffix}"
        amount /= 1024
    return f"{amount:.1f}GiB"  # pragma: no cover - unreachable


def _command_top(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table
    from repro.runtime.client import ClientConfig, ClientError, OrthrusClient
    from repro.runtime.transport import install_uvloop

    peers = _parse_peers(args.peers)

    async def watch() -> int:
        client = OrthrusClient(
            peers,
            ClientConfig(client_id=args.client_id, wire_version=args.wire_version),
        )
        await client.connect(require_all=False)
        iteration = 0
        try:
            while args.iterations is None or iteration < args.iterations:
                if iteration:
                    await asyncio.sleep(args.interval)
                iteration += 1
                try:
                    statuses = {s.replica: s for s in await client.cluster_status()}
                except ClientError as error:
                    print(f"warning: {error}", file=sys.stderr)
                    continue
                metric_replies = {}
                try:
                    metric_replies = {
                        m.replica: m for m in await client.cluster_metrics()
                    }
                except ClientError:
                    # Metrics disabled (--no-obs) or no answers: the status
                    # columns still render.
                    pass
                rows = []
                for replica_id in sorted(statuses):
                    status = statuses[replica_id]
                    reply = metric_replies.get(replica_id)
                    values = reply.metrics if reply is not None else {}
                    rows.append(
                        (
                            replica_id,
                            f"{reply.uptime:.0f}s" if reply is not None else "-",
                            status.committed,
                            status.rejected,
                            status.view_changes,
                            int(values.get("consensus.global_pending", 0)),
                            int(values.get("transport.queue_depth", 0)),
                            _human_bytes(values.get("transport.bytes_in", 0.0)),
                            _human_bytes(values.get("transport.bytes_out", 0.0)),
                            int(values.get("replica.reply_cache_size", 0)),
                        )
                    )
                print(f"# refresh {iteration}: {len(statuses)} replicas answering")
                print(
                    format_table(
                        [
                            "replica",
                            "up",
                            "committed",
                            "rejected",
                            "views",
                            "pending",
                            "queue",
                            "bytes in",
                            "bytes out",
                            "reply cache",
                        ],
                        rows,
                    )
                )
        finally:
            await client.close()
        return 0

    install_uvloop()
    return asyncio.run(watch())


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import load_trace_events, stitch, trace_tx_ids

    events = load_trace_events(args.dir)
    if not events:
        print(f"error: no trace events under {args.dir}", file=sys.stderr)
        return 2
    if args.tx_id is None:
        tx_ids = trace_tx_ids(events)
        print(f"# {len(tx_ids)} traced transactions under {args.dir}")
        for tx_id in tx_ids[:50]:
            print(tx_id)
        if len(tx_ids) > 50:
            print(f"# ... and {len(tx_ids) - 50} more")
        return 0
    try:
        stitched = stitch(events, args.tx_id)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if stitched is None:
        print(
            f"error: no events for tx {args.tx_id!r} under {args.dir}",
            file=sys.stderr,
        )
        return 2
    for line in stitched.lines():
        print(line)
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.bench import check_regressions, load_report, run_suite, write_report
    from repro.bench.report import build_report, format_results

    # Validate every input file before running the suite: benchmarks take
    # minutes (the full suite spawns a live cluster), and a typo'd path must
    # not discard that work with a traceback at the end.
    baselines = None
    committed = None
    try:
        if args.baselines is not None:
            with open(args.baselines, "r", encoding="utf-8") as handle:
                baselines = _json.load(handle)
        if args.check is not None:
            committed = load_report(args.check)
        if args.output is not None:
            directory = os.path.dirname(os.path.abspath(args.output))
            if not os.path.isdir(directory):
                raise OSError(f"output directory {directory!r} does not exist")
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    results = run_suite(args.suite, progress=lambda name: print(f"# {name} ..."))
    print(format_results(results))
    if args.output is not None:
        report = build_report(results, pr=args.pr, suite=args.suite, baselines=baselines)
        write_report(report, args.output)
        print(f"# wrote {args.output}")
    if committed is not None:
        failures = check_regressions(results, committed, tolerance=args.tolerance)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"# no regressions vs {args.check} (tolerance {args.tolerance:.0%})")
    return 0


def _command_workload(args: argparse.Namespace) -> int:
    config = WorkloadConfig(
        num_accounts=args.accounts,
        num_transactions=args.transactions,
        payment_fraction=args.payment_fraction,
        zipf_exponent=args.zipf_s,
        seed=args.seed,
    )
    trace = EthereumStyleWorkload(config).generate()
    stats = trace.statistics
    print(f"transactions            : {stats.total}")
    print(f"payments                : {stats.payments} ({stats.payment_fraction * 100:.1f} %)")
    print(f"contract calls          : {stats.contracts}")
    print(f"multi-payer payments    : {stats.multi_payer_payments}")
    print(f"multi-caller contracts  : {stats.multi_caller_contracts}")
    print(f"distinct active accounts: {stats.unique_accounts}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "figure": _command_figure,
        "grid": _command_grid,
        "workload": _command_workload,
        "bench": _command_bench,
        "serve": _command_serve,
        "cluster": _command_cluster,
        "chaos": _command_chaos,
        "loadgen": _command_loadgen,
        "top": _command_top,
        "trace": _command_trace,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # Long grid/loadgen/serve runs are routinely cut short; exit quietly
        # with the conventional SIGINT code instead of spewing a traceback.
        print("\ninterrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output piped into `head`/`less` that closed early (listing traced
        # tx ids is the common case); swallow the shutdown-flush error too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the shell convention
    except ReproError as error:
        # Library-level configuration/runtime errors (bad peer lists, replica
        # counts, workload ranges, ...) are user errors, not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
