"""Analysis helpers for comparing experiment runs.

These utilities post-process :class:`~repro.metrics.summary.RunMetrics`
objects into the derived quantities the paper reports (relative latency
reductions, throughput ratios, straggler sensitivity) and export results for
external tooling (CSV) or quick terminal inspection (ASCII sparklines).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.metrics.summary import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.experiments.engine import RunResult

#: Characters used for ASCII sparklines, from lowest to highest.
_SPARK_LEVELS = " .:-=+*#%@"


@dataclass(frozen=True)
class ProtocolComparison:
    """Derived comparison of one protocol against a reference protocol."""

    protocol: str
    reference: str
    throughput_ratio: float
    latency_reduction: float

    @property
    def latency_reduction_percent(self) -> float:
        """Latency reduction in percent (positive = protocol is faster)."""
        return self.latency_reduction * 100.0


def compare_latency(
    results: Mapping[str, RunMetrics], protocol: str = "orthrus"
) -> list[ProtocolComparison]:
    """Compare ``protocol`` against every other protocol in ``results``.

    ``latency_reduction`` follows the paper's convention: the fraction by
    which ``protocol``'s mean latency is below the reference's.
    """
    if protocol not in results:
        raise KeyError(f"{protocol!r} missing from results")
    subject = results[protocol]
    comparisons: list[ProtocolComparison] = []
    for name, metrics in results.items():
        if name == protocol:
            continue
        reference_latency = metrics.latency.mean or metrics.confirmation_latency.mean
        subject_latency = subject.latency.mean or subject.confirmation_latency.mean
        reduction = 0.0
        if reference_latency > 0:
            reduction = 1.0 - subject_latency / reference_latency
        ratio = 0.0
        if metrics.throughput_tps > 0:
            ratio = subject.throughput_tps / metrics.throughput_tps
        comparisons.append(
            ProtocolComparison(
                protocol=protocol,
                reference=name,
                throughput_ratio=ratio,
                latency_reduction=reduction,
            )
        )
    return comparisons


def straggler_sensitivity(clean: RunMetrics, degraded: RunMetrics) -> float:
    """Fractional throughput drop caused by the straggler (paper Sec. VII-B)."""
    if clean.throughput_tps <= 0:
        return 0.0
    return max(0.0, 1.0 - degraded.throughput_tps / clean.throughput_tps)


def partial_path_share(metrics: RunMetrics) -> float:
    """Fraction of confirmations that bypassed global ordering."""
    total = metrics.partial_path + metrics.global_path
    return metrics.partial_path / total if total else 0.0


# -- export -----------------------------------------------------------------------


def metrics_to_row(label: str, metrics: RunMetrics) -> dict[str, float | str]:
    """Flatten a :class:`RunMetrics` into a CSV-friendly row."""
    row: dict[str, float | str] = {
        "label": label,
        "throughput_tps": metrics.throughput_tps,
        "throughput_ktps": metrics.throughput_ktps,
        "latency_mean_s": metrics.latency.mean,
        "latency_p95_s": metrics.latency.p95,
        "confirmation_latency_mean_s": metrics.confirmation_latency.mean,
        "confirmed": metrics.confirmed,
        "committed": metrics.committed,
        "rejected": metrics.rejected,
        "partial_path": metrics.partial_path,
        "global_path": metrics.global_path,
        "duration_s": metrics.duration,
    }
    for stage, seconds in metrics.stage_breakdown.items():
        row[f"stage_{stage}_s"] = seconds
    return row


def _rows_to_csv(rows: list[dict[str, float | str]]) -> str:
    if not rows:
        return ""
    fieldnames = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def export_csv(results: Mapping[str, RunMetrics]) -> str:
    """Render a mapping of labelled runs as CSV text."""
    return _rows_to_csv(
        [metrics_to_row(label, metrics) for label, metrics in results.items()]
    )


def result_to_row(result: "RunResult") -> dict[str, float | str]:
    """Flatten one engine result record: spec coordinates plus metrics."""
    spec = result.spec
    row: dict[str, float | str] = {
        "spec_hash": spec.spec_hash[:12],
        "protocol": spec.protocol,
        "num_replicas": spec.num_replicas,
        "environment": spec.environment,
        "stragglers": spec.faults.straggler_count,
        "crashes": spec.faults.crash_count,
        "undetectable_faults": spec.faults.undetectable_faults,
        "payment_fraction": spec.payment_fraction,
        "seed": spec.seed,
        "cached": int(result.cached),
    }
    metrics_row = metrics_to_row(spec.label(), result.metrics)
    metrics_row.pop("label")
    row.update(metrics_row)
    return row


def export_results_csv(results: "Sequence[RunResult]") -> str:
    """Render engine result records as CSV text (one row per grid cell)."""
    return _rows_to_csv([result_to_row(result) for result in results])


def results_by_protocol(results: "Sequence[RunResult]") -> dict[str, RunMetrics]:
    """Index engine result records by protocol (one cell per protocol).

    Raises:
        ValueError: If two cells share a protocol — the comparison would be
            ambiguous.
    """
    indexed: dict[str, RunMetrics] = {}
    for result in results:
        if result.spec.protocol in indexed:
            raise ValueError(
                f"duplicate protocol {result.spec.protocol!r} in results"
            )
        indexed[result.spec.protocol] = result.metrics
    return indexed


# -- terminal visualisation ----------------------------------------------------------


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a sequence of values as an ASCII sparkline.

    Used by the CLI and examples to show throughput-over-time series (Fig. 7)
    without any plotting dependency.
    """
    if not values:
        return ""
    selected = list(values)
    if width is not None and width > 0 and len(selected) > width:
        stride = len(selected) / width
        selected = [selected[int(i * stride)] for i in range(width)]
    top = max(selected)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(selected)
    scale = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[min(scale, int(round(value / top * scale)))] for value in selected
    )


def throughput_sparkline(metrics: RunMetrics, width: int = 60) -> str:
    """Sparkline of a run's windowed throughput series."""
    return sparkline([point.rate for point in metrics.series], width=width)


def latency_sparkline(metrics: RunMetrics, width: int = 60) -> str:
    """Sparkline of a run's windowed confirmation-latency series."""
    return sparkline([value for _, value in metrics.latency_series], width=width)


def summarize(results: Mapping[str, RunMetrics]) -> str:
    """Multi-line human-readable summary of labelled runs."""
    lines = []
    for label, metrics in results.items():
        lines.append(
            f"{label:<18} {metrics.throughput_ktps:8.1f} ktps  "
            f"{metrics.latency.mean:7.2f} s mean  "
            f"{metrics.latency.p95:7.2f} s p95  "
            f"partial {partial_path_share(metrics) * 100:5.1f}%"
        )
    return "\n".join(lines)
