"""Post-processing and comparison utilities for experiment results."""

from repro.analysis.comparison import (
    ProtocolComparison,
    compare_latency,
    export_csv,
    latency_sparkline,
    metrics_to_row,
    partial_path_share,
    sparkline,
    straggler_sensitivity,
    summarize,
    throughput_sparkline,
)

__all__ = [
    "ProtocolComparison",
    "compare_latency",
    "export_csv",
    "latency_sparkline",
    "metrics_to_row",
    "partial_path_share",
    "sparkline",
    "straggler_sensitivity",
    "summarize",
    "throughput_sparkline",
]
