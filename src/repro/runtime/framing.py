"""Length-prefixed frame I/O for the live transport.

Frames are ``<4-byte big-endian length><payload bytes>``.  The length covers
the payload only.  A hard ceiling protects peers from hostile or corrupted
length prefixes; at 500-byte transactions even a 4096-transaction block stays
far below it.
"""

from __future__ import annotations

import asyncio
import struct

from repro.errors import NetworkError

#: Maximum accepted frame payload (bytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(NetworkError):
    """A frame violated the length-prefix protocol."""


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; returns ``None`` on clean EOF before a frame starts."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc


async def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Write one frame and drain the transport buffer."""
    writer.write(encode_frame(payload))
    await writer.drain()
