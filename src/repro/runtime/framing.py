"""Length-prefixed frame I/O for the live transport.

Frames are ``<4-byte big-endian length><payload bytes>``.  The length covers
the payload only.  A hard ceiling protects peers from hostile or corrupted
length prefixes; at 500-byte transactions even a 4096-transaction block stays
far below it.

Two batching constructs sit on top of the basic frame:

* :class:`FrameReader` — a buffered reader that parses every complete frame
  out of each socket read, so a burst of small frames costs one ``await``
  instead of two ``readexactly`` awaits per frame;
* *super-frames* (wire v3) — one frame whose payload packs many envelopes
  (``0xB3 magic, u32 count, then count × <u32 length><envelope>``).  The
  envelope bytes inside are ordinary v1/v2 envelopes, so batching lives
  entirely at the framing layer and the codec is untouched.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Sequence

from repro.errors import NetworkError

#: Maximum accepted frame payload (bytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: First payload byte of a super-frame.  Distinct from the v2 envelope magic
#: (``0xB2``) and from ``{`` (0x7B), the first byte of every v1 envelope, so
#: a decoder can sniff the payload kind from one byte.
SUPER_FRAME_MAGIC = 0xB3

_SUPER_HEADER = struct.Struct(">BI")


class FrameError(NetworkError):
    """A frame violated the length-prefix protocol."""


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; returns ``None`` on clean EOF before a frame starts."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc


async def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Write one frame and drain the transport buffer."""
    writer.write(encode_frame(payload))
    await writer.drain()


class FrameReader:
    """Buffered frame reader over an :class:`asyncio.StreamReader`.

    ``read_frame`` parses frames one ``readexactly`` pair at a time — two
    scheduler round-trips per frame, which dominates the receive path under
    load.  ``FrameReader`` instead reads the socket in large chunks and
    slices every complete frame out of its buffer, so all the frames that
    arrived together (one TCP segment, or a backlog the kernel already
    buffered) surface from a single ``await``.
    """

    __slots__ = ("_reader", "_buffer", "_eof")

    #: Bytes requested per socket read.
    CHUNK_BYTES = 256 * 1024

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._buffer = bytearray()
        self._eof = False

    async def read_batch(self) -> list[bytes] | None:
        """Return every complete frame available, reading at least one.

        Returns ``None`` on clean EOF (connection closed on a frame
        boundary); raises :class:`FrameError` if the peer vanished
        mid-frame.
        """
        frames = self._split_buffer()
        while not frames:
            if self._eof:
                return self._finish_eof()
            chunk = await self._reader.read(self.CHUNK_BYTES)
            if not chunk:
                self._eof = True
                return self._finish_eof()
            self._buffer.extend(chunk)
            frames = self._split_buffer()
        return frames

    def _finish_eof(self) -> None:
        if self._buffer:
            raise FrameError("connection closed mid-frame")
        return None

    def _split_buffer(self) -> list[bytes]:
        buffer = self._buffer
        available = len(buffer)
        frames: list[bytes] = []
        offset = 0
        while available - offset >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(buffer, offset)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})"
                )
            end = offset + _LENGTH.size + length
            if end > available:
                break
            frames.append(bytes(buffer[offset + _LENGTH.size : end]))
            offset = end
        if offset:
            del buffer[:offset]
        return frames


# -- super-frames (wire v3) ---------------------------------------------------


def encode_super_frame(envelopes: Sequence[bytes]) -> bytes:
    """Pack ``envelopes`` into one super-frame payload.

    The envelope bytes are carried verbatim — a super-frame of one envelope
    and the envelope itself decode to the same message, and peers that split
    a super-frame see exactly the bytes a sequential sender would have put in
    individual frames.
    """
    out = [_SUPER_HEADER.pack(SUPER_FRAME_MAGIC, len(envelopes))]
    for envelope in envelopes:
        out.append(_LENGTH.pack(len(envelope)))
        out.append(envelope)
    return b"".join(out)


def is_super_frame(payload: bytes) -> bool:
    """Whether a frame payload is a super-frame (vs a single envelope)."""
    return bool(payload) and payload[0] == SUPER_FRAME_MAGIC


def split_super_frame(payload: bytes) -> list[bytes]:
    """Unpack a super-frame payload into its envelope byte strings."""
    if not is_super_frame(payload):
        raise FrameError("payload is not a super-frame")
    try:
        _, count = _SUPER_HEADER.unpack_from(payload, 0)
    except struct.error as exc:
        raise FrameError(f"truncated super-frame header: {exc}") from exc
    offset = _SUPER_HEADER.size
    # Each envelope needs at least its 4-byte length prefix.
    if offset + count * _LENGTH.size > len(payload):
        raise FrameError(f"super-frame count {count} exceeds its payload")
    envelopes: list[bytes] = []
    for _ in range(count):
        (length,) = _LENGTH.unpack_from(payload, offset)
        offset += _LENGTH.size
        end = offset + length
        if end > len(payload):
            raise FrameError("super-frame truncated mid-envelope")
        envelopes.append(payload[offset:end])
        offset = end
    if offset != len(payload):
        raise FrameError(f"super-frame has {len(payload) - offset} trailing bytes")
    return envelopes
