"""Crypto/codec worker-process pool for the live runtime.

Replica event loops are single-threaded; under load the CPU they burn on
wire decoding, digest computation and signature checks is CPU *not* spent
running the consensus state machine.  :class:`WorkerPool` moves that work
into a small :class:`~concurrent.futures.ProcessPoolExecutor`, with a
batch-oriented API — one submit carries many items, one result returns them
all — so the per-job IPC overhead amortises across a burst.

Offloading only pays when there are spare cores and the batches are big
enough to beat the pickle round-trip.  :class:`InlineWorkers` is the
same-process fallback with the identical async API: small clusters (and
single-core hosts) configure ``workers=0`` and every call runs inline on the
event loop.  ``make_worker_pool`` picks between the two, so callers never
branch.

The batch functions are module-level and operate on plain picklable values,
which makes them equally callable in-process — property tests assert the
pool and the inline path produce identical results.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from repro.crypto.digest import canonical_bytes, sha256_hex
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import Signature, verify
from repro.runtime.codec import WireCodecError, decode_envelope, encode_envelope
from repro.runtime.framing import FrameError, is_super_frame, split_super_frame

#: Inbound batches below this byte size are decoded inline even when a pool
#: is configured: the pickle round-trip would cost more than the decode.
OFFLOAD_MIN_BYTES = 4096


def _init_worker() -> None:
    # Wire-type registration happens at import time; the control-plane types
    # live outside the codec module, so a fresh worker process must import
    # them before it can decode a status or hello frame.
    import repro.runtime.control  # noqa: F401


# -- batch functions (run in workers or inline; pure, picklable I/O) ----------


def decode_payloads(
    payloads: Sequence[bytes], *, warm_digests: bool = False
) -> list[tuple[int, Any] | WireCodecError]:
    """Decode frame payloads (splitting super-frames) to (sender, message).

    Undecodable entries become the :class:`WireCodecError` itself, so one
    corrupt frame cannot poison the rest of its batch.  With
    ``warm_digests=True`` every decoded block's digest memo is populated
    before the batch is returned — when this runs in a worker process the
    memo travels back through the pickle, and the event loop never pays for
    the hash.
    """
    out: list[tuple[int, Any] | WireCodecError] = []
    for payload in payloads:
        try:
            if is_super_frame(payload):
                for envelope in split_super_frame(payload):
                    out.append(decode_envelope(envelope))
            else:
                out.append(decode_envelope(payload))
        except (WireCodecError, FrameError) as exc:
            out.append(WireCodecError(str(exc)))
    if warm_digests:
        for entry in out:
            if not isinstance(entry, tuple):
                continue
            _warm_digests(entry[1])
    return out


def _warm_digests(message: Any) -> None:
    """Populate the digest memo of any block the message carries.

    ``Block.digest`` is a memoizing property — reading it once stores the
    hash on the instance, and the memo travels with the block through the
    pickle back to the event loop.
    """
    block = getattr(message, "block", None)
    if block is not None:
        _ = block.digest
    for attribute in ("pending", "reproposals"):
        pairs = getattr(message, attribute, None)
        if pairs:
            for _, block in pairs:
                _ = block.digest


def encode_envelopes(jobs: Sequence[tuple[int, Any, int]]) -> list[bytes]:
    """Encode ``(sender, message, version)`` jobs into envelope bytes."""
    return [
        encode_envelope(sender, message, version=version)
        for sender, message, version in jobs
    ]


def digest_batch(values: Sequence[Any]) -> list[str]:
    """Content digests of ``values`` (same function consensus uses)."""
    return [sha256_hex(canonical_bytes(value)) for value in values]


def verify_batch(
    pki: PublicKeyInfrastructure,
    pairs: Sequence[tuple[Signature, Any]],
) -> list[bool]:
    """Verify ``(signature, message)`` pairs against ``pki``."""
    return [verify(pki, signature, message) for signature, message in pairs]


# -- pool / fallback ----------------------------------------------------------


class InlineWorkers:
    """Same-process fallback with the :class:`WorkerPool` API.

    Every call executes synchronously on the caller's thread; the ``await``
    costs one loop iteration and nothing else.
    """

    workers = 0

    async def decode(
        self, payloads: Sequence[bytes]
    ) -> list[tuple[int, Any] | WireCodecError]:
        return decode_payloads(payloads)

    async def encode(self, jobs: Sequence[tuple[int, Any, int]]) -> list[bytes]:
        return encode_envelopes(jobs)

    async def digests(self, values: Sequence[Any]) -> list[str]:
        return digest_batch(values)

    async def verify(
        self,
        pki: PublicKeyInfrastructure,
        pairs: Sequence[tuple[Signature, Any]],
    ) -> list[bool]:
        return verify_batch(pki, pairs)

    def close(self) -> None:
        pass


class WorkerPool:
    """Batched crypto/codec offload onto worker processes."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("WorkerPool needs at least 1 worker (use InlineWorkers)")
        self.workers = workers
        # fork is much cheaper to start than spawn and inherits the wire-type
        # registry; fall back to the platform default elsewhere (the
        # initializer re-imports the registrations either way).
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork") if "fork" in methods else None
        self._executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=context, initializer=_init_worker
        )
        #: Batches and items shipped to the pool (observability).
        self.batches_submitted = 0
        self.items_submitted = 0

    def _run(self, function, /, *args):
        self.batches_submitted += 1
        loop = asyncio.get_running_loop()
        return loop.run_in_executor(self._executor, function, *args)

    async def decode(
        self, payloads: Sequence[bytes]
    ) -> list[tuple[int, Any] | WireCodecError]:
        self.items_submitted += len(payloads)
        return await self._run(_decode_warm, list(payloads))

    async def encode(self, jobs: Sequence[tuple[int, Any, int]]) -> list[bytes]:
        self.items_submitted += len(jobs)
        return await self._run(encode_envelopes, list(jobs))

    async def digests(self, values: Sequence[Any]) -> list[str]:
        self.items_submitted += len(values)
        return await self._run(digest_batch, list(values))

    async def verify(
        self,
        pki: PublicKeyInfrastructure,
        pairs: Sequence[tuple[Signature, Any]],
    ) -> list[bool]:
        self.items_submitted += len(pairs)
        return await self._run(verify_batch, pki, list(pairs))

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


def _decode_warm(payloads: Sequence[bytes]) -> list[tuple[int, Any] | WireCodecError]:
    # Digest warming only pays across a process boundary, so the pool decodes
    # through this wrapper and the inline path does not.
    return decode_payloads(payloads, warm_digests=True)


def make_worker_pool(workers: int) -> WorkerPool | InlineWorkers:
    """Pool of ``workers`` processes, or the inline fallback for ``<= 0``."""
    if workers and workers > 0:
        return WorkerPool(workers)
    return InlineWorkers()
