"""Configuration shared by live replica servers, clients and supervisors.

Every replica process must build *exactly* the same consensus core (protocol,
instance count, batch policy) over *exactly* the same genesis state (the
account universe), or the replicas would diverge before the first block.
:class:`ReplicaRuntimeConfig` is the single source of those parameters; the
CLI turns it into ``repro serve`` flags and back.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import CoreConfig
from repro.errors import ConfigurationError
from repro.ledger.state import StateStore
from repro.protocols.registry import build_core
from repro.workload.accounts import AccountUniverse
from repro.workload.config import WorkloadConfig


#: Prefix marking a Unix-domain-socket endpoint (``unix:/path/to.sock``).
UDS_PREFIX = "unix:"


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse ``host:port`` — or ``unix:/path`` — into a ``(host, port)`` pair.

    Unix-domain-socket endpoints keep the pair shape (port 0, path carried in
    the host slot with its ``unix:`` prefix) so they flow through every
    ``(host, port)`` signature unchanged.
    """
    if text.startswith(UDS_PREFIX):
        if not text[len(UDS_PREFIX) :]:
            raise ConfigurationError(f"endpoint {text!r} has an empty socket path")
        return text, 0
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ConfigurationError(f"endpoint {text!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(f"endpoint {text!r} has a non-numeric port") from None
    if not 0 < port < 65536:
        raise ConfigurationError(f"endpoint {text!r} has an out-of-range port")
    return host, port


def format_endpoint(endpoint: tuple[str, int]) -> str:
    """Render a ``(host, port)`` pair back to ``host:port`` (or ``unix:...``)."""
    host, port = endpoint
    if host.startswith(UDS_PREFIX):
        return host
    return f"{host}:{port}"


def is_uds_endpoint(endpoint: tuple[str, int]) -> bool:
    """Whether an endpoint pair names a Unix domain socket."""
    return endpoint[0].startswith(UDS_PREFIX)


def uds_path(endpoint: tuple[str, int]) -> str:
    """The filesystem path of a Unix-domain-socket endpoint."""
    return endpoint[0][len(UDS_PREFIX) :]


@dataclass
class ReplicaRuntimeConfig:
    """Everything one live replica process needs to participate.

    Attributes:
        replica_id: This replica's index into ``peers``.
        peers: One ``(host, port)`` listen endpoint per replica, in id order.
        protocol: Consensus core to build (``orthrus`` or a baseline).
        num_instances: SB instances (defaults to one per replica).
        batch_size: Leader batch cut size.
        batch_interval: Seconds between leader proposal ticks.
        epoch_length: Blocks per epoch (checkpoint cadence).
        view_change_timeout: Failure-detector timeout in wall-clock seconds.
        workload: Account-universe parameters; the genesis state every
            replica populates before serving.  Clients must generate traffic
            from the same universe.
        send_delay: Chaos: seconds every outbound replica-to-replica frame is
            held before sending (straggler injection; 0.0 = healthy).
        wan: WAN emulation spec: ``None`` (no emulation), a model name
            (``"wan"``/``"lan"``), a JSON square delay matrix, or
            ``@file.json`` holding one.  Expanded per replica into
            per-destination due-time delays composing with ``send_delay``
            (see :func:`repro.runtime.chaos.wan_delay_map`).
        byzantine_abstain: Chaos: this replica proposes and votes only in
            instances it currently leads and silently drops its consensus
            messages for every other instance (the paper's undetectable
            Byzantine abstention, Fig. 8).
        wire_version: Highest wire version this replica speaks (``None`` =
            the codec default, batched binary framing; ``1`` pins the node to
            the canonical-JSON fallback).  Actual per-peer encoding is
            negotiated down through the ``hello`` handshake.
        workers: Crypto/codec worker processes for this replica (0 = do all
            work inline on the event loop; the right choice for small
            clusters and single-core hosts).
        obs_enabled: Observability master switch.  ``False`` swaps the
            metrics registry for the inert no-op registry and disables
            tracing/snapshots (the A/B arm of the ``obs_overhead``
            benchmark).
        trace_file: JSONL file this replica appends sampled transaction
            span events to (``None`` = no tracing).
        trace_sample: Fraction of transactions traced, decided
            deterministically by tx id so every process samples the same
            transactions (see :func:`repro.obs.trace.sample_tx`).
        metrics_file: JSONL file periodic registry snapshots are appended
            to (``None`` = no snapshots).
        metrics_interval: Seconds between metrics snapshots.
        log_level: Stderr logging threshold (debug/info/warning/error).
        log_format: ``"text"`` or ``"json"`` (one JSON object per line).
        run_dir: Directory for this replica's durable state (WAL +
            snapshots).  ``None`` — the default, and the only mode the
            simulator ever sees — disables durability entirely.
        recovery: What a restart does with durable state found in
            ``run_dir``: ``"snapshot"`` recovers from the newest valid
            snapshot plus the WAL suffix (falling back to full WAL replay,
            then to peers); ``"genesis"`` wipes the durable state and
            rejoins from the genesis state via state transfer alone.
        snapshot_every_epochs: Cut a snapshot at most every N completed
            epoch checkpoints (durability only).
    """

    replica_id: int
    peers: tuple[tuple[str, int], ...]
    protocol: str = "orthrus"
    num_instances: int | None = None
    batch_size: int = 64
    batch_interval: float = 0.05
    epoch_length: int = 1_000_000
    view_change_timeout: float = 10.0
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(num_accounts=1024)
    )
    send_delay: float = 0.0
    wan: str | None = None
    byzantine_abstain: bool = False
    wire_version: int | None = None
    workers: int = 0
    obs_enabled: bool = True
    trace_file: str | None = None
    trace_sample: float = 1.0
    metrics_file: str | None = None
    metrics_interval: float = 1.0
    log_level: str = "info"
    log_format: str = "text"
    run_dir: str | None = None
    recovery: str = "snapshot"
    snapshot_every_epochs: int = 1

    def __post_init__(self) -> None:
        if len(self.peers) < 4:
            raise ConfigurationError("live clusters need at least 4 replicas")
        if not 0 <= self.replica_id < len(self.peers):
            raise ConfigurationError(
                f"replica id {self.replica_id} out of range for {len(self.peers)} peers"
            )
        if self.batch_interval <= 0:
            raise ConfigurationError("batch_interval must be positive")
        if self.send_delay < 0:
            raise ConfigurationError("send_delay cannot be negative")
        if self.wan is not None:
            # Deferred import: chaos pulls in fault-plan machinery this
            # low-level module must not depend on at import time.
            from repro.runtime.chaos import parse_wan_spec

            parse_wan_spec(self.wan)
        if self.workers < 0:
            raise ConfigurationError("workers cannot be negative")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigurationError("trace_sample must be within [0, 1]")
        if self.metrics_interval <= 0:
            raise ConfigurationError("metrics_interval must be positive")
        if self.recovery not in ("snapshot", "genesis"):
            raise ConfigurationError(
                f"recovery mode {self.recovery!r} is not 'snapshot' or 'genesis'"
            )
        if self.snapshot_every_epochs < 1:
            raise ConfigurationError("snapshot_every_epochs must be at least 1")

    @property
    def num_replicas(self) -> int:
        return len(self.peers)

    @property
    def instances(self) -> int:
        """Number of SB instances (defaults to one per replica)."""
        return self.num_instances or self.num_replicas

    @property
    def listen_endpoint(self) -> tuple[str, int]:
        """This replica's own listen address."""
        return self.peers[self.replica_id]

    def for_replica(self, replica_id: int) -> "ReplicaRuntimeConfig":
        """The same cluster configuration seen from another replica."""
        return replace(self, replica_id=replica_id)

    # -- deterministic genesis ---------------------------------------------

    def core_config(self) -> CoreConfig:
        return CoreConfig(
            num_instances=self.instances,
            batch_size=self.batch_size,
            epoch_length=self.epoch_length,
        )

    def universe(self) -> AccountUniverse:
        """The shared genesis account universe."""
        return AccountUniverse(
            num_accounts=self.workload.num_accounts,
            num_shared_objects=self.workload.num_shared_objects,
            initial_balance=self.workload.initial_balance,
            zipf_exponent=self.workload.zipf_exponent,
        )

    def build_core(self):
        """Build this replica's consensus core over the genesis state."""
        core = build_core(self.protocol, self.core_config())
        self.universe().populate(core.store)
        return core

    def genesis_digest(self) -> str:
        """State digest every replica starts from (sanity checks)."""
        store = StateStore()
        self.universe().populate(store)
        return store.state_digest()
