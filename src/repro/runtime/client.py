"""Async client library for live Orthrus clusters.

:class:`OrthrusClient` mirrors the paper's measurement methodology: a
transaction is submitted to ``fanout`` replicas and counts as finished when
``f + 1`` replicas have replied with the *same* result — matching replies,
not just any replies.  Requests are pipelined (any number may be in flight),
and unanswered submissions are retransmitted after a timeout, up to a retry
budget.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from dataclasses import dataclass

from repro.cluster.messages import ClientRequest
from repro.errors import NetworkError
from repro.ledger.transactions import Transaction
from repro.runtime.codec import (
    DEFAULT_WIRE_VERSION,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WireCodecError,
    decode_envelope,
    encode_envelope,
)
from repro.runtime.config import parse_endpoint
from repro.runtime.control import Hello, ShutdownRequest, StatusReply, StatusRequest
from repro.runtime.framing import FrameError, encode_frame, read_frame, write_frame

logger = logging.getLogger(__name__)


class ClientError(NetworkError):
    """The client could not complete a request."""


@dataclass(frozen=True)
class TxResult:
    """Outcome of one submission once ``f + 1`` matching replies arrived."""

    tx_id: str
    committed: bool
    replicas: tuple[int, ...]
    latency: float
    retries: int = 0
    #: Earliest replica-clock execution time seen in the matching replies
    #: (comparable to client time on a single host; see AsyncioTransport.now).
    confirmed_at: float | None = None


@dataclass
class ClientConfig:
    """Tunables for :class:`OrthrusClient`.

    Attributes:
        client_id: Node id this client identifies as (must not collide with a
            replica id or another client's id).
        fanout: Replicas each transaction is submitted to (default: all).
        timeout: Seconds to wait for a reply quorum before retransmitting.
        retries: Retransmissions before a submission fails.
        wire_version: Highest wire version to speak (``None`` = the codec
            default, struct-packed binary).  Each replica connection is
            negotiated down to ``min(ours, theirs)`` via the hello exchange;
            requests sent before a replica's hello arrives use canonical
            JSON, which every version decodes.
    """

    client_id: int = 1000
    fanout: int | None = None
    timeout: float = 5.0
    retries: int = 2
    wire_version: int | None = None


class _PendingTx:
    """Reply-matching state for one in-flight transaction."""

    __slots__ = (
        "future",
        "replies",
        "confirmed_at",
        "submitted_at",
        "retries",
        "watcher",
    )

    def __init__(self, future: asyncio.Future, submitted_at: float) -> None:
        self.future = future
        self.replies: dict[int, bool] = {}
        self.confirmed_at: dict[int, float | None] = {}
        self.submitted_at = submitted_at
        self.retries = 0
        self.watcher: asyncio.Task[None] | None = None


class OrthrusClient:
    """Pipelined async client with ``f + 1`` reply matching and retry."""

    def __init__(
        self,
        replicas: list[tuple[str, int] | str],
        config: ClientConfig | None = None,
    ) -> None:
        self.replicas = [
            parse_endpoint(entry) if isinstance(entry, str) else entry
            for entry in replicas
        ]
        self.config = config or ClientConfig()
        self.wire_version = (
            self.config.wire_version
            if self.config.wire_version is not None
            else DEFAULT_WIRE_VERSION
        )
        if self.wire_version not in SUPPORTED_WIRE_VERSIONS:
            raise ClientError(
                f"unsupported wire version {self.wire_version!r} "
                f"(supported: {SUPPORTED_WIRE_VERSIONS})"
            )
        #: Wire version each replica advertised in its hello reply (replicas
        #: that have not answered yet are addressed in canonical JSON).
        self._replica_versions: dict[int, int] = {}
        self.fault_tolerance = (len(self.replicas) - 1) // 3
        self.reply_quorum = self.fault_tolerance + 1
        self.fanout = self.config.fanout or len(self.replicas)
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._readers: list[asyncio.Task[None]] = []
        self._pending: dict[str, _PendingTx] = {}
        self._status_waiters: dict[int, asyncio.Future[StatusReply]] = {}
        self._nonces = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        #: Counters for reports and tests.
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.retransmissions = 0

    # -- connection management ---------------------------------------------

    async def connect(self, *, require_all: bool = True) -> None:
        """Open a connection to every replica and start reader tasks.

        With ``require_all=False``, replicas that refuse the connection (for
        example crashed by a fault plan before the client arrived) are
        skipped as long as a reply quorum of ``f + 1`` remains reachable.
        """
        self._loop = asyncio.get_running_loop()
        # The hello is always canonical JSON: it carries the negotiation.
        hello = encode_envelope(
            self.config.client_id,
            Hello(self.config.client_id, role="client", wire_version=self.wire_version),
        )
        unreachable: list[int] = []
        for replica_id, (host, port) in enumerate(self.replicas):
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                if require_all:
                    raise
                unreachable.append(replica_id)
                continue
            await write_frame(writer, hello)
            self._writers[replica_id] = writer
            self._readers.append(
                self._loop.create_task(self._read_replies(replica_id, reader))
            )
        if unreachable:
            logger.warning("client could not reach replicas %s", unreachable)
        if len(self._writers) < self.reply_quorum:
            raise ClientError(
                f"only {len(self._writers)} of {len(self.replicas)} replicas "
                f"reachable; a reply quorum needs {self.reply_quorum}"
            )

    async def close(self) -> None:
        """Stop readers and watchdogs, fail in-flight futures, close sockets."""
        self._closed = True
        for task in self._readers:
            task.cancel()
        await asyncio.gather(*self._readers, return_exceptions=True)
        self._readers.clear()
        for pending in list(self._pending.values()):
            if pending.watcher is not None:
                pending.watcher.cancel()
            if not pending.future.done():
                pending.future.set_exception(ClientError("client closed"))
        self._pending.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    async def flush(self) -> None:
        """Drain every connection's send buffer (flow control for bursts)."""
        for writer in list(self._writers.values()):
            if not writer.is_closing():
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

    async def __aenter__(self) -> "OrthrusClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- submission ----------------------------------------------------------

    async def submit(self, tx: Transaction) -> TxResult:
        """Submit ``tx`` and wait for ``f + 1`` matching replies."""
        return await self.submit_nowait(tx)

    def submit_nowait(self, tx: Transaction) -> "asyncio.Future[TxResult]":
        """Submit ``tx`` and return a future (pipelined submission)."""
        assert self._loop is not None, "connect() first"
        if tx.tx_id in self._pending:
            raise ClientError(f"transaction {tx.tx_id} is already in flight")
        future: asyncio.Future[TxResult] = self._loop.create_future()
        tx.submitted_at = self._loop.time()
        pending = _PendingTx(future, tx.submitted_at)
        self._pending[tx.tx_id] = pending
        self.submitted += 1
        self._transmit(tx)
        pending.watcher = self._loop.create_task(self._watch_timeout(tx))
        return future

    def _version_for(self, replica_id: int) -> int:
        return min(
            self.wire_version, self._replica_versions.get(replica_id, WIRE_VERSION)
        )

    def _transmit(self, tx: Transaction) -> None:
        request = ClientRequest(tx=tx, client_node=self.config.client_id)
        # One encoding per distinct negotiated version (normally exactly one).
        frames: dict[int, bytes] = {}
        targets = list(self._writers.items())[: self.fanout]
        for replica_id, writer in targets:
            if writer.is_closing():
                continue
            version = self._version_for(replica_id)
            frame = frames.get(version)
            if frame is None:
                frame = frames[version] = encode_envelope(
                    self.config.client_id, request, version=version
                )
            writer.write(encode_frame(frame))

    async def _watch_timeout(self, tx: Transaction) -> None:
        """Retransmit on timeout; fail the future once retries are exhausted.

        Cancelled by :meth:`_record_reply` as soon as the quorum resolves, so
        finished submissions leave no sleeping task behind.
        """
        while True:
            await asyncio.sleep(self.config.timeout)
            pending = self._pending.get(tx.tx_id)
            if pending is None or pending.future.done():
                return
            if pending.retries >= self.config.retries:
                self._pending.pop(tx.tx_id, None)
                self.failed += 1
                if not pending.future.done():
                    pending.future.set_exception(
                        ClientError(
                            f"no reply quorum for {tx.tx_id} after "
                            f"{pending.retries} retries"
                        )
                    )
                return
            pending.retries += 1
            self.retransmissions += 1
            self._transmit(tx)

    # -- replies --------------------------------------------------------------

    async def _read_replies(self, replica_id: int, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                try:
                    _, message = decode_envelope(frame)
                except WireCodecError as exc:
                    logger.warning("client dropping frame from %d: %s", replica_id, exc)
                    continue
                if isinstance(message, Hello):
                    # The replica's answering hello: upgrade this connection
                    # to min(our version, theirs) for subsequent requests.
                    self._replica_versions[replica_id] = message.wire_version
                    continue
                if isinstance(message, StatusReply):
                    waiter = self._status_waiters.pop(message.nonce, None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(message)
                    continue
                tx_id = getattr(message, "tx_id", None)
                if tx_id is None:
                    continue
                self._record_reply(
                    tx_id,
                    message.replica,
                    message.committed,
                    getattr(message, "confirmed_at", None),
                )
        except (FrameError, ConnectionError, OSError, asyncio.CancelledError) as exc:
            if isinstance(exc, asyncio.CancelledError):
                raise
            if not self._closed:
                logger.debug("client lost replica %d: %s", replica_id, exc)

    def _record_reply(
        self,
        tx_id: str,
        replica: int,
        committed: bool,
        confirmed_at: float | None = None,
    ) -> None:
        pending = self._pending.get(tx_id)
        if pending is None or pending.future.done():
            return
        pending.replies[replica] = committed
        pending.confirmed_at[replica] = confirmed_at
        # f + 1 *matching* replies: count agreement on the result value.
        for verdict in (True, False):
            matching = [r for r, c in pending.replies.items() if c is verdict]
            if len(matching) >= self.reply_quorum:
                assert self._loop is not None
                del self._pending[tx_id]
                self.completed += 1
                if pending.watcher is not None:
                    pending.watcher.cancel()
                stamps = [
                    pending.confirmed_at[r]
                    for r in matching
                    if pending.confirmed_at.get(r) is not None
                ]
                pending.future.set_result(
                    TxResult(
                        tx_id=tx_id,
                        committed=verdict,
                        replicas=tuple(sorted(matching)),
                        latency=self._loop.time() - pending.submitted_at,
                        retries=pending.retries,
                        confirmed_at=min(stamps) if stamps else None,
                    )
                )
                return

    # -- control plane --------------------------------------------------------

    async def status(self, replica_id: int, *, timeout: float = 5.0) -> StatusReply:
        """Query one replica's progress snapshot."""
        assert self._loop is not None, "connect() first"
        writer = self._writers.get(replica_id)
        if writer is None or writer.is_closing():
            raise ClientError(f"no connection to replica {replica_id}")
        nonce = next(self._nonces)
        waiter: asyncio.Future[StatusReply] = self._loop.create_future()
        self._status_waiters[nonce] = waiter
        await write_frame(
            writer,
            encode_envelope(
                self.config.client_id,
                StatusRequest(nonce=nonce),
                version=self._version_for(replica_id),
            ),
        )
        try:
            return await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            self._status_waiters.pop(nonce, None)
            raise ClientError(f"status request to replica {replica_id} timed out")

    async def cluster_status(self, *, require_all: bool = False) -> list[StatusReply]:
        """Query every connected replica.

        By default replicas that died since connecting are skipped — during
        fault injection the interesting answer is the *survivors'* state.
        ``require_all=True`` restores the strict behaviour and raises on the
        first unreachable replica.
        """
        results = await asyncio.gather(
            *(self.status(replica_id) for replica_id in list(self._writers)),
            return_exceptions=True,
        )
        statuses = [reply for reply in results if isinstance(reply, StatusReply)]
        if require_all and len(statuses) < len(results):
            errors = [r for r in results if not isinstance(r, StatusReply)]
            raise ClientError(f"status probe failed: {errors[0]}")
        if not statuses:
            raise ClientError("no replica answered a status probe")
        return statuses

    async def shutdown_cluster(self, reason: str = "client request") -> None:
        """Ask every replica to stop serving (used by the supervisor)."""
        request = ShutdownRequest(reason)
        for replica_id, writer in self._writers.items():
            if not writer.is_closing():
                await write_frame(
                    writer,
                    encode_envelope(
                        self.config.client_id,
                        request,
                        version=self._version_for(replica_id),
                    ),
                )

    @property
    def pending_count(self) -> int:
        """Submissions still waiting for a reply quorum."""
        return len(self._pending)
