"""Async client library for live Orthrus clusters.

:class:`OrthrusClient` mirrors the paper's measurement methodology: a
transaction is submitted to ``fanout`` replicas and counts as finished when
``f + 1`` replicas have replied with the *same* result — matching replies,
not just any replies.  Requests are pipelined (any number may be in flight),
and unanswered submissions are retransmitted after a timeout, up to a retry
budget.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from dataclasses import dataclass

from repro.cluster.messages import ClientRequest
from repro.errors import NetworkError
from repro.ledger.transactions import Transaction
from repro.runtime.codec import (
    DEFAULT_WIRE_VERSION,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_BATCH,
    WireCodecError,
    decode_envelopes,
    encode_envelope,
)
from repro.runtime.config import parse_endpoint
from repro.runtime.control import (
    Hello,
    MetricsReply,
    MetricsRequest,
    ShutdownRequest,
    StatusReply,
    StatusRequest,
)
from repro.runtime.framing import (
    FrameError,
    FrameReader,
    encode_frame,
    encode_super_frame,
    write_frame,
)
from repro.runtime.transport import connect_endpoint

logger = logging.getLogger(__name__)

#: Simultaneous connection attempts while dialling a cluster.
CONNECT_CONCURRENCY = 64

#: Simultaneous in-flight status probes per ``cluster_status`` call.
STATUS_PROBE_CONCURRENCY = 16


class ClientError(NetworkError):
    """The client could not complete a request."""


@dataclass(frozen=True)
class TxResult:
    """Outcome of one submission once ``f + 1`` matching replies arrived."""

    tx_id: str
    committed: bool
    replicas: tuple[int, ...]
    latency: float
    retries: int = 0
    #: Earliest replica-clock execution time seen in the matching replies
    #: (comparable to client time on a single host; see AsyncioTransport.now).
    confirmed_at: float | None = None


@dataclass
class ClientConfig:
    """Tunables for :class:`OrthrusClient`.

    Attributes:
        client_id: Node id this client identifies as (must not collide with a
            replica id or another client's id).
        fanout: Replicas each transaction is submitted to (default: all).
        timeout: Seconds to wait for a reply quorum before retransmitting.
        retries: Retransmissions before a submission fails.
        wire_version: Highest wire version to speak (``None`` = the codec
            default, struct-packed binary).  Each replica connection is
            negotiated down to ``min(ours, theirs)`` via the hello exchange;
            requests sent before a replica's hello arrives use canonical
            JSON, which every version decodes.
        route_instances: Number of SB instances the cluster runs.  When set,
            first transmissions are *leader-routed*: each transaction goes to
            the view-0 leaders of its payer buckets (the same stable-hash
            partitioning the replicas use), topped up to a reply quorum of
            ``f + 1`` replicas — instead of to all ``fanout`` replicas.  Only
            replicas that received the request directly answer the client, so
            the quorum still forms while every other replica is spared the
            request decode.  Retransmissions always fall back to the full
            fanout, which keeps submissions live across view changes and
            crashed leaders (at the cost of one timeout).  Default off.
    """

    client_id: int = 1000
    fanout: int | None = None
    timeout: float = 5.0
    retries: int = 2
    wire_version: int | None = None
    route_instances: int | None = None


class _PendingTx:
    """Reply-matching state for one in-flight transaction.

    Timeouts are enforced by one shared sweeper task scanning deadlines (see
    :meth:`OrthrusClient._sweep_timeouts`), not a watcher task per
    submission — at thousands of transactions in flight, per-tx tasks cost
    more scheduler work than the submissions themselves.
    """

    __slots__ = (
        "future",
        "replies",
        "confirmed_at",
        "submitted_at",
        "retries",
        "deadline",
        "tx",
    )

    def __init__(
        self, future: asyncio.Future, tx: Transaction, deadline: float
    ) -> None:
        self.future = future
        self.replies: dict[int, bool] = {}
        self.confirmed_at: dict[int, float | None] = {}
        self.submitted_at = tx.submitted_at
        self.retries = 0
        self.deadline = deadline
        self.tx = tx


class OrthrusClient:
    """Pipelined async client with ``f + 1`` reply matching and retry."""

    def __init__(
        self,
        replicas: list[tuple[str, int] | str],
        config: ClientConfig | None = None,
    ) -> None:
        self.replicas = [
            parse_endpoint(entry) if isinstance(entry, str) else entry
            for entry in replicas
        ]
        self.config = config or ClientConfig()
        self.wire_version = (
            self.config.wire_version
            if self.config.wire_version is not None
            else DEFAULT_WIRE_VERSION
        )
        if self.wire_version not in SUPPORTED_WIRE_VERSIONS:
            raise ClientError(
                f"unsupported wire version {self.wire_version!r} "
                f"(supported: {SUPPORTED_WIRE_VERSIONS})"
            )
        #: Wire version each replica advertised in its hello reply (replicas
        #: that have not answered yet are addressed in canonical JSON).
        self._replica_versions: dict[int, int] = {}
        self.fault_tolerance = (len(self.replicas) - 1) // 3
        self.reply_quorum = self.fault_tolerance + 1
        self.fanout = self.config.fanout or len(self.replicas)
        self._partitioner = None
        if self.config.route_instances:
            from repro.core.partition import PayerPartitioner

            self._partitioner = PayerPartitioner(self.config.route_instances)
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._readers: list[asyncio.Task[None]] = []
        self._pending: dict[str, _PendingTx] = {}
        #: Request frames queued per replica, flushed once per loop iteration
        #: (a pipelined burst coalesces into one write — and one super-frame
        #: for v3 replicas).
        self._out_pending: dict[int, list[bytes]] = {}
        self._sweeper: asyncio.Task[None] | None = None
        self._status_waiters: dict[int, asyncio.Future[StatusReply]] = {}
        self._metrics_waiters: dict[int, asyncio.Future[MetricsReply]] = {}
        self._nonces = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        #: Counters for reports and tests.
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.retransmissions = 0

    # -- connection management ---------------------------------------------

    async def connect(self, *, require_all: bool = True) -> None:
        """Open a connection to every replica and start reader tasks.

        Connections are dialled concurrently (bounded by
        ``CONNECT_CONCURRENCY``) — serially, a 100-replica cluster would pay
        one round-trip per replica before the first transaction could move.

        With ``require_all=False``, replicas that refuse the connection (for
        example crashed by a fault plan before the client arrived) are
        skipped as long as a reply quorum of ``f + 1`` remains reachable.
        """
        self._loop = asyncio.get_running_loop()
        # The hello is always canonical JSON: it carries the negotiation.
        hello = encode_envelope(
            self.config.client_id,
            Hello(self.config.client_id, role="client", wire_version=self.wire_version),
        )
        semaphore = asyncio.Semaphore(CONNECT_CONCURRENCY)

        async def dial(replica_id: int, endpoint: tuple[str, int]):
            async with semaphore:
                reader, writer = await connect_endpoint(endpoint)
                await write_frame(writer, hello)
                return replica_id, reader, writer

        results = await asyncio.gather(
            *(dial(i, endpoint) for i, endpoint in enumerate(self.replicas)),
            return_exceptions=True,
        )
        unreachable: list[int] = []
        opened: list[tuple[int, asyncio.StreamReader, asyncio.StreamWriter]] = []
        for replica_id, result in enumerate(results):
            if isinstance(result, BaseException):
                if not isinstance(result, OSError):
                    raise result
                unreachable.append(replica_id)
            else:
                opened.append(result)
        if unreachable and require_all:
            for _, _, writer in opened:
                writer.close()
            # Preserve the serial-connect contract: the dial failure itself.
            raise next(r for r in results if isinstance(r, OSError))
        for replica_id, reader, writer in opened:
            self._writers[replica_id] = writer
            self._readers.append(
                self._loop.create_task(self._read_replies(replica_id, reader))
            )
        if unreachable:
            logger.warning("client could not reach replicas %s", unreachable)
        if len(self._writers) < self.reply_quorum:
            raise ClientError(
                f"only {len(self._writers)} of {len(self.replicas)} replicas "
                f"reachable; a reply quorum needs {self.reply_quorum}"
            )

    async def close(self) -> None:
        """Stop readers and the timeout sweeper, fail in-flight futures,
        close sockets."""
        self._closed = True
        tasks = list(self._readers)
        if self._sweeper is not None:
            tasks.append(self._sweeper)
            self._sweeper = None
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._readers.clear()
        for pending in list(self._pending.values()):
            if not pending.future.done():
                pending.future.set_exception(ClientError("client closed"))
        self._pending.clear()
        self._out_pending.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    async def flush(self) -> None:
        """Drain every connection's send buffer (flow control for bursts)."""
        for replica_id in list(self._out_pending):
            self._flush_out(replica_id)
        for writer in list(self._writers.values()):
            if not writer.is_closing():
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

    async def __aenter__(self) -> "OrthrusClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- submission ----------------------------------------------------------

    async def submit(self, tx: Transaction) -> TxResult:
        """Submit ``tx`` and wait for ``f + 1`` matching replies."""
        return await self.submit_nowait(tx)

    def submit_nowait(self, tx: Transaction) -> "asyncio.Future[TxResult]":
        """Submit ``tx`` and return a future (pipelined submission)."""
        assert self._loop is not None, "connect() first"
        if tx.tx_id in self._pending:
            raise ClientError(f"transaction {tx.tx_id} is already in flight")
        future: asyncio.Future[TxResult] = self._loop.create_future()
        tx.submitted_at = self._loop.time()
        pending = _PendingTx(future, tx, tx.submitted_at + self.config.timeout)
        self._pending[tx.tx_id] = pending
        self.submitted += 1
        self._transmit(tx)
        self._ensure_sweeper()
        return future

    def _version_for(self, replica_id: int) -> int:
        return min(
            self.wire_version, self._replica_versions.get(replica_id, WIRE_VERSION)
        )

    def _route_targets(self, tx: Transaction) -> list[tuple[int, object]] | None:
        """Pick the view-0 bucket leaders for ``tx``, topped up to a quorum.

        Returns ``None`` when routing cannot guarantee a reply quorum (a
        routed leader is disconnected, or fewer than ``f + 1`` distinct
        replicas are reachable) — the caller then broadcasts instead.
        """
        assert self._partitioner is not None
        num_replicas = len(self.replicas)
        targets = {bucket % num_replicas for bucket in self._partitioner.buckets_for(tx)}
        # Top up with the replicas that follow the first leader so exactly
        # f + 1 replicas see the request and answer — the smallest set that
        # can still produce f + 1 matching replies.
        cursor = (min(targets) + 1) % num_replicas
        while len(targets) < self.reply_quorum:
            targets.add(cursor)
            cursor = (cursor + 1) % num_replicas
        picked = []
        for replica_id in sorted(targets):
            writer = self._writers.get(replica_id)
            if writer is None or writer.is_closing():
                return None
            picked.append((replica_id, writer))
        return picked

    def _transmit(self, tx: Transaction, *, broadcast: bool = False) -> None:
        request = ClientRequest(tx=tx, client_node=self.config.client_id)
        # One encoding per distinct negotiated version (normally exactly one).
        frames: dict[int, bytes] = {}
        targets = None
        if self._partitioner is not None and not broadcast:
            targets = self._route_targets(tx)
        if targets is None:
            targets = list(self._writers.items())[: self.fanout]
        for replica_id, writer in targets:
            if writer.is_closing():
                continue
            version = self._version_for(replica_id)
            frame = frames.get(version)
            if frame is None:
                frame = frames[version] = encode_envelope(
                    self.config.client_id, request, version=version
                )
            self._queue_frame(replica_id, frame)

    def _queue_frame(self, replica_id: int, frame: bytes) -> None:
        # Defer the write one loop iteration so a pipelined burst of
        # submissions coalesces into one write per replica.
        pending = self._out_pending.get(replica_id)
        if pending is None:
            self._out_pending[replica_id] = [frame]
            assert self._loop is not None
            self._loop.call_soon(self._flush_out, replica_id)
        else:
            pending.append(frame)

    def _flush_out(self, replica_id: int) -> None:
        frames = self._out_pending.pop(replica_id, None)
        if not frames or self._closed:
            return
        writer = self._writers.get(replica_id)
        if writer is None or writer.is_closing():
            return
        if len(frames) > 1 and self._version_for(replica_id) >= WIRE_VERSION_BATCH:
            writer.write(encode_frame(encode_super_frame(frames)))
        else:
            writer.write(b"".join(map(encode_frame, frames)))

    # -- timeouts -------------------------------------------------------------

    def _ensure_sweeper(self) -> None:
        if self._sweeper is None or self._sweeper.done():
            assert self._loop is not None
            self._sweeper = self._loop.create_task(self._sweep_timeouts())

    async def _sweep_timeouts(self) -> None:
        """Retransmit overdue submissions; fail them once retries run out.

        One task scans every pending deadline a few times per timeout
        period.  The scan is O(pending), but it replaces one sleeping task
        per in-flight transaction; the sweeper exits when nothing is pending
        and is re-created by the next submission.
        """
        assert self._loop is not None
        interval = max(0.02, min(0.25, self.config.timeout / 4))
        try:
            while not self._closed and self._pending:
                await asyncio.sleep(interval)
                now = self._loop.time()
                for tx_id, pending in list(self._pending.items()):
                    if pending.future.done() or pending.deadline > now:
                        continue
                    if pending.retries >= self.config.retries:
                        self._pending.pop(tx_id, None)
                        self.failed += 1
                        pending.future.set_exception(
                            ClientError(
                                f"no reply quorum for {tx_id} after "
                                f"{pending.retries} retries"
                            )
                        )
                        continue
                    pending.retries += 1
                    pending.deadline = now + self.config.timeout
                    self.retransmissions += 1
                    # Retransmissions broadcast even when routing is on: the
                    # routed leaders may have crashed or been demoted by a
                    # view change since the first attempt.
                    self._transmit(pending.tx, broadcast=True)
        finally:
            self._sweeper = None

    # -- replies --------------------------------------------------------------

    async def _read_replies(self, replica_id: int, reader: asyncio.StreamReader) -> None:
        frames = FrameReader(reader)
        try:
            while True:
                payloads = await frames.read_batch()
                if payloads is None:
                    break
                for payload in payloads:
                    try:
                        entries = decode_envelopes(payload)
                    except WireCodecError as exc:
                        logger.warning(
                            "client dropping frame from %d: %s", replica_id, exc
                        )
                        continue
                    for _, message in entries:
                        self._handle_reply(replica_id, message)
        except (FrameError, ConnectionError, OSError, asyncio.CancelledError) as exc:
            if isinstance(exc, asyncio.CancelledError):
                raise
            if not self._closed:
                logger.debug("client lost replica %d: %s", replica_id, exc)

    def _handle_reply(self, replica_id: int, message) -> None:
        if isinstance(message, Hello):
            # The replica's answering hello: upgrade this connection
            # to min(our version, theirs) for subsequent requests.
            self._replica_versions[replica_id] = message.wire_version
            return
        if isinstance(message, StatusReply):
            waiter = self._status_waiters.pop(message.nonce, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(message)
            return
        if isinstance(message, MetricsReply):
            metrics_waiter = self._metrics_waiters.pop(message.nonce, None)
            if metrics_waiter is not None and not metrics_waiter.done():
                metrics_waiter.set_result(message)
            return
        tx_id = getattr(message, "tx_id", None)
        if tx_id is None:
            return
        self._record_reply(
            tx_id,
            message.replica,
            message.committed,
            getattr(message, "confirmed_at", None),
        )

    def _record_reply(
        self,
        tx_id: str,
        replica: int,
        committed: bool,
        confirmed_at: float | None = None,
    ) -> None:
        pending = self._pending.get(tx_id)
        if pending is None or pending.future.done():
            return
        pending.replies[replica] = committed
        pending.confirmed_at[replica] = confirmed_at
        # f + 1 *matching* replies: count agreement on the result value.
        for verdict in (True, False):
            matching = [r for r, c in pending.replies.items() if c is verdict]
            if len(matching) >= self.reply_quorum:
                assert self._loop is not None
                del self._pending[tx_id]
                self.completed += 1
                stamps = [
                    pending.confirmed_at[r]
                    for r in matching
                    if pending.confirmed_at.get(r) is not None
                ]
                pending.future.set_result(
                    TxResult(
                        tx_id=tx_id,
                        committed=verdict,
                        replicas=tuple(sorted(matching)),
                        latency=self._loop.time() - pending.submitted_at,
                        retries=pending.retries,
                        confirmed_at=min(stamps) if stamps else None,
                    )
                )
                return

    # -- control plane --------------------------------------------------------

    async def status(self, replica_id: int, *, timeout: float = 5.0) -> StatusReply:
        """Query one replica's progress snapshot."""
        assert self._loop is not None, "connect() first"
        writer = self._writers.get(replica_id)
        if writer is None or writer.is_closing():
            raise ClientError(f"no connection to replica {replica_id}")
        nonce = next(self._nonces)
        waiter: asyncio.Future[StatusReply] = self._loop.create_future()
        self._status_waiters[nonce] = waiter
        await write_frame(
            writer,
            encode_envelope(
                self.config.client_id,
                StatusRequest(nonce=nonce),
                version=self._version_for(replica_id),
            ),
        )
        try:
            return await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            self._status_waiters.pop(nonce, None)
            raise ClientError(f"status request to replica {replica_id} timed out")

    async def cluster_status(
        self,
        *,
        require_all: bool = False,
        concurrency: int = STATUS_PROBE_CONCURRENCY,
    ) -> list[StatusReply]:
        """Query every connected replica (bounded-concurrency gather).

        By default replicas that died since connecting are skipped — during
        fault injection the interesting answer is the *survivors'* state.
        ``require_all=True`` restores the strict behaviour and raises on the
        first unreachable replica.  ``concurrency`` bounds the in-flight
        probes: all replicas are always queried, but at most this many waits
        are outstanding at once, so a 100-replica settle probe neither runs
        serially nor bursts 100 simultaneous timers.
        """
        semaphore = asyncio.Semaphore(max(1, concurrency))

        async def probe(replica_id: int) -> StatusReply:
            async with semaphore:
                return await self.status(replica_id)

        results = await asyncio.gather(
            *(probe(replica_id) for replica_id in list(self._writers)),
            return_exceptions=True,
        )
        statuses = [reply for reply in results if isinstance(reply, StatusReply)]
        if require_all and len(statuses) < len(results):
            errors = [r for r in results if not isinstance(r, StatusReply)]
            raise ClientError(f"status probe failed: {errors[0]}")
        if not statuses:
            raise ClientError("no replica answered a status probe")
        return statuses

    async def metrics(self, replica_id: int, *, timeout: float = 5.0) -> MetricsReply:
        """Query one replica's metrics-registry snapshot."""
        assert self._loop is not None, "connect() first"
        writer = self._writers.get(replica_id)
        if writer is None or writer.is_closing():
            raise ClientError(f"no connection to replica {replica_id}")
        nonce = next(self._nonces)
        waiter: asyncio.Future[MetricsReply] = self._loop.create_future()
        self._metrics_waiters[nonce] = waiter
        await write_frame(
            writer,
            encode_envelope(
                self.config.client_id,
                MetricsRequest(nonce=nonce),
                version=self._version_for(replica_id),
            ),
        )
        try:
            return await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            self._metrics_waiters.pop(nonce, None)
            raise ClientError(f"metrics request to replica {replica_id} timed out")

    async def cluster_metrics(
        self,
        *,
        require_all: bool = False,
        concurrency: int = STATUS_PROBE_CONCURRENCY,
    ) -> list[MetricsReply]:
        """Query every connected replica's metrics snapshot.

        Mirrors :meth:`cluster_status`: dead replicas are skipped unless
        ``require_all`` is set, probes run with bounded concurrency.
        """
        semaphore = asyncio.Semaphore(max(1, concurrency))

        async def probe(replica_id: int) -> MetricsReply:
            async with semaphore:
                return await self.metrics(replica_id)

        results = await asyncio.gather(
            *(probe(replica_id) for replica_id in list(self._writers)),
            return_exceptions=True,
        )
        replies = [reply for reply in results if isinstance(reply, MetricsReply)]
        if require_all and len(replies) < len(results):
            errors = [r for r in results if not isinstance(r, MetricsReply)]
            raise ClientError(f"metrics probe failed: {errors[0]}")
        if not replies:
            raise ClientError("no replica answered a metrics probe")
        return replies

    async def shutdown_cluster(self, reason: str = "client request") -> None:
        """Ask every replica to stop serving (used by the supervisor)."""
        request = ShutdownRequest(reason)
        for replica_id, writer in self._writers.items():
            if not writer.is_closing():
                await write_frame(
                    writer,
                    encode_envelope(
                        self.config.client_id,
                        request,
                        version=self._version_for(replica_id),
                    ),
                )

    @property
    def pending_count(self) -> int:
        """Submissions still waiting for a reply quorum."""
        return len(self._pending)
