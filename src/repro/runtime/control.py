"""Control-plane messages used only by the live runtime.

These never appear in the simulator: connection handshakes, status probes
(used by the load generator and the cluster supervisor to read committed
counts, state digests and the latency-stage breakdown) and graceful shutdown.
They ride the same versioned wire codec as the consensus messages.

The :class:`Hello` handshake doubles as the wire-version negotiation: every
connection opens with a v1 (canonical JSON) hello advertising the highest
wire version the sender speaks, and each side then encodes *to* that peer at
``min(own version, advertised version)`` — so a v2 cluster runs struct-packed
binary frames end to end, while any v1-only peer transparently keeps
receiving canonical JSON.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any

from repro.runtime.codec import (
    WIRE_VERSION_BINARY,
    _I64,
    _r_json,
    _r_str,
    _w_json,
    _w_str,
    register_wire_type,
)


@dataclass(frozen=True)
class Hello:
    """First frame on every connection: who is calling, in what role, and
    the highest wire version the caller can decode."""

    node_id: int
    role: str = "replica"  # "replica" | "client"
    wire_version: int = WIRE_VERSION_BINARY


@dataclass(frozen=True)
class StatusRequest:
    """Probe a replica for its current progress (``nonce`` pairs the reply)."""

    nonce: int = 0


@dataclass(frozen=True)
class StatusReply:
    """A replica's answer to a :class:`StatusRequest`."""

    nonce: int
    replica: int
    committed: int
    rejected: int
    state_digest: str
    delivered_frontier: tuple[int, ...] = ()
    view_changes: int = 0
    stage_breakdown: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class MetricsRequest:
    """Probe a replica for its metrics-registry snapshot (mid-run polling)."""

    nonce: int = 0


@dataclass(frozen=True)
class MetricsReply:
    """A replica's registry snapshot: flat ``{instrument name: value}``.

    Histograms appear expanded (``<name>.count/.mean/.p50/.p99/.max``); an
    empty map means the replica runs with observability disabled.
    """

    nonce: int
    replica: int
    uptime: float = 0.0
    metrics: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class RecoveryRequest:
    """Ask a peer for the state a restarted replica is missing.

    ``frontier`` is the requestor's delivered frontier after local WAL
    replay; the peer answers with its snapshot (when the requestor is too
    far behind) plus a batch of committed blocks above that frontier.
    """

    nonce: int
    replica: int
    frontier: tuple[int, ...] = ()


#: Committed blocks per :class:`RecoveryReply`; the requestor loops with
#: fresh requests until a reply comes back empty-handed.
RECOVERY_BLOCK_BATCH = 512


@dataclass(frozen=True)
class RecoveryReply:
    """A peer's answer to a :class:`RecoveryRequest`.

    ``snapshot`` is the peer's latest durable snapshot as canonical JSON
    (empty string when the requestor's frontier already covers it, or the
    peer has none); ``blocks`` are wire-encoded committed blocks above the
    requestor's frontier, capped at :data:`RECOVERY_BLOCK_BATCH` per reply.
    ``views`` carries the peer's installed view per instance so the
    requestor can fast-forward instead of re-running view changes, and
    ``checkpoint_epoch``/``checkpoint_digest`` pin the latest quorum-stable
    checkpoint for cross-verification after replay.
    """

    nonce: int
    replica: int
    frontier: tuple[int, ...] = ()
    views: tuple[int, ...] = ()
    checkpoint_epoch: int = -1
    checkpoint_digest: str = ""
    snapshot: str = ""
    blocks: tuple[dict, ...] = ()


@dataclass(frozen=True)
class ShutdownRequest:
    """Ask a replica server to stop serving and exit cleanly."""

    reason: str = ""


@dataclass(frozen=True)
class LinkUpdate:
    """Retarget a replica's blocked-peer set (partition fault injection).

    ``blocked`` is the *absolute* set of peer ids the receiving replica must
    not send frames to — not a delta — so overlapping partition rules and
    heals compose idempotently: the chaos controller recomputes the full set
    from every active rule and pushes it after each change.  An empty set
    heals everything.
    """

    nonce: int = 0
    blocked: tuple[int, ...] = ()


def _decode_hello(data: dict[str, Any]) -> Hello:
    return Hello(
        node_id=int(data["node_id"]),
        role=data.get("role", "replica"),
        # Peers predating the binary codec never sent the field; they speak
        # canonical JSON (v1) only.
        wire_version=int(data.get("wire_version", 1)),
    )


def _decode_status_request(data: dict[str, Any]) -> StatusRequest:
    return StatusRequest(nonce=int(data.get("nonce", 0)))


def _decode_status_reply(data: dict[str, Any]) -> StatusReply:
    return StatusReply(
        nonce=int(data.get("nonce", 0)),
        replica=int(data["replica"]),
        committed=int(data["committed"]),
        rejected=int(data.get("rejected", 0)),
        state_digest=data["state_digest"],
        delivered_frontier=tuple(int(v) for v in data.get("delivered_frontier", [])),
        view_changes=int(data.get("view_changes", 0)),
        stage_breakdown={
            str(k): float(v) for k, v in data.get("stage_breakdown", {}).items()
        },
    )


def _decode_metrics_request(data: dict[str, Any]) -> MetricsRequest:
    return MetricsRequest(nonce=int(data.get("nonce", 0)))


def _decode_metrics_reply(data: dict[str, Any]) -> MetricsReply:
    return MetricsReply(
        nonce=int(data.get("nonce", 0)),
        replica=int(data["replica"]),
        uptime=float(data.get("uptime", 0.0)),
        metrics={str(k): float(v) for k, v in data.get("metrics", {}).items()},
    )


def _decode_recovery_request(data: dict[str, Any]) -> RecoveryRequest:
    return RecoveryRequest(
        nonce=int(data.get("nonce", 0)),
        replica=int(data["replica"]),
        frontier=tuple(int(v) for v in data.get("frontier", [])),
    )


def _decode_recovery_reply(data: dict[str, Any]) -> RecoveryReply:
    return RecoveryReply(
        nonce=int(data.get("nonce", 0)),
        replica=int(data["replica"]),
        frontier=tuple(int(v) for v in data.get("frontier", [])),
        views=tuple(int(v) for v in data.get("views", [])),
        checkpoint_epoch=int(data.get("checkpoint_epoch", -1)),
        checkpoint_digest=data.get("checkpoint_digest", ""),
        snapshot=data.get("snapshot", ""),
        blocks=tuple(data.get("blocks", [])),
    )


def _decode_shutdown(data: dict[str, Any]) -> ShutdownRequest:
    return ShutdownRequest(reason=data.get("reason", ""))


def _decode_link_update(data: dict[str, Any]) -> LinkUpdate:
    return LinkUpdate(
        nonce=int(data.get("nonce", 0)),
        blocked=tuple(int(v) for v in data.get("blocked", [])),
    )


# -- binary (v2) layouts -------------------------------------------------------

_HELLO_FIXED = struct.Struct(">qB")  # node_id, wire_version


def _b_enc_hello(out: list[bytes], msg: Hello) -> None:
    out.append(_HELLO_FIXED.pack(msg.node_id, msg.wire_version))
    _w_str(out, msg.role)


def _b_dec_hello(buf: bytes, off: int) -> tuple[Hello, int]:
    node_id, wire_version = _HELLO_FIXED.unpack_from(buf, off)
    role, off = _r_str(buf, off + _HELLO_FIXED.size)
    return Hello(node_id=node_id, role=role, wire_version=wire_version), off


def _b_enc_status_request(out: list[bytes], msg: StatusRequest) -> None:
    out.append(_I64.pack(msg.nonce))


def _b_dec_status_request(buf: bytes, off: int) -> tuple[StatusRequest, int]:
    (nonce,) = _I64.unpack_from(buf, off)
    return StatusRequest(nonce=nonce), off + 8


_STATUS_FIXED = struct.Struct(">qqqqq")  # nonce, replica, committed, rejected, view_changes


def _b_enc_status_reply(out: list[bytes], msg: StatusReply) -> None:
    out.append(
        _STATUS_FIXED.pack(
            msg.nonce, msg.replica, msg.committed, msg.rejected, msg.view_changes
        )
    )
    _w_str(out, msg.state_digest)
    frontier = msg.delivered_frontier
    out.append(struct.pack(f">I{len(frontier)}q", len(frontier), *frontier))
    _w_json(out, msg.stage_breakdown)


def _b_dec_status_reply(buf: bytes, off: int) -> tuple[StatusReply, int]:
    nonce, replica, committed, rejected, view_changes = _STATUS_FIXED.unpack_from(
        buf, off
    )
    state_digest, off = _r_str(buf, off + _STATUS_FIXED.size)
    (count,) = struct.unpack_from(">I", buf, off)
    frontier = struct.unpack_from(f">{count}q", buf, off + 4)
    off += 4 + 8 * count
    breakdown, off = _r_json(buf, off)
    return (
        StatusReply(
            nonce=nonce,
            replica=replica,
            committed=committed,
            rejected=rejected,
            state_digest=state_digest,
            delivered_frontier=frontier,
            view_changes=view_changes,
            stage_breakdown={str(k): float(v) for k, v in breakdown.items()},
        ),
        off,
    )


def _w_i64_seq(out: list[bytes], values: tuple[int, ...]) -> None:
    out.append(struct.pack(f">I{len(values)}q", len(values), *values))


def _r_i64_seq(buf: bytes, off: int) -> tuple[tuple[int, ...], int]:
    (count,) = struct.unpack_from(">I", buf, off)
    values = struct.unpack_from(f">{count}q", buf, off + 4)
    return values, off + 4 + 8 * count


_RECOVERY_REQ_FIXED = struct.Struct(">qq")  # nonce, replica


def _b_enc_recovery_request(out: list[bytes], msg: RecoveryRequest) -> None:
    out.append(_RECOVERY_REQ_FIXED.pack(msg.nonce, msg.replica))
    _w_i64_seq(out, msg.frontier)


def _b_dec_recovery_request(buf: bytes, off: int) -> tuple[RecoveryRequest, int]:
    nonce, replica = _RECOVERY_REQ_FIXED.unpack_from(buf, off)
    frontier, off = _r_i64_seq(buf, off + _RECOVERY_REQ_FIXED.size)
    return RecoveryRequest(nonce=nonce, replica=replica, frontier=frontier), off


_RECOVERY_REPLY_FIXED = struct.Struct(">qqq")  # nonce, replica, checkpoint_epoch


def _b_enc_recovery_reply(out: list[bytes], msg: RecoveryReply) -> None:
    out.append(_RECOVERY_REPLY_FIXED.pack(msg.nonce, msg.replica, msg.checkpoint_epoch))
    _w_i64_seq(out, msg.frontier)
    _w_i64_seq(out, msg.views)
    _w_str(out, msg.checkpoint_digest)
    _w_str(out, msg.snapshot)
    # Control-plane one-shot transfer, not the consensus hot path — length-
    # prefixed JSON for the block batch keeps the layout trivially stable.
    _w_json(out, {"blocks": list(msg.blocks)})


def _b_dec_recovery_reply(buf: bytes, off: int) -> tuple[RecoveryReply, int]:
    nonce, replica, checkpoint_epoch = _RECOVERY_REPLY_FIXED.unpack_from(buf, off)
    frontier, off = _r_i64_seq(buf, off + _RECOVERY_REPLY_FIXED.size)
    views, off = _r_i64_seq(buf, off)
    checkpoint_digest, off = _r_str(buf, off)
    snapshot, off = _r_str(buf, off)
    wrapped, off = _r_json(buf, off)
    return (
        RecoveryReply(
            nonce=nonce,
            replica=replica,
            frontier=frontier,
            views=views,
            checkpoint_epoch=checkpoint_epoch,
            checkpoint_digest=checkpoint_digest,
            snapshot=snapshot,
            blocks=tuple(wrapped.get("blocks", [])),
        ),
        off,
    )


def _b_enc_shutdown(out: list[bytes], msg: ShutdownRequest) -> None:
    _w_str(out, msg.reason)


def _b_dec_shutdown(buf: bytes, off: int) -> tuple[ShutdownRequest, int]:
    reason, off = _r_str(buf, off)
    return ShutdownRequest(reason=reason), off


def _b_enc_link_update(out: list[bytes], msg: LinkUpdate) -> None:
    out.append(_I64.pack(msg.nonce))
    _w_i64_seq(out, msg.blocked)


def _b_dec_link_update(buf: bytes, off: int) -> tuple[LinkUpdate, int]:
    (nonce,) = _I64.unpack_from(buf, off)
    blocked, off = _r_i64_seq(buf, off + 8)
    return LinkUpdate(nonce=nonce, blocked=blocked), off


def _b_enc_metrics_request(out: list[bytes], msg: MetricsRequest) -> None:
    out.append(_I64.pack(msg.nonce))


def _b_dec_metrics_request(buf: bytes, off: int) -> tuple[MetricsRequest, int]:
    (nonce,) = _I64.unpack_from(buf, off)
    return MetricsRequest(nonce=nonce), off + 8


_METRICS_FIXED = struct.Struct(">qqd")  # nonce, replica, uptime


def _b_enc_metrics_reply(out: list[bytes], msg: MetricsReply) -> None:
    out.append(_METRICS_FIXED.pack(msg.nonce, msg.replica, msg.uptime))
    _w_json(out, msg.metrics)


def _b_dec_metrics_reply(buf: bytes, off: int) -> tuple[MetricsReply, int]:
    nonce, replica, uptime = _METRICS_FIXED.unpack_from(buf, off)
    metrics, off = _r_json(buf, off + _METRICS_FIXED.size)
    return (
        MetricsReply(
            nonce=nonce,
            replica=replica,
            uptime=uptime,
            metrics={str(k): float(v) for k, v in metrics.items()},
        ),
        off,
    )


register_wire_type(
    Hello,
    "hello",
    lambda m: {"node_id": m.node_id, "role": m.role, "wire_version": m.wire_version},
    _decode_hello,
    binary=(16, _b_enc_hello, _b_dec_hello),
)
register_wire_type(
    StatusRequest,
    "status_request",
    lambda m: {"nonce": m.nonce},
    _decode_status_request,
    binary=(17, _b_enc_status_request, _b_dec_status_request),
)
register_wire_type(
    StatusReply,
    "status_reply",
    lambda m: {
        "nonce": m.nonce,
        "replica": m.replica,
        "committed": m.committed,
        "rejected": m.rejected,
        "state_digest": m.state_digest,
        "delivered_frontier": list(m.delivered_frontier),
        "view_changes": m.view_changes,
        "stage_breakdown": m.stage_breakdown,
    },
    _decode_status_reply,
    binary=(18, _b_enc_status_reply, _b_dec_status_reply),
)
register_wire_type(
    ShutdownRequest,
    "shutdown",
    lambda m: {"reason": m.reason},
    _decode_shutdown,
    binary=(19, _b_enc_shutdown, _b_dec_shutdown),
)
register_wire_type(
    MetricsRequest,
    "metrics_request",
    lambda m: {"nonce": m.nonce},
    _decode_metrics_request,
    binary=(20, _b_enc_metrics_request, _b_dec_metrics_request),
)
register_wire_type(
    RecoveryRequest,
    "recovery_request",
    lambda m: {
        "nonce": m.nonce,
        "replica": m.replica,
        "frontier": list(m.frontier),
    },
    _decode_recovery_request,
    binary=(22, _b_enc_recovery_request, _b_dec_recovery_request),
)
register_wire_type(
    RecoveryReply,
    "recovery_reply",
    lambda m: {
        "nonce": m.nonce,
        "replica": m.replica,
        "frontier": list(m.frontier),
        "views": list(m.views),
        "checkpoint_epoch": m.checkpoint_epoch,
        "checkpoint_digest": m.checkpoint_digest,
        "snapshot": m.snapshot,
        "blocks": list(m.blocks),
    },
    _decode_recovery_reply,
    binary=(23, _b_enc_recovery_reply, _b_dec_recovery_reply),
)
register_wire_type(
    LinkUpdate,
    "link_update",
    lambda m: {"nonce": m.nonce, "blocked": list(m.blocked)},
    _decode_link_update,
    binary=(24, _b_enc_link_update, _b_dec_link_update),
)
register_wire_type(
    MetricsReply,
    "metrics_reply",
    lambda m: {
        "nonce": m.nonce,
        "replica": m.replica,
        "uptime": m.uptime,
        "metrics": m.metrics,
    },
    _decode_metrics_reply,
    binary=(21, _b_enc_metrics_reply, _b_dec_metrics_reply),
)
