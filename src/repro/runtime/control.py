"""Control-plane messages used only by the live runtime.

These never appear in the simulator: connection handshakes, status probes
(used by the load generator and the cluster supervisor to read committed
counts, state digests and the latency-stage breakdown) and graceful shutdown.
They ride the same versioned wire codec as the consensus messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.runtime.codec import register_wire_type


@dataclass(frozen=True)
class Hello:
    """First frame on every connection: who is calling and in what role."""

    node_id: int
    role: str = "replica"  # "replica" | "client"


@dataclass(frozen=True)
class StatusRequest:
    """Probe a replica for its current progress (``nonce`` pairs the reply)."""

    nonce: int = 0


@dataclass(frozen=True)
class StatusReply:
    """A replica's answer to a :class:`StatusRequest`."""

    nonce: int
    replica: int
    committed: int
    rejected: int
    state_digest: str
    delivered_frontier: tuple[int, ...] = ()
    view_changes: int = 0
    stage_breakdown: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ShutdownRequest:
    """Ask a replica server to stop serving and exit cleanly."""

    reason: str = ""


def _decode_hello(data: dict[str, Any]) -> Hello:
    return Hello(node_id=int(data["node_id"]), role=data.get("role", "replica"))


def _decode_status_request(data: dict[str, Any]) -> StatusRequest:
    return StatusRequest(nonce=int(data.get("nonce", 0)))


def _decode_status_reply(data: dict[str, Any]) -> StatusReply:
    return StatusReply(
        nonce=int(data.get("nonce", 0)),
        replica=int(data["replica"]),
        committed=int(data["committed"]),
        rejected=int(data.get("rejected", 0)),
        state_digest=data["state_digest"],
        delivered_frontier=tuple(int(v) for v in data.get("delivered_frontier", [])),
        view_changes=int(data.get("view_changes", 0)),
        stage_breakdown={
            str(k): float(v) for k, v in data.get("stage_breakdown", {}).items()
        },
    )


def _decode_shutdown(data: dict[str, Any]) -> ShutdownRequest:
    return ShutdownRequest(reason=data.get("reason", ""))


register_wire_type(
    Hello,
    "hello",
    lambda m: {"node_id": m.node_id, "role": m.role},
    _decode_hello,
)
register_wire_type(
    StatusRequest,
    "status_request",
    lambda m: {"nonce": m.nonce},
    _decode_status_request,
)
register_wire_type(
    StatusReply,
    "status_reply",
    lambda m: {
        "nonce": m.nonce,
        "replica": m.replica,
        "committed": m.committed,
        "rejected": m.rejected,
        "state_digest": m.state_digest,
        "delivered_frontier": list(m.delivered_frontier),
        "view_changes": m.view_changes,
        "stage_breakdown": m.stage_breakdown,
    },
    _decode_status_reply,
)
register_wire_type(
    ShutdownRequest,
    "shutdown",
    lambda m: {"reason": m.reason},
    _decode_shutdown,
)
