"""Live cluster runtime: asyncio TCP transport, replica servers, clients.

This package hosts the same consensus code the simulator runs — the
:class:`~repro.cluster.replica.MultiBFTReplica` and its PBFT endpoints —
behind a real asyncio TCP transport, turning the reproduction into a system
that serves actual network traffic:

* :mod:`repro.runtime.codec` — versioned wire codec (canonical JSON, binary,
  batched super-frames) for every cluster and PBFT message type;
* :mod:`repro.runtime.framing` — length-prefixed frame I/O, batched
  :class:`FrameReader` and super-frame packing;
* :mod:`repro.runtime.transport` — :class:`AsyncioTransport`, the live
  implementation of :class:`~repro.net.transport.NodeTransport` (TCP or Unix
  domain sockets, coalesced writes);
* :mod:`repro.runtime.workers` — batched crypto/codec offload onto a worker
  process pool, with a same-process fallback;
* :mod:`repro.runtime.server` — :class:`ReplicaServer`, one OS process per
  replica;
* :mod:`repro.runtime.client` — :class:`OrthrusClient`, an async client with
  pipelining, ``f + 1`` reply matching and timeout/retry;
* :mod:`repro.runtime.loadgen` — closed- and open-loop load generation;
* :mod:`repro.runtime.cluster` — :class:`LocalCluster`, spawn-and-supervise a
  localhost deployment;
* :mod:`repro.runtime.chaos` — live fault injection: apply a
  :class:`~repro.cluster.faults.FaultPlan` (stragglers, scheduled crashes and
  restarts, Byzantine abstention) to a real cluster.

The simulator remains the deterministic reference; the live runtime trades
determinism for real sockets, real processes and wall-clock time (see
``docs/live_runtime.md``).
"""

from repro.runtime.chaos import (
    ChaosController,
    ChaosEvent,
    ChaosRunResult,
    fault_plan_from_json,
    fault_plan_to_json,
    run_chaos,
)
from repro.runtime.client import ClientConfig, OrthrusClient, TxResult
from repro.runtime.cluster import ClusterSpec, LocalCluster
from repro.runtime.codec import (
    WIRE_VERSION,
    WIRE_VERSION_BATCH,
    WireCodecError,
    decode_envelope,
    decode_envelopes,
    decode_payload,
    encode_envelope,
    encode_payload,
    wire_tags,
)
from repro.runtime.config import ReplicaRuntimeConfig
from repro.runtime.framing import (
    FrameError,
    FrameReader,
    encode_super_frame,
    is_super_frame,
    read_frame,
    split_super_frame,
    write_frame,
)
from repro.runtime.loadgen import LoadGenConfig, LoadGenerator, LoadReport
from repro.runtime.server import ReplicaServer
from repro.runtime.transport import AsyncioTransport, install_uvloop
from repro.runtime.workers import InlineWorkers, WorkerPool, make_worker_pool

__all__ = [
    "AsyncioTransport",
    "ChaosController",
    "ChaosEvent",
    "ChaosRunResult",
    "ClientConfig",
    "ClusterSpec",
    "fault_plan_from_json",
    "fault_plan_to_json",
    "run_chaos",
    "FrameError",
    "FrameReader",
    "InlineWorkers",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadReport",
    "LocalCluster",
    "OrthrusClient",
    "ReplicaRuntimeConfig",
    "ReplicaServer",
    "TxResult",
    "WIRE_VERSION",
    "WIRE_VERSION_BATCH",
    "WireCodecError",
    "WorkerPool",
    "decode_envelope",
    "decode_envelopes",
    "decode_payload",
    "encode_envelope",
    "encode_payload",
    "encode_super_frame",
    "install_uvloop",
    "is_super_frame",
    "make_worker_pool",
    "read_frame",
    "split_super_frame",
    "wire_tags",
    "write_frame",
]
