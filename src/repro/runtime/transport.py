"""Asyncio TCP implementation of the :class:`~repro.net.transport.NodeTransport`.

One :class:`AsyncioTransport` lives inside each replica server (and inside
each client).  It maintains one outbound connection per replica peer — opened
lazily, re-opened with backoff on failure — and a routing table of inbound
client connections registered by the hosting server.  ``send`` and
``broadcast`` are synchronous (the consensus state machine calls them from
message handlers); frames are queued and written by per-peer writer tasks.
Each writer task drains its queue in batches: every frame that is already due
is coalesced into one buffer and flushed with a single ``write`` + ``drain``,
so a burst of consensus messages costs one syscall round, not one per frame.

Wire-version negotiation: every connection opens with a v1 (canonical JSON)
``hello`` advertising the sender's highest wire version.  The hosting server
feeds advertised versions back via :meth:`note_peer_version`, and each
destination is then encoded at ``min(own, advertised)`` — struct-packed
binary (v2) between upgraded peers, canonical JSON for everyone else and for
peers whose hello has not arrived yet.  ``broadcast`` encodes once per
distinct negotiated version, not once per peer.  Peers that negotiated v3
additionally receive coalesced batches as *super-frames* (one length-prefixed
frame packing many v2 envelopes, see :mod:`repro.runtime.framing`), so a
burst costs the receiver one frame parse instead of one per message.

Endpoints whose host is ``unix:<path>`` are dialled as Unix domain sockets —
for co-located replicas this skips the TCP/IP stack entirely.

Everything runs on a single event loop, so consensus callbacks are serialised
exactly as they are under the discrete-event simulator — the state machine
needs no locks in either world.
"""

from __future__ import annotations

import asyncio
import logging
import os
import random
from typing import Any, Callable, Iterable

from repro.obs.registry import MetricsRegistry, NullRegistry
from repro.runtime.codec import (
    DEFAULT_WIRE_VERSION,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_BATCH,
    encode_envelope,
)
from repro.runtime.config import is_uds_endpoint, uds_path
from repro.runtime.control import Hello
from repro.runtime.framing import encode_frame, encode_super_frame, write_frame

logger = logging.getLogger(__name__)

#: Frames queued per peer before the oldest are dropped (backpressure cap).
OUTBOUND_QUEUE_LIMIT = 10_000

#: User-space bytes buffered towards one registered (client) stream before
#: further frames to it are dropped — a stalled client must not balloon the
#: replica's memory with unsent replies.
STREAM_BUFFER_LIMIT = 4 * 1024 * 1024

#: Frames coalesced into one write/drain round at most (bounds the burst a
#: single flush may buffer in user space).
WRITE_BATCH_LIMIT = 256

#: Reconnect backoff bounds (seconds).  Sleeps are jittered (+-50%) so the
#: heal of a partition or a mass restart does not synchronise every peer's
#: redial into one thundering herd.
RECONNECT_INITIAL = 0.05
RECONNECT_MAX = 1.0

#: Redial pause while the destination is blocked by a partition rule: there
#: is no point dialling a peer whose frames would be dropped anyway, so the
#: writer idles at this (jittered) cadence until the rule heals.
PARTITION_RETRY = 0.5

#: Payload bytes coalesced into one super-frame at most.  Well under
#: MAX_FRAME_BYTES so a batch of large blocks can never produce an
#: over-length frame.
SUPER_FRAME_BYTES_LIMIT = 8 * 1024 * 1024


async def connect_endpoint(
    endpoint: tuple[str, int],
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a stream to ``endpoint`` — TCP, or UDS for ``unix:`` hosts."""
    if is_uds_endpoint(endpoint):
        return await asyncio.open_unix_connection(uds_path(endpoint))
    host, port = endpoint
    return await asyncio.open_connection(host, port)


async def start_endpoint_server(
    client_connected_cb: Callable, endpoint: tuple[str, int]
) -> asyncio.Server:
    """Listen on ``endpoint`` — TCP, or UDS for ``unix:`` hosts."""
    if is_uds_endpoint(endpoint):
        path = uds_path(endpoint)
        try:
            os.unlink(path)  # a stale socket file would refuse the bind
        except FileNotFoundError:
            pass
        return await asyncio.start_unix_server(client_connected_cb, path)
    host, port = endpoint
    return await asyncio.start_server(client_connected_cb, host, port)


def install_uvloop() -> bool:
    """Install uvloop's event-loop policy when available.

    Opportunistic: the package is optional, so this is a silent no-op when it
    is not importable.  ``REPRO_NO_UVLOOP=1`` disables it even when installed
    (uvloop trades some debuggability and signal semantics for speed).
    Call before ``asyncio.run``.
    """
    if os.environ.get("REPRO_NO_UVLOOP"):
        return False
    try:
        import uvloop
    except ImportError:
        return False
    uvloop.install()
    return True


class LiveTimer:
    """Cancellable timer over ``loop.call_later`` (TimerHandle protocol)."""

    __slots__ = ("_handle", "active")

    def __init__(self) -> None:
        self._handle: asyncio.TimerHandle | None = None
        self.active = True

    def _arm(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def _fired(self) -> None:
        self.active = False

    def cancel(self) -> None:
        if self.active and self._handle is not None:
            self._handle.cancel()
        self.active = False


class AsyncioTransport:
    """Live NodeTransport: length-prefixed framed messages over TCP.

    With ``send_delay`` set (straggler injection), every outbound
    replica-to-replica frame becomes *due* ``send_delay`` seconds after it is
    queued and is written no earlier than that.  Frames are therefore
    uniformly late but still pipelined — added latency, not a throughput
    cap — which is how a slow-but-correct replica degrades in the paper's
    straggler experiments.
    """

    def __init__(
        self,
        node_id: int,
        peers: dict[int, tuple[str, int]],
        *,
        role: str = "replica",
        send_delay: float = 0.0,
        peer_delay: dict[int, float] | None = None,
        wire_version: int | None = None,
        registry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        self.node_id = node_id
        self.peers = dict(peers)
        self.role = role
        #: Highest wire version this transport is willing to speak.  ``None``
        #: resolves to the codec default (binary).
        if wire_version is None:
            wire_version = DEFAULT_WIRE_VERSION
        if wire_version not in SUPPORTED_WIRE_VERSIONS:
            raise ValueError(
                f"unsupported wire version {wire_version!r} "
                f"(supported: {SUPPORTED_WIRE_VERSIONS})"
            )
        self.wire_version = wire_version
        #: Chaos knob: seconds each outbound replica-to-replica frame is held
        #: before hitting the socket (straggler injection; 0.0 = healthy).
        self.send_delay = max(0.0, send_delay)
        #: WAN emulation: additional per-destination one-way delay (seconds),
        #: composing additively with ``send_delay`` on the same due-time
        #: mechanism — a straggler in a far region is late for both reasons.
        self.peer_delay: dict[int, float] = {
            peer: max(0.0, float(delay))
            for peer, delay in (peer_delay or {}).items()
        }
        #: Partition fault injection: peer ids this node must not send to.
        #: Frames towards a blocked peer are dropped — at enqueue time for
        #: new sends and at drain time for frames queued before the rule
        #: landed, so a heal never replays a stale pre-partition view.
        self.blocked: frozenset[int] = frozenset()
        #: Chaos knob: optional predicate deciding whether an outbound
        #: message may leave this node at all (Byzantine abstention drops
        #: consensus messages for instances the replica does not lead).
        #: Returning False silently discards the message.
        self.outbound_filter: Callable[[Any], bool] | None = None
        self._loop = asyncio.get_running_loop()
        #: Per-peer frame queues; entries are ``(due_time, frame)`` where
        #: ``due_time`` is 0.0 on the healthy fast path.
        self._queues: dict[int, asyncio.Queue[tuple[float, bytes]]] = {}
        self._writer_tasks: dict[int, asyncio.Task[None]] = {}
        self._streams: dict[int, asyncio.StreamWriter] = {}
        #: Frames queued towards registered (client) streams, flushed once
        #: per loop iteration so a burst of replies coalesces.
        self._stream_pending: dict[int, list[bytes]] = {}
        #: Highest wire version each peer advertised through its hello
        #: (absent peers conservatively get v1 canonical JSON).
        self._peer_versions: dict[int, int] = {}
        self._timers: list[LiveTimer] = []
        self._closed = False
        #: Observability: named registry instruments.  Transports are
        #: live-only objects, so the default is a private *real* registry —
        #: counters always count; the hosting server passes its own registry
        #: so transport instruments land in the process-wide snapshot (or the
        #: inert registry under ``--no-obs``).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_frames_sent = self.registry.counter("transport.frames_sent")
        self._c_frames_dropped = self.registry.counter("transport.frames_dropped")
        self._c_frames_filtered = self.registry.counter("transport.frames_filtered")
        self._c_frames_encoded = self.registry.counter("transport.frames_encoded")
        self._c_super_frames_sent = self.registry.counter("transport.super_frames_sent")
        self._c_bytes_out = self.registry.counter("transport.bytes_out")
        self._c_reconnects = self.registry.counter("transport.reconnects")
        self._c_partition_drops = self.registry.counter("transport.partition_drops")
        self.registry.gauge_fn(
            "transport.queue_depth",
            lambda: sum(queue.qsize() for queue in self._queues.values()),
        )
        self.registry.gauge_fn(
            "transport.queue_depth_max",
            lambda: max(
                (queue.qsize() for queue in self._queues.values()), default=0
            ),
        )

    # -- legacy counter attributes (read by tests and reports) ---------------

    @property
    def frames_sent(self) -> int:
        return self._c_frames_sent.value

    @property
    def frames_dropped(self) -> int:
        return self._c_frames_dropped.value

    @property
    def frames_filtered(self) -> int:
        return self._c_frames_filtered.value

    @property
    def frames_encoded(self) -> int:
        """Envelope encodings performed (a broadcast encodes once per
        distinct negotiated peer version, not once per destination)."""
        return self._c_frames_encoded.value

    @property
    def super_frames_sent(self) -> int:
        """Super-frames written (each carries >= 2 logical frames)."""
        return self._c_super_frames_sent.value

    @property
    def bytes_out(self) -> int:
        """Framed bytes handed to sockets (peers and client streams)."""
        return self._c_bytes_out.value

    @property
    def reconnects(self) -> int:
        """Peer connections re-established after a loss."""
        return self._c_reconnects.value

    @property
    def partition_drops(self) -> int:
        """Frames dropped because their destination was partition-blocked."""
        return self._c_partition_drops.value

    # -- partition fault injection -------------------------------------------

    def set_blocked_peers(self, blocked: Iterable[int]) -> None:
        """Replace the blocked-peer set (absolute, not a delta).

        Frames already queued towards a newly blocked peer are purged on the
        spot: the partition semantics are "the network dropped it", so a
        heal must not flush a backlog of stale pre-partition traffic (old
        views, superseded proposals) into the reconnected peer.
        """
        new_blocked = frozenset(int(peer) for peer in blocked)
        for peer_id in new_blocked - self.blocked:
            queue = self._queues.get(peer_id)
            purged = 0
            while queue is not None:
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                purged += 1
            if purged:
                self._c_partition_drops.inc(purged)
        self.blocked = new_blocked

    # -- clock --------------------------------------------------------------

    def now(self) -> float:
        """Raw monotonic clock (``loop.time()``).

        Deliberately *not* normalised to transport start: on a single host
        every process reads the same CLOCK_MONOTONIC, so client- and
        replica-side timestamps are directly comparable and the five-stage
        latency breakdown can span processes.  Across hosts the breakdown's
        cross-machine stages (send, reply) are only as good as the hosts'
        clock synchronisation.
        """
        return self._loop.time()

    # -- wire-version negotiation --------------------------------------------

    def note_peer_version(self, node_id: int, version: int) -> None:
        """Record the wire version ``node_id`` advertised in its hello."""
        self._peer_versions[node_id] = max(1, int(version))

    def version_for(self, destination: int) -> int:
        """Wire version to encode with for ``destination`` (min of the two
        sides; v1 until the peer's hello has been observed)."""
        return min(self.wire_version, self._peer_versions.get(destination, WIRE_VERSION))

    # -- timers -------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], Any]) -> LiveTimer:
        """Schedule ``callback`` on the event loop after ``delay`` seconds."""
        timer = LiveTimer()

        def fire() -> None:
            timer._fired()
            if not self._closed:
                callback()

        timer._arm(self._loop.call_later(max(0.0, delay), fire))
        self._timers.append(timer)
        if len(self._timers) > 256:
            self._timers = [t for t in self._timers if t.active]
        return timer

    def cancel_timers(self) -> None:
        """Cancel every timer set through this transport and still pending."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # -- sending ------------------------------------------------------------

    def _encode(self, message: Any, version: int) -> bytes:
        self._c_frames_encoded.inc()
        return encode_envelope(self.node_id, message, version=version)

    def send(self, destination: int, message: Any) -> None:
        """Queue ``message`` for ``destination`` (peer or registered stream)."""
        if self._closed:
            return
        if self.outbound_filter is not None and not self.outbound_filter(message):
            self._c_frames_filtered.inc()
            return
        # Resolve the route before encoding: a dead destination or a closed
        # transport must not pay for serialisation.
        if destination in self.peers:
            if destination in self.blocked:
                # Partitioned link: the frame is what the network dropped.
                self._c_partition_drops.inc()
                return
            queue = self._ensure_peer(destination)
            frame = self._encode(message, self.version_for(destination))
            if queue.full():
                # Drop-oldest keeps the writer from wedging the state machine
                # when a peer is down; PBFT tolerates message loss (retransmit
                # comes from view change / re-proposal).
                queue.get_nowait()
                self._c_frames_dropped.inc()
            queue.put_nowait((self._due_time(destination), frame))
        elif destination in self._streams:
            self._write_to_stream(
                destination, self._encode(message, self.version_for(destination))
            )
        else:
            self._c_frames_dropped.inc()

    def _due_time(self, destination: int) -> float:
        """Earliest write time for a frame queued now for ``destination``
        (0.0 = immediately).  Straggler delay and the destination's WAN
        delay compose additively on the same mechanism."""
        delay = self.send_delay + self.peer_delay.get(destination, 0.0)
        if delay <= 0.0:
            return 0.0
        return self._loop.time() + delay

    def broadcast(self, message: Any, include_self: bool = False) -> None:
        """Send ``message`` to every replica peer (not to client streams)."""
        if self._closed:
            return
        if self.outbound_filter is not None and not self.outbound_filter(message):
            self._c_frames_filtered.inc()
            return
        targets = [
            peer_id
            for peer_id in self.peers
            if include_self or peer_id != self.node_id
        ]
        if not targets:
            return
        frames: dict[int, bytes] = {}
        for peer_id in targets:
            if peer_id in self.blocked:
                self._c_partition_drops.inc()
                continue
            version = self.version_for(peer_id)
            frame = frames.get(version)
            if frame is None:
                frame = frames[version] = self._encode(message, version)
            queue = self._ensure_peer(peer_id)
            if queue.full():
                queue.get_nowait()
                self._c_frames_dropped.inc()
            # Due times are per destination: under WAN emulation one
            # broadcast lands at different regions at different times.
            queue.put_nowait((self._due_time(peer_id), frame))

    def _write_to_stream(self, destination: int, frame: bytes) -> None:
        # Defer the actual write one loop iteration: every reply generated
        # by the current callback burst lands in one flush (and, for v3
        # clients, one super-frame) instead of one syscall per reply.
        pending = self._stream_pending.get(destination)
        if pending is None:
            self._stream_pending[destination] = [frame]
            self._loop.call_soon(self._flush_stream, destination)
        else:
            pending.append(frame)

    def _flush_stream(self, destination: int) -> None:
        frames = self._stream_pending.pop(destination, None)
        if not frames or self._closed:
            return
        writer = self._streams.get(destination)
        if writer is None or writer.is_closing():
            self._streams.pop(destination, None)
            self._c_frames_dropped.inc(len(frames))
            return
        if writer.transport.get_write_buffer_size() > STREAM_BUFFER_LIMIT:
            # The client stopped reading; drop rather than buffer without
            # bound (it can recover the result by retransmitting).
            self._c_frames_dropped.inc(len(frames))
            return
        if (
            len(frames) > 1
            and self.version_for(destination) >= WIRE_VERSION_BATCH
            and sum(map(len, frames)) <= SUPER_FRAME_BYTES_LIMIT
        ):
            buffer = encode_frame(encode_super_frame(frames))
            writer.write(buffer)
            self._c_super_frames_sent.inc()
        else:
            buffer = b"".join(map(encode_frame, frames))
            writer.write(buffer)
        self._c_frames_sent.inc(len(frames))
        self._c_bytes_out.inc(len(buffer))

    # -- inbound stream registry (clients replying over their own socket) ----

    def register_stream(self, node_id: int, writer: asyncio.StreamWriter) -> None:
        """Route future sends to ``node_id`` over an inbound connection."""
        self._streams[node_id] = writer

    def unregister_stream(self, node_id: int) -> None:
        if node_id in self._streams:
            del self._streams[node_id]
        self._stream_pending.pop(node_id, None)
        self._peer_versions.pop(node_id, None)

    # -- outbound connections ------------------------------------------------

    def _ensure_peer(self, peer_id: int) -> "asyncio.Queue[tuple[float, bytes]]":
        queue = self._queues.get(peer_id)
        if queue is None:
            queue = asyncio.Queue(maxsize=OUTBOUND_QUEUE_LIMIT)
            self._queues[peer_id] = queue
            self._writer_tasks[peer_id] = self._loop.create_task(
                self._peer_writer(peer_id, queue)
            )
        return queue

    async def _peer_writer(
        self, peer_id: int, queue: "asyncio.Queue[tuple[float, bytes]]"
    ) -> None:
        """Connect to one peer (with backoff) and drain its frame queue.

        The drain is batched: after blocking for the first due frame, every
        further frame that is already due is appended to the same buffer, and
        the whole batch goes out with one ``write`` + ``drain``.  A frame
        whose due time is still in the future is carried over to the next
        round so straggler delays stay per-frame accurate.
        """
        endpoint = self.peers[peer_id]
        backoff = RECONNECT_INITIAL
        carry: tuple[float, bytes] | None = None
        connected_before = False
        while not self._closed:
            if peer_id in self.blocked:
                # An active partition rule covers this link: do not redial a
                # peer whose frames would be dropped anyway (a tight dial
                # loop here is exactly the heal-time reconnect storm), just
                # purge whatever queued meanwhile and idle with jitter.
                purged = 0
                while True:
                    try:
                        queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    purged += 1
                if carry is not None:
                    carry = None
                    purged += 1
                if purged:
                    self._c_partition_drops.inc(purged)
                await asyncio.sleep(PARTITION_RETRY * (0.5 + random.random()))
                continue
            try:
                reader, writer = await connect_endpoint(endpoint)
            except OSError:
                # Jittered exponential backoff: after a heal or mass restart
                # every writer in the mesh wakes at once; the jitter spreads
                # the redials so the listener is not stampeded.
                await asyncio.sleep(backoff * (0.5 + random.random()))
                backoff = min(backoff * 2, RECONNECT_MAX)
                continue
            backoff = RECONNECT_INITIAL
            if connected_before:
                self._c_reconnects.inc()
            connected_before = True
            try:
                # The hello is always canonical JSON (v1): it is the frame
                # that *carries* the version negotiation, so it must be
                # decodable by any peer.
                await write_frame(
                    writer,
                    encode_envelope(
                        self.node_id,
                        Hello(self.node_id, self.role, self.wire_version),
                    ),
                )
                while not self._closed:
                    if carry is not None:
                        due, frame = carry
                        carry = None
                    else:
                        due, frame = await queue.get()
                    if peer_id in self.blocked:
                        # The partition rule landed mid-connection: drop the
                        # frame and sever the link; the outer loop idles until
                        # the rule heals.
                        self._c_partition_drops.inc()
                        break
                    if due > 0.0:
                        # Straggler injection: honour the frame's due time.
                        # Frames queued while this one waited share the same
                        # wait, so the delay pipelines (uniform added
                        # latency) instead of capping throughput.
                        remaining = due - self._loop.time()
                        if remaining > 0:
                            await asyncio.sleep(remaining)
                    batch = [frame]
                    batch_bytes = len(frame)
                    while len(batch) < WRITE_BATCH_LIMIT:
                        try:
                            next_due, next_frame = queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        if (next_due > 0.0 and next_due > self._loop.time()) or (
                            batch_bytes + len(next_frame) > SUPER_FRAME_BYTES_LIMIT
                        ):
                            # Not yet due (straggler delay) or the batch is
                            # full by bytes: carry into the next round.
                            carry = (next_due, next_frame)
                            break
                        batch.append(next_frame)
                        batch_bytes += len(next_frame)
                    if (
                        len(batch) > 1
                        and self.version_for(peer_id) >= WIRE_VERSION_BATCH
                    ):
                        buffer = encode_frame(encode_super_frame(batch))
                        self._c_super_frames_sent.inc()
                    else:
                        buffer = b"".join(map(encode_frame, batch))
                    writer.write(buffer)
                    self._c_frames_sent.inc(len(batch))
                    self._c_bytes_out.inc(len(buffer))
                    await writer.drain()
            except (OSError, ConnectionError, asyncio.CancelledError) as exc:
                if isinstance(exc, asyncio.CancelledError):
                    raise
                logger.debug("node %d lost connection to peer %d", self.node_id, peer_id)
            finally:
                writer.close()

    # -- shutdown -------------------------------------------------------------

    async def close(self) -> None:
        """Cancel timers and writer tasks, close all outbound connections."""
        self._closed = True
        self.cancel_timers()
        for task in self._writer_tasks.values():
            task.cancel()
        await asyncio.gather(*self._writer_tasks.values(), return_exceptions=True)
        self._writer_tasks.clear()
        self._queues.clear()
        self._streams.clear()
        self._stream_pending.clear()
