"""Versioned wire codec for all cluster and PBFT messages.

Two wire versions share one type registry:

**v1 — canonical JSON** (the compatibility format).  Every message is a
canonical JSON envelope::

    {"v": 1, "t": "<type tag>", "s": <sender node id>, "p": {...payload...}}

``v`` is the wire protocol version, ``t`` identifies the payload type, ``s``
is the sending node and ``p`` carries the message fields.  Canonical means
sorted keys and compact separators, so the byte rendering of a message is
stable across processes and Python versions (the same property the digest
layer relies on).

Forward compatibility (v1): decoders read the fields they know and **ignore
unknown fields** at every level (envelope and payload), so a newer peer can
add fields without breaking older ones.  An unknown type tag or a different
wire version is an error — those are protocol-level incompatibilities the
caller must surface, not skate over silently.

**v2 — struct-packed binary** (the performance format).  A fixed header
``magic(0xB2) version(2) mode sender(i64)`` followed by either a *native*
payload (one-byte type id, then positional struct-packed fields) or, for
message types registered without a binary codec, the v1 canonical-JSON
payload embedded verbatim (``mode`` distinguishes the two).  Binary frames
decode to values **identical** to what the JSON codec would have produced
(property-tested in ``tests/properties/test_wire_codec.py``).  The native
layout is positional, so it is *not* field-extensible — incompatible changes
bump the version and peers fall back to v1 through the ``hello`` handshake's
``wire_version`` field (see :mod:`repro.runtime.transport`).

Frames from either version are distinguishable from their first byte (JSON
always starts with ``{``, binary with the 0xB2 magic), so
:func:`decode_envelope` accepts both regardless of what this node sends.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable

from repro.cluster.messages import ClientReply, ClientRequest
from repro.errors import NetworkError
from repro.runtime.framing import SUPER_FRAME_MAGIC, FrameError, split_super_frame
from repro.ledger.blocks import Block, SystemState
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind
from repro.ledger.transactions import Transaction, TransactionType
from repro.crypto.signatures import Signature
from repro.sb.pbft.messages import (
    CheckpointMessage,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    ViewChange,
)

#: Canonical-JSON wire version (the compatibility fallback every node speaks).
WIRE_VERSION = 1

#: Struct-packed binary wire version.
WIRE_VERSION_BINARY = 2

#: Batched-framing wire version.  A v3 envelope is byte-identical to a v2
#: envelope; what v3 adds is the *framing-level* super-frame (see
#: :mod:`repro.runtime.framing`), which packs many envelopes into one
#: length-prefixed frame.  Negotiating v3 therefore only signals "you may
#: coalesce frames to me" — the codec itself is unchanged, and a v3 node
#: falls back to one-envelope-per-frame v2/v1 for older peers.
WIRE_VERSION_BATCH = 3

#: Versions this node can decode.
SUPPORTED_WIRE_VERSIONS = (WIRE_VERSION, WIRE_VERSION_BINARY, WIRE_VERSION_BATCH)

#: Version transports prefer when the peer advertises support for it.
DEFAULT_WIRE_VERSION = WIRE_VERSION_BATCH


class WireCodecError(NetworkError):
    """A frame could not be encoded or decoded."""


# -- leaf encoders/decoders -------------------------------------------------


def _encode_operation(op: ObjectOperation) -> dict[str, Any]:
    return {
        "key": op.key,
        "kind": op.kind.value,
        "amount": op.amount,
        "object_type": op.object_type.value,
    }


def _decode_operation(data: dict[str, Any]) -> ObjectOperation:
    return ObjectOperation(
        key=data["key"],
        kind=OperationKind(data["kind"]),
        amount=int(data["amount"]),
        object_type=ObjectType(data["object_type"]),
    )


def _encode_signature(signature: Signature) -> dict[str, Any]:
    return {
        "signer": signature.signer,
        "message_digest": signature.message_digest,
        "value": signature.value,
    }


def _decode_signature(data: dict[str, Any]) -> Signature:
    return Signature(
        signer=data["signer"],
        message_digest=data["message_digest"],
        value=data["value"],
    )


def _encode_transaction(tx: Transaction) -> dict[str, Any]:
    return {
        "tx_id": tx.tx_id,
        "operations": [_encode_operation(op) for op in tx.operations],
        "tx_type": tx.tx_type.value,
        "payload_size": tx.payload_size,
        "client_id": tx.client_id,
        "signatures": {
            holder: _encode_signature(sig) for holder, sig in tx.signatures.items()
        },
        "submitted_at": tx.submitted_at,
        "metadata": tx.metadata,
    }


def _decode_transaction(data: dict[str, Any]) -> Transaction:
    return Transaction(
        tx_id=data["tx_id"],
        operations=tuple(_decode_operation(op) for op in data["operations"]),
        tx_type=TransactionType(data["tx_type"]),
        payload_size=int(data.get("payload_size", 0)),
        client_id=data.get("client_id"),
        signatures={
            holder: _decode_signature(sig)
            for holder, sig in data.get("signatures", {}).items()
        },
        submitted_at=data.get("submitted_at"),
        metadata=dict(data.get("metadata", {})),
    )


def _encode_block(block: Block) -> dict[str, Any]:
    return {
        "instance": block.instance,
        "sequence_number": block.sequence_number,
        "transactions": [_encode_transaction(tx) for tx in block.transactions],
        "state": list(block.state.sequence_numbers),
        "proposer": block.proposer,
        "epoch": block.epoch,
        "rank": block.rank,
        "signature": (
            _encode_signature(block.signature) if block.signature is not None else None
        ),
        "metadata": block.metadata,
    }


def _decode_block(data: dict[str, Any]) -> Block:
    signature = data.get("signature")
    return Block(
        instance=int(data["instance"]),
        sequence_number=int(data["sequence_number"]),
        transactions=tuple(_decode_transaction(tx) for tx in data["transactions"]),
        state=SystemState(tuple(int(v) for v in data["state"])),
        proposer=int(data["proposer"]),
        epoch=int(data.get("epoch", 0)),
        rank=data.get("rank"),
        signature=_decode_signature(signature) if signature is not None else None,
        metadata=dict(data.get("metadata", {})),
    )


def _encode_block_pairs(pairs: tuple[tuple[int, Block], ...]) -> list[list[Any]]:
    return [[sn, _encode_block(block)] for sn, block in pairs]


def _decode_block_pairs(data: list[Any]) -> tuple[tuple[int, Block], ...]:
    return tuple((int(sn), _decode_block(block)) for sn, block in data)


# -- message payloads -------------------------------------------------------


def _encode_client_request(msg: ClientRequest) -> dict[str, Any]:
    return {"tx": _encode_transaction(msg.tx), "client_node": msg.client_node}


def _decode_client_request(data: dict[str, Any]) -> ClientRequest:
    return ClientRequest(
        tx=_decode_transaction(data["tx"]), client_node=int(data["client_node"])
    )


def _encode_client_reply(msg: ClientReply) -> dict[str, Any]:
    return {
        "tx_id": msg.tx_id,
        "replica": msg.replica,
        "committed": msg.committed,
        "confirmed_at": msg.confirmed_at,
    }


def _decode_client_reply(data: dict[str, Any]) -> ClientReply:
    return ClientReply(
        tx_id=data["tx_id"],
        replica=int(data["replica"]),
        committed=bool(data["committed"]),
        confirmed_at=data.get("confirmed_at"),
    )


def _pbft_header(msg: Any) -> dict[str, Any]:
    return {"instance": msg.instance, "view": msg.view, "sender": msg.sender}


def _encode_pre_prepare(msg: PrePrepare) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "sequence_number": msg.sequence_number,
        "block": _encode_block(msg.block) if msg.block is not None else None,
        "digest": msg.digest,
    }


def _decode_pre_prepare(data: dict[str, Any]) -> PrePrepare:
    block = data.get("block")
    return PrePrepare(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        sequence_number=int(data["sequence_number"]),
        block=_decode_block(block) if block is not None else None,
        digest=data.get("digest", ""),
    )


def _encode_prepare(msg: Prepare) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "sequence_number": msg.sequence_number,
        "digest": msg.digest,
    }


def _decode_prepare(data: dict[str, Any]) -> Prepare:
    return Prepare(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        sequence_number=int(data["sequence_number"]),
        digest=data.get("digest", ""),
    )


def _encode_commit(msg: Commit) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "sequence_number": msg.sequence_number,
        "digest": msg.digest,
    }


def _decode_commit(data: dict[str, Any]) -> Commit:
    return Commit(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        sequence_number=int(data["sequence_number"]),
        digest=data.get("digest", ""),
    )


def _encode_view_change(msg: ViewChange) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "last_delivered": msg.last_delivered,
        "pending": _encode_block_pairs(msg.pending),
    }


def _decode_view_change(data: dict[str, Any]) -> ViewChange:
    return ViewChange(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        last_delivered=int(data.get("last_delivered", -1)),
        pending=_decode_block_pairs(data.get("pending", [])),
    )


def _encode_new_view(msg: NewView) -> dict[str, Any]:
    return {**_pbft_header(msg), "reproposals": _encode_block_pairs(msg.reproposals)}


def _decode_new_view(data: dict[str, Any]) -> NewView:
    return NewView(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        reproposals=_decode_block_pairs(data.get("reproposals", [])),
    )


def _encode_checkpoint(msg: CheckpointMessage) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "epoch": msg.epoch,
        "state_digest": msg.state_digest,
    }


def _decode_checkpoint(data: dict[str, Any]) -> CheckpointMessage:
    return CheckpointMessage(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        epoch=int(data.get("epoch", 0)),
        state_digest=data.get("state_digest", ""),
    )


#: Type registry: message class -> (tag, encoder) and tag -> decoder.
_ENCODERS: dict[type, tuple[str, Callable[[Any], dict[str, Any]]]] = {
    ClientRequest: ("client_request", _encode_client_request),
    ClientReply: ("client_reply", _encode_client_reply),
    PrePrepare: ("pre_prepare", _encode_pre_prepare),
    Prepare: ("prepare", _encode_prepare),
    Commit: ("commit", _encode_commit),
    ViewChange: ("view_change", _encode_view_change),
    NewView: ("new_view", _encode_new_view),
    CheckpointMessage: ("checkpoint", _encode_checkpoint),
}

_DECODERS: dict[str, Callable[[dict[str, Any]], Any]] = {
    "client_request": _decode_client_request,
    "client_reply": _decode_client_reply,
    "pre_prepare": _decode_pre_prepare,
    "prepare": _decode_prepare,
    "commit": _decode_commit,
    "view_change": _decode_view_change,
    "new_view": _decode_new_view,
    "checkpoint": _decode_checkpoint,
}


def register_wire_type(
    cls: type,
    tag: str,
    encoder: Callable[[Any], dict[str, Any]],
    decoder: Callable[[dict[str, Any]], Any],
    *,
    binary: tuple[int, Callable[[list[bytes], Any], None], Callable[[bytes, int], tuple[Any, int]]]
    | None = None,
) -> None:
    """Register an additional message type (used by the control plane).

    ``binary`` optionally supplies ``(type_id, encode, decode)`` for a native
    v2 layout; types registered without one still travel over v2 connections,
    with their canonical-JSON payload embedded in the binary envelope.
    """
    _ENCODERS[cls] = (tag, encoder)
    _DECODERS[tag] = decoder
    if binary is not None:
        type_id, binary_encoder, binary_decoder = binary
        _register_binary(cls, type_id, binary_encoder, binary_decoder)


def wire_tags() -> list[str]:
    """All registered type tags (sorted, for introspection and tests)."""
    return sorted(_DECODERS)


# -- binary (v2) primitives ---------------------------------------------------

#: First byte of every binary frame.  Can never collide with JSON frames,
#: which always start with ``{`` (0x7B).
_BINARY_MAGIC = 0xB2

#: Binary payload modes.
_MODE_EMBEDDED_JSON = 0
_MODE_NATIVE = 1

_HEADER = struct.Struct(">BBBq")  # magic, version, mode, sender
_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_B_TX_FIXED = struct.Struct(">BI")  # tx_type index, payload_size
_B_OPERATION = struct.Struct(">BqB")  # kind index, amount, object_type index
_B_BLOCK_FIXED = struct.Struct(">qqqq")  # instance, sn, proposer, epoch
_B_PBFT_HEADER = struct.Struct(">qqq")  # instance, view, sender

# Stable enum orderings for the positional layout (indices are wire format —
# append only, never reorder).  Encoders map members to indices with ``is``
# chains rather than dict lookups: Enum hashing is Python-level and slow.
_OP_KINDS = (
    OperationKind.INCREMENT,
    OperationKind.DECREMENT,
    OperationKind.ASSIGN,
    OperationKind.READ,
    OperationKind.CONTRACT_CALL,
)
_OBJ_TYPES = (ObjectType.OWNED, ObjectType.SHARED)
_TX_TYPES = (TransactionType.PAYMENT, TransactionType.CONTRACT)


#: Decoder-private fast constructors: a frozen dataclass pays one
#: ``object.__setattr__`` per field in ``__init__``; building the instance
#: dict directly skips that at ~4x the speed.  Only the binary decoders use
#: these, and the round-trip property tests pin the results field-for-field
#: against the regular constructors.
_new_operation = ObjectOperation.__new__
_new_transaction = Transaction.__new__


def _make_operation(
    key: str, kind: OperationKind, amount: int, object_type: ObjectType
) -> ObjectOperation:
    op = _new_operation(ObjectOperation)
    # In-place dict update: rebinding ``__dict__`` itself would be routed
    # through the frozen dataclass ``__setattr__`` and refused.
    op.__dict__.update(
        key=key, kind=kind, amount=amount, object_type=object_type
    )
    return op


def _make_transaction(
    tx_id: str,
    operations: tuple[ObjectOperation, ...],
    tx_type: TransactionType,
    payload_size: int,
    client_id: str | None,
    signatures: dict[str, Signature],
    submitted_at: float | None,
    metadata: dict[str, Any],
) -> Transaction:
    tx = _new_transaction(Transaction)
    tx.__dict__ = {
        "tx_id": tx_id,
        "operations": operations,
        "tx_type": tx_type,
        "payload_size": payload_size,
        "client_id": client_id,
        "signatures": signatures,
        "submitted_at": submitted_at,
        "metadata": metadata,
    }
    return tx


def _w_str(out: list[bytes], value: str) -> None:
    data = value.encode("utf-8")
    out.append(_U32.pack(len(data)))
    out.append(data)


def _r_str(buf: bytes, off: int) -> tuple[str, int]:
    (length,) = _U32.unpack_from(buf, off)
    off += 4
    end = off + length
    return buf[off:end].decode("utf-8"), end


#: Pre-rendered empty dict — the overwhelmingly common case for metadata
#: and stage-breakdown maps, fast-pathed on both sides.
_EMPTY_JSON_DICT = _U32.pack(2) + b"{}"
_U32_ZERO = _U32.pack(0)


def _w_json(out: list[bytes], value: dict[str, Any]) -> None:
    """Length-prefixed canonical JSON (used for free-form dict fields)."""
    if not value:
        out.append(_EMPTY_JSON_DICT)
        return
    data = json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    out.append(_U32.pack(len(data)))
    out.append(data)


def _r_json(buf: bytes, off: int) -> tuple[Any, int]:
    (length,) = _U32.unpack_from(buf, off)
    off += 4
    end = off + length
    if length == 2 and buf[off:end] == b"{}":
        return {}, end
    return json.loads(buf[off:end].decode("utf-8")), end


def _w_signature(out: list[bytes], signature: Signature) -> None:
    _w_str(out, signature.signer)
    _w_str(out, signature.message_digest)
    _w_str(out, signature.value)


def _r_signature(buf: bytes, off: int) -> tuple[Signature, int]:
    signer, off = _r_str(buf, off)
    message_digest, off = _r_str(buf, off)
    value, off = _r_str(buf, off)
    return Signature(signer=signer, message_digest=message_digest, value=value), off


def _b_enc_transaction(out: list[bytes], tx: Transaction) -> None:
    # The single hottest encoder (every block carries dozens): string writes
    # are inlined rather than routed through _w_str.
    append = out.append
    pack_u32 = _U32.pack
    data = tx.tx_id.encode("utf-8")
    append(pack_u32(len(data)))
    append(data)
    append(
        _B_TX_FIXED.pack(
            0 if tx.tx_type is TransactionType.PAYMENT else 1, tx.payload_size
        )
    )
    if tx.client_id is None:
        append(b"\x00")
    else:
        append(b"\x01")
        data = tx.client_id.encode("utf-8")
        append(pack_u32(len(data)))
        append(data)
    if tx.submitted_at is None:
        append(b"\x00")
    else:
        append(b"\x01")
        append(_F64.pack(tx.submitted_at))
    append(pack_u32(len(tx.operations)))
    pack_op = _B_OPERATION.pack
    # Identity chains instead of dict lookups: Enum.__hash__ and the .value
    # descriptor are Python-level and dominate tight encode loops, while
    # ``is`` against the interned members is a pointer comparison (ordered
    # by payment-path frequency).
    kind_increment = OperationKind.INCREMENT
    kind_decrement = OperationKind.DECREMENT
    kind_assign = OperationKind.ASSIGN
    kind_read = OperationKind.READ
    type_owned = ObjectType.OWNED
    for op in tx.operations:
        data = op.key.encode("utf-8")
        append(pack_u32(len(data)))
        append(data)
        kind = op.kind
        kind_id = (
            0
            if kind is kind_increment
            else 1
            if kind is kind_decrement
            else 2
            if kind is kind_assign
            else 3
            if kind is kind_read
            else 4
        )
        append(
            pack_op(kind_id, op.amount, 0 if op.object_type is type_owned else 1)
        )
    if tx.signatures:
        append(pack_u32(len(tx.signatures)))
        for holder, signature in tx.signatures.items():
            _w_str(out, holder)
            _w_signature(out, signature)
    else:
        append(_U32_ZERO)
    metadata = tx.metadata
    if metadata:
        _w_json(out, metadata)
    else:
        append(_EMPTY_JSON_DICT)


def _b_dec_transaction(buf: bytes, off: int) -> tuple[Transaction, int]:
    unpack_u32 = _U32.unpack_from
    (length,) = unpack_u32(buf, off)
    off += 4
    end = off + length
    tx_id = buf[off:end].decode("utf-8")
    off = end
    tx_type_index, payload_size = _B_TX_FIXED.unpack_from(buf, off)
    off += _B_TX_FIXED.size
    client_id: str | None = None
    if buf[off]:
        client_id, off = _r_str(buf, off + 1)
    else:
        off += 1
    submitted_at: float | None = None
    if buf[off]:
        (submitted_at,) = _F64.unpack_from(buf, off + 1)
        off += 1 + 8
    else:
        off += 1
    (op_count,) = unpack_u32(buf, off)
    off += 4
    operations = []
    add_operation = operations.append
    unpack_op = _B_OPERATION.unpack_from
    op_size = _B_OPERATION.size
    for _ in range(op_count):
        (length,) = unpack_u32(buf, off)
        off += 4
        end = off + length
        key = buf[off:end].decode("utf-8")
        off = end
        kind_index, amount, type_index = unpack_op(buf, off)
        off += op_size
        add_operation(
            _make_operation(key, _OP_KINDS[kind_index], amount, _OBJ_TYPES[type_index])
        )
    (sig_count,) = unpack_u32(buf, off)
    off += 4
    signatures: dict[str, Signature] = {}
    for _ in range(sig_count):
        holder, off = _r_str(buf, off)
        signatures[holder], off = _r_signature(buf, off)
    if buf[off : off + 6] == _EMPTY_JSON_DICT:
        metadata: dict[str, Any] = {}
        off += 6
    else:
        metadata, off = _r_json(buf, off)
    return (
        _make_transaction(
            tx_id,
            tuple(operations),
            _TX_TYPES[tx_type_index],
            payload_size,
            client_id,
            signatures,
            submitted_at,
            metadata,
        ),
        off,
    )


def _b_enc_block(out: list[bytes], block: Block) -> None:
    out.append(
        _B_BLOCK_FIXED.pack(
            block.instance, block.sequence_number, block.proposer, block.epoch
        )
    )
    if block.rank is None:
        out.append(b"\x00")
    else:
        out.append(b"\x01")
        out.append(_I64.pack(block.rank))
    state = block.state.sequence_numbers
    out.append(_U32.pack(len(state)))
    out.append(struct.pack(f">{len(state)}q", *state))
    if block.signature is None:
        out.append(b"\x00")
    else:
        out.append(b"\x01")
        _w_signature(out, block.signature)
    _w_json(out, block.metadata)
    out.append(_U32.pack(len(block.transactions)))
    for tx in block.transactions:
        _b_enc_transaction(out, tx)


def _b_dec_block(buf: bytes, off: int) -> tuple[Block, int]:
    instance, sequence_number, proposer, epoch = _B_BLOCK_FIXED.unpack_from(buf, off)
    off += _B_BLOCK_FIXED.size
    rank: int | None = None
    if buf[off]:
        (rank,) = _I64.unpack_from(buf, off + 1)
        off += 1 + 8
    else:
        off += 1
    (state_len,) = _U32.unpack_from(buf, off)
    off += 4
    state = struct.unpack_from(f">{state_len}q", buf, off)
    off += 8 * state_len
    signature: Signature | None = None
    if buf[off]:
        signature, off = _r_signature(buf, off + 1)
    else:
        off += 1
    metadata, off = _r_json(buf, off)
    (tx_count,) = _U32.unpack_from(buf, off)
    off += 4
    transactions = []
    for _ in range(tx_count):
        tx, off = _b_dec_transaction(buf, off)
        transactions.append(tx)
    return (
        Block(
            instance=instance,
            sequence_number=sequence_number,
            transactions=tuple(transactions),
            state=SystemState(state),
            proposer=proposer,
            epoch=epoch,
            rank=rank,
            signature=signature,
            metadata=metadata,
        ),
        off,
    )


def _w_opt_block(out: list[bytes], block: Block | None) -> None:
    if block is None:
        out.append(b"\x00")
    else:
        out.append(b"\x01")
        _b_enc_block(out, block)


def _r_opt_block(buf: bytes, off: int) -> tuple[Block | None, int]:
    if buf[off]:
        return _b_dec_block(buf, off + 1)
    return None, off + 1


def _w_block_pairs(out: list[bytes], pairs: tuple[tuple[int, Block], ...]) -> None:
    out.append(_U32.pack(len(pairs)))
    for sequence_number, block in pairs:
        out.append(_I64.pack(sequence_number))
        _b_enc_block(out, block)


def _r_block_pairs(buf: bytes, off: int) -> tuple[tuple[tuple[int, Block], ...], int]:
    (count,) = _U32.unpack_from(buf, off)
    off += 4
    pairs = []
    for _ in range(count):
        (sequence_number,) = _I64.unpack_from(buf, off)
        block, off = _b_dec_block(buf, off + 8)
        pairs.append((sequence_number, block))
    return tuple(pairs), off


# -- binary (v2) message layouts ----------------------------------------------


def _b_enc_client_request(out: list[bytes], msg: ClientRequest) -> None:
    out.append(_I64.pack(msg.client_node))
    _b_enc_transaction(out, msg.tx)


def _b_dec_client_request(buf: bytes, off: int) -> tuple[ClientRequest, int]:
    (client_node,) = _I64.unpack_from(buf, off)
    tx, off = _b_dec_transaction(buf, off + 8)
    return ClientRequest(tx=tx, client_node=client_node), off


def _b_enc_client_reply(out: list[bytes], msg: ClientReply) -> None:
    _w_str(out, msg.tx_id)
    out.append(_I64.pack(msg.replica))
    out.append(b"\x01" if msg.committed else b"\x00")
    if msg.confirmed_at is None:
        out.append(b"\x00")
    else:
        out.append(b"\x01")
        out.append(_F64.pack(msg.confirmed_at))


def _b_dec_client_reply(buf: bytes, off: int) -> tuple[ClientReply, int]:
    tx_id, off = _r_str(buf, off)
    (replica,) = _I64.unpack_from(buf, off)
    off += 8
    committed = bool(buf[off])
    off += 1
    confirmed_at: float | None = None
    if buf[off]:
        (confirmed_at,) = _F64.unpack_from(buf, off + 1)
        off += 1 + 8
    else:
        off += 1
    return (
        ClientReply(
            tx_id=tx_id, replica=replica, committed=committed, confirmed_at=confirmed_at
        ),
        off,
    )


_B_PBFT_WITH_SN = struct.Struct(">qqqq")  # instance, view, sender, sequence_number


def _b_enc_pre_prepare(out: list[bytes], msg: PrePrepare) -> None:
    out.append(
        _B_PBFT_WITH_SN.pack(msg.instance, msg.view, msg.sender, msg.sequence_number)
    )
    _w_opt_block(out, msg.block)
    _w_str(out, msg.digest)


def _b_dec_pre_prepare(buf: bytes, off: int) -> tuple[PrePrepare, int]:
    instance, view, sender, sequence_number = _B_PBFT_WITH_SN.unpack_from(buf, off)
    block, off = _r_opt_block(buf, off + _B_PBFT_WITH_SN.size)
    digest, off = _r_str(buf, off)
    return (
        PrePrepare(
            instance=instance,
            view=view,
            sender=sender,
            sequence_number=sequence_number,
            block=block,
            digest=digest,
        ),
        off,
    )


def _b_enc_prepare(out: list[bytes], msg: Prepare) -> None:
    out.append(
        _B_PBFT_WITH_SN.pack(msg.instance, msg.view, msg.sender, msg.sequence_number)
    )
    _w_str(out, msg.digest)


def _b_dec_prepare(buf: bytes, off: int) -> tuple[Prepare, int]:
    instance, view, sender, sequence_number = _B_PBFT_WITH_SN.unpack_from(buf, off)
    digest, off = _r_str(buf, off + _B_PBFT_WITH_SN.size)
    return (
        Prepare(
            instance=instance,
            view=view,
            sender=sender,
            sequence_number=sequence_number,
            digest=digest,
        ),
        off,
    )


def _b_enc_commit(out: list[bytes], msg: Commit) -> None:
    out.append(
        _B_PBFT_WITH_SN.pack(msg.instance, msg.view, msg.sender, msg.sequence_number)
    )
    _w_str(out, msg.digest)


def _b_dec_commit(buf: bytes, off: int) -> tuple[Commit, int]:
    instance, view, sender, sequence_number = _B_PBFT_WITH_SN.unpack_from(buf, off)
    digest, off = _r_str(buf, off + _B_PBFT_WITH_SN.size)
    return (
        Commit(
            instance=instance,
            view=view,
            sender=sender,
            sequence_number=sequence_number,
            digest=digest,
        ),
        off,
    )


def _b_enc_view_change(out: list[bytes], msg: ViewChange) -> None:
    out.append(
        _B_PBFT_WITH_SN.pack(msg.instance, msg.view, msg.sender, msg.last_delivered)
    )
    _w_block_pairs(out, msg.pending)


def _b_dec_view_change(buf: bytes, off: int) -> tuple[ViewChange, int]:
    instance, view, sender, last_delivered = _B_PBFT_WITH_SN.unpack_from(buf, off)
    pending, off = _r_block_pairs(buf, off + _B_PBFT_WITH_SN.size)
    return (
        ViewChange(
            instance=instance,
            view=view,
            sender=sender,
            last_delivered=last_delivered,
            pending=pending,
        ),
        off,
    )


def _b_enc_new_view(out: list[bytes], msg: NewView) -> None:
    out.append(_B_PBFT_HEADER.pack(msg.instance, msg.view, msg.sender))
    _w_block_pairs(out, msg.reproposals)


def _b_dec_new_view(buf: bytes, off: int) -> tuple[NewView, int]:
    instance, view, sender = _B_PBFT_HEADER.unpack_from(buf, off)
    reproposals, off = _r_block_pairs(buf, off + _B_PBFT_HEADER.size)
    return (
        NewView(instance=instance, view=view, sender=sender, reproposals=reproposals),
        off,
    )


def _b_enc_checkpoint(out: list[bytes], msg: CheckpointMessage) -> None:
    out.append(_B_PBFT_WITH_SN.pack(msg.instance, msg.view, msg.sender, msg.epoch))
    _w_str(out, msg.state_digest)


def _b_dec_checkpoint(buf: bytes, off: int) -> tuple[CheckpointMessage, int]:
    instance, view, sender, epoch = _B_PBFT_WITH_SN.unpack_from(buf, off)
    state_digest, off = _r_str(buf, off + _B_PBFT_WITH_SN.size)
    return (
        CheckpointMessage(
            instance=instance,
            view=view,
            sender=sender,
            epoch=epoch,
            state_digest=state_digest,
        ),
        off,
    )


#: Binary type registry: class -> (type id, encoder) and type id -> decoder.
#: Type ids are wire format — never reuse or renumber.  Ids 1-15 are reserved
#: for consensus/client messages, 16+ for the control plane and extensions.
_BINARY_ENCODERS: dict[
    type, tuple[int, Callable[[list[bytes], Any], None]]
] = {}
_BINARY_DECODERS: dict[int, Callable[[bytes, int], tuple[Any, int]]] = {}


def _register_binary(
    cls: type,
    type_id: int,
    encoder: Callable[[list[bytes], Any], None],
    decoder: Callable[[bytes, int], tuple[Any, int]],
) -> None:
    if not 0 < type_id < 256:
        raise ValueError(f"binary type id {type_id} outside u8 range")
    existing = _BINARY_DECODERS.get(type_id)
    if existing is not None and _BINARY_ENCODERS.get(cls, (None,))[0] != type_id:
        raise ValueError(f"binary type id {type_id} already registered")
    _BINARY_ENCODERS[cls] = (type_id, encoder)
    _BINARY_DECODERS[type_id] = decoder


for _cls, _type_id, _enc, _dec in (
    (ClientRequest, 1, _b_enc_client_request, _b_dec_client_request),
    (ClientReply, 2, _b_enc_client_reply, _b_dec_client_reply),
    (PrePrepare, 3, _b_enc_pre_prepare, _b_dec_pre_prepare),
    (Prepare, 4, _b_enc_prepare, _b_dec_prepare),
    (Commit, 5, _b_enc_commit, _b_dec_commit),
    (ViewChange, 6, _b_enc_view_change, _b_dec_view_change),
    (NewView, 7, _b_enc_new_view, _b_dec_new_view),
    (CheckpointMessage, 8, _b_enc_checkpoint, _b_dec_checkpoint),
):
    _register_binary(_cls, _type_id, _enc, _dec)


# -- envelope ----------------------------------------------------------------


def encode_payload(message: Any) -> tuple[str, dict[str, Any]]:
    """Encode ``message`` to its (tag, payload dict) pair."""
    try:
        tag, encoder = _ENCODERS[type(message)]
    except KeyError:
        raise WireCodecError(
            f"no wire encoding registered for {type(message).__name__}"
        ) from None
    return tag, encoder(message)


def decode_payload(tag: str, payload: dict[str, Any]) -> Any:
    """Decode a payload dict back into its message object."""
    try:
        decoder = _DECODERS[tag]
    except KeyError:
        raise WireCodecError(f"unknown wire type tag {tag!r}") from None
    try:
        return decoder(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireCodecError(f"malformed {tag} payload: {exc}") from exc


def _encode_envelope_json(sender: int, message: Any) -> bytes:
    tag, payload = encode_payload(message)
    envelope = {"v": WIRE_VERSION, "t": tag, "s": sender, "p": payload}
    return json.dumps(
        envelope, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _encode_envelope_binary(sender: int, message: Any) -> bytes:
    entry = _BINARY_ENCODERS.get(type(message))
    if entry is not None:
        type_id, encoder = entry
        out = [
            _HEADER.pack(_BINARY_MAGIC, WIRE_VERSION_BINARY, _MODE_NATIVE, sender),
            _U8.pack(type_id),
        ]
        encoder(out, message)
        return b"".join(out)
    # No native layout: embed the canonical-JSON payload in a v2 envelope.
    tag, payload = encode_payload(message)
    out = [
        _HEADER.pack(_BINARY_MAGIC, WIRE_VERSION_BINARY, _MODE_EMBEDDED_JSON, sender)
    ]
    _w_str(out, tag)
    _w_json(out, payload)
    return b"".join(out)


def encode_envelope(
    sender: int, message: Any, *, version: int = WIRE_VERSION
) -> bytes:
    """Serialise ``message`` from ``sender`` at the requested wire version.

    The default stays v1 (canonical JSON) — transports opt into v2 per peer
    once the ``hello`` handshake has advertised support for it.
    """
    if version == WIRE_VERSION:
        return _encode_envelope_json(sender, message)
    if version in (WIRE_VERSION_BINARY, WIRE_VERSION_BATCH):
        # v3 envelopes are v2 envelopes; batching happens at the framing
        # layer, not here.
        return _encode_envelope_binary(sender, message)
    raise WireCodecError(
        f"cannot encode wire version {version!r} "
        f"(supported: {SUPPORTED_WIRE_VERSIONS})"
    )


def _decode_envelope_binary(data: bytes) -> tuple[int, Any]:
    try:
        magic, version, mode, sender = _HEADER.unpack_from(data, 0)
        if version != WIRE_VERSION_BINARY:
            raise WireCodecError(
                f"unsupported wire version {version!r} "
                f"(this node speaks {SUPPORTED_WIRE_VERSIONS})"
            )
        off = _HEADER.size
        if mode == _MODE_NATIVE:
            type_id = data[off]
            decoder = _BINARY_DECODERS.get(type_id)
            if decoder is None:
                raise WireCodecError(f"unknown binary wire type id {type_id}")
            message, end = decoder(data, off + 1)
            if end != len(data):
                raise WireCodecError(
                    f"binary frame has {len(data) - end} trailing bytes"
                )
            return sender, message
        if mode == _MODE_EMBEDDED_JSON:
            tag, off = _r_str(data, off)
            payload, end = _r_json(data, off)
            if end != len(data):
                raise WireCodecError(
                    f"binary frame has {len(data) - end} trailing bytes"
                )
            return sender, decode_payload(tag, payload)
        raise WireCodecError(f"unknown binary payload mode {mode}")
    except WireCodecError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError, ValueError, KeyError) as exc:
        raise WireCodecError(f"malformed binary frame: {exc}") from exc


def decode_envelope(data: bytes) -> tuple[int, Any]:
    """Deserialise one envelope (either wire version), returning
    ``(sender, message)``."""
    if not data:
        raise WireCodecError("empty frame")
    if data[0] == _BINARY_MAGIC:
        return _decode_envelope_binary(data)
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireCodecError(f"undecodable frame: {exc}") from exc
    if not isinstance(envelope, dict):
        raise WireCodecError("frame is not a JSON object")
    version = envelope.get("v")
    if version != WIRE_VERSION:
        raise WireCodecError(
            f"unsupported wire version {version!r} (this node speaks {WIRE_VERSION})"
        )
    try:
        tag = envelope["t"]
        sender = int(envelope["s"])
        payload = envelope["p"]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireCodecError(f"malformed envelope: {exc}") from exc
    return sender, decode_payload(tag, payload)


def decode_envelopes(data: bytes) -> list[tuple[int, Any]]:
    """Deserialise a frame payload into its ``(sender, message)`` pairs.

    A plain envelope yields one pair; a super-frame (wire v3 framing) yields
    one per packed envelope, in order.  Accepted regardless of this node's
    advertised version — like v1/v2 sniffing, decoding is liberal even when
    the local sender is pinned to an older version.
    """
    if data and data[0] == SUPER_FRAME_MAGIC:
        try:
            envelopes = split_super_frame(data)
        except FrameError as exc:
            raise WireCodecError(f"malformed super-frame: {exc}") from exc
        return [decode_envelope(envelope) for envelope in envelopes]
    return [decode_envelope(data)]
