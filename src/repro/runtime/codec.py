"""Versioned canonical-JSON wire codec for all cluster and PBFT messages.

Every message exchanged by the live runtime is serialised as a canonical JSON
envelope::

    {"v": 1, "t": "<type tag>", "s": <sender node id>, "p": {...payload...}}

``v`` is the wire protocol version, ``t`` identifies the payload type, ``s``
is the sending node and ``p`` carries the message fields.  Canonical means
sorted keys and compact separators, so the byte rendering of a message is
stable across processes and Python versions (the same property the digest
layer relies on).

Forward compatibility: decoders read the fields they know and **ignore
unknown fields** at every level (envelope and payload), so a newer peer can
add fields without breaking older ones.  An unknown type tag or a different
wire version is an error — those are protocol-level incompatibilities the
caller must surface, not skate over silently.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.cluster.messages import ClientReply, ClientRequest
from repro.errors import NetworkError
from repro.ledger.blocks import Block, SystemState
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind
from repro.ledger.transactions import Transaction, TransactionType
from repro.crypto.signatures import Signature
from repro.sb.pbft.messages import (
    CheckpointMessage,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    ViewChange,
)

#: Current wire protocol version.  Bump on incompatible envelope changes.
WIRE_VERSION = 1


class WireCodecError(NetworkError):
    """A frame could not be encoded or decoded."""


# -- leaf encoders/decoders -------------------------------------------------


def _encode_operation(op: ObjectOperation) -> dict[str, Any]:
    return {
        "key": op.key,
        "kind": op.kind.value,
        "amount": op.amount,
        "object_type": op.object_type.value,
    }


def _decode_operation(data: dict[str, Any]) -> ObjectOperation:
    return ObjectOperation(
        key=data["key"],
        kind=OperationKind(data["kind"]),
        amount=int(data["amount"]),
        object_type=ObjectType(data["object_type"]),
    )


def _encode_signature(signature: Signature) -> dict[str, Any]:
    return {
        "signer": signature.signer,
        "message_digest": signature.message_digest,
        "value": signature.value,
    }


def _decode_signature(data: dict[str, Any]) -> Signature:
    return Signature(
        signer=data["signer"],
        message_digest=data["message_digest"],
        value=data["value"],
    )


def _encode_transaction(tx: Transaction) -> dict[str, Any]:
    return {
        "tx_id": tx.tx_id,
        "operations": [_encode_operation(op) for op in tx.operations],
        "tx_type": tx.tx_type.value,
        "payload_size": tx.payload_size,
        "client_id": tx.client_id,
        "signatures": {
            holder: _encode_signature(sig) for holder, sig in tx.signatures.items()
        },
        "submitted_at": tx.submitted_at,
        "metadata": tx.metadata,
    }


def _decode_transaction(data: dict[str, Any]) -> Transaction:
    return Transaction(
        tx_id=data["tx_id"],
        operations=tuple(_decode_operation(op) for op in data["operations"]),
        tx_type=TransactionType(data["tx_type"]),
        payload_size=int(data.get("payload_size", 0)),
        client_id=data.get("client_id"),
        signatures={
            holder: _decode_signature(sig)
            for holder, sig in data.get("signatures", {}).items()
        },
        submitted_at=data.get("submitted_at"),
        metadata=dict(data.get("metadata", {})),
    )


def _encode_block(block: Block) -> dict[str, Any]:
    return {
        "instance": block.instance,
        "sequence_number": block.sequence_number,
        "transactions": [_encode_transaction(tx) for tx in block.transactions],
        "state": list(block.state.sequence_numbers),
        "proposer": block.proposer,
        "epoch": block.epoch,
        "rank": block.rank,
        "signature": (
            _encode_signature(block.signature) if block.signature is not None else None
        ),
        "metadata": block.metadata,
    }


def _decode_block(data: dict[str, Any]) -> Block:
    signature = data.get("signature")
    return Block(
        instance=int(data["instance"]),
        sequence_number=int(data["sequence_number"]),
        transactions=tuple(_decode_transaction(tx) for tx in data["transactions"]),
        state=SystemState(tuple(int(v) for v in data["state"])),
        proposer=int(data["proposer"]),
        epoch=int(data.get("epoch", 0)),
        rank=data.get("rank"),
        signature=_decode_signature(signature) if signature is not None else None,
        metadata=dict(data.get("metadata", {})),
    )


def _encode_block_pairs(pairs: tuple[tuple[int, Block], ...]) -> list[list[Any]]:
    return [[sn, _encode_block(block)] for sn, block in pairs]


def _decode_block_pairs(data: list[Any]) -> tuple[tuple[int, Block], ...]:
    return tuple((int(sn), _decode_block(block)) for sn, block in data)


# -- message payloads -------------------------------------------------------


def _encode_client_request(msg: ClientRequest) -> dict[str, Any]:
    return {"tx": _encode_transaction(msg.tx), "client_node": msg.client_node}


def _decode_client_request(data: dict[str, Any]) -> ClientRequest:
    return ClientRequest(
        tx=_decode_transaction(data["tx"]), client_node=int(data["client_node"])
    )


def _encode_client_reply(msg: ClientReply) -> dict[str, Any]:
    return {
        "tx_id": msg.tx_id,
        "replica": msg.replica,
        "committed": msg.committed,
        "confirmed_at": msg.confirmed_at,
    }


def _decode_client_reply(data: dict[str, Any]) -> ClientReply:
    return ClientReply(
        tx_id=data["tx_id"],
        replica=int(data["replica"]),
        committed=bool(data["committed"]),
        confirmed_at=data.get("confirmed_at"),
    )


def _pbft_header(msg: Any) -> dict[str, Any]:
    return {"instance": msg.instance, "view": msg.view, "sender": msg.sender}


def _encode_pre_prepare(msg: PrePrepare) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "sequence_number": msg.sequence_number,
        "block": _encode_block(msg.block) if msg.block is not None else None,
        "digest": msg.digest,
    }


def _decode_pre_prepare(data: dict[str, Any]) -> PrePrepare:
    block = data.get("block")
    return PrePrepare(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        sequence_number=int(data["sequence_number"]),
        block=_decode_block(block) if block is not None else None,
        digest=data.get("digest", ""),
    )


def _encode_prepare(msg: Prepare) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "sequence_number": msg.sequence_number,
        "digest": msg.digest,
    }


def _decode_prepare(data: dict[str, Any]) -> Prepare:
    return Prepare(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        sequence_number=int(data["sequence_number"]),
        digest=data.get("digest", ""),
    )


def _encode_commit(msg: Commit) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "sequence_number": msg.sequence_number,
        "digest": msg.digest,
    }


def _decode_commit(data: dict[str, Any]) -> Commit:
    return Commit(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        sequence_number=int(data["sequence_number"]),
        digest=data.get("digest", ""),
    )


def _encode_view_change(msg: ViewChange) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "last_delivered": msg.last_delivered,
        "pending": _encode_block_pairs(msg.pending),
    }


def _decode_view_change(data: dict[str, Any]) -> ViewChange:
    return ViewChange(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        last_delivered=int(data.get("last_delivered", -1)),
        pending=_decode_block_pairs(data.get("pending", [])),
    )


def _encode_new_view(msg: NewView) -> dict[str, Any]:
    return {**_pbft_header(msg), "reproposals": _encode_block_pairs(msg.reproposals)}


def _decode_new_view(data: dict[str, Any]) -> NewView:
    return NewView(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        reproposals=_decode_block_pairs(data.get("reproposals", [])),
    )


def _encode_checkpoint(msg: CheckpointMessage) -> dict[str, Any]:
    return {
        **_pbft_header(msg),
        "epoch": msg.epoch,
        "state_digest": msg.state_digest,
    }


def _decode_checkpoint(data: dict[str, Any]) -> CheckpointMessage:
    return CheckpointMessage(
        instance=int(data["instance"]),
        view=int(data["view"]),
        sender=int(data["sender"]),
        epoch=int(data.get("epoch", 0)),
        state_digest=data.get("state_digest", ""),
    )


#: Type registry: message class -> (tag, encoder) and tag -> decoder.
_ENCODERS: dict[type, tuple[str, Callable[[Any], dict[str, Any]]]] = {
    ClientRequest: ("client_request", _encode_client_request),
    ClientReply: ("client_reply", _encode_client_reply),
    PrePrepare: ("pre_prepare", _encode_pre_prepare),
    Prepare: ("prepare", _encode_prepare),
    Commit: ("commit", _encode_commit),
    ViewChange: ("view_change", _encode_view_change),
    NewView: ("new_view", _encode_new_view),
    CheckpointMessage: ("checkpoint", _encode_checkpoint),
}

_DECODERS: dict[str, Callable[[dict[str, Any]], Any]] = {
    "client_request": _decode_client_request,
    "client_reply": _decode_client_reply,
    "pre_prepare": _decode_pre_prepare,
    "prepare": _decode_prepare,
    "commit": _decode_commit,
    "view_change": _decode_view_change,
    "new_view": _decode_new_view,
    "checkpoint": _decode_checkpoint,
}


def register_wire_type(
    cls: type,
    tag: str,
    encoder: Callable[[Any], dict[str, Any]],
    decoder: Callable[[dict[str, Any]], Any],
) -> None:
    """Register an additional message type (used by the control plane)."""
    _ENCODERS[cls] = (tag, encoder)
    _DECODERS[tag] = decoder


def wire_tags() -> list[str]:
    """All registered type tags (sorted, for introspection and tests)."""
    return sorted(_DECODERS)


# -- envelope ----------------------------------------------------------------


def encode_payload(message: Any) -> tuple[str, dict[str, Any]]:
    """Encode ``message`` to its (tag, payload dict) pair."""
    try:
        tag, encoder = _ENCODERS[type(message)]
    except KeyError:
        raise WireCodecError(
            f"no wire encoding registered for {type(message).__name__}"
        ) from None
    return tag, encoder(message)


def decode_payload(tag: str, payload: dict[str, Any]) -> Any:
    """Decode a payload dict back into its message object."""
    try:
        decoder = _DECODERS[tag]
    except KeyError:
        raise WireCodecError(f"unknown wire type tag {tag!r}") from None
    try:
        return decoder(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireCodecError(f"malformed {tag} payload: {exc}") from exc


def encode_envelope(sender: int, message: Any) -> bytes:
    """Serialise ``message`` from ``sender`` as canonical JSON bytes."""
    tag, payload = encode_payload(message)
    envelope = {"v": WIRE_VERSION, "t": tag, "s": sender, "p": payload}
    return json.dumps(
        envelope, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def decode_envelope(data: bytes) -> tuple[int, Any]:
    """Deserialise one envelope, returning ``(sender, message)``."""
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireCodecError(f"undecodable frame: {exc}") from exc
    if not isinstance(envelope, dict):
        raise WireCodecError("frame is not a JSON object")
    version = envelope.get("v")
    if version != WIRE_VERSION:
        raise WireCodecError(
            f"unsupported wire version {version!r} (this node speaks {WIRE_VERSION})"
        )
    try:
        tag = envelope["t"]
        sender = int(envelope["s"])
        payload = envelope["p"]
    except (KeyError, TypeError, ValueError) as exc:
        raise WireCodecError(f"malformed envelope: {exc}") from exc
    return sender, decode_payload(tag, payload)
