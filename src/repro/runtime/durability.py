"""Replica durability: snapshots + WAL hooks + local crash recovery.

This layer makes a live replica's consensus state survive SIGKILL.  It is
live-only and opt-in (``--run-dir``): the simulator never touches it, so the
deterministic sim path stays bit-identical.

The model exploits the fact that a consensus core is a pure state machine
over its delivered-block sequence: replaying the WAL's block records through
``core.on_block_delivered`` from genesis reconstructs the store, escrow,
status and ordering state exactly.  Snapshots only *bound* that replay — one
is cut at an epoch-checkpoint boundary whenever the core is quiescent (all
delivered blocks processed, nothing waiting in the global orderer), and
records the epoch's checkpoint digest so a restore can be verified against
the quorum's stable checkpoint.

On-disk layout under one replica's run directory::

    wal.jsonl             append-mode, checksummed (see runtime/wal.py)
    snapshot-<epoch>.json atomic (tmp + fsync + rename), self-verifying

WAL record kinds (``k`` field):

* ``b`` — a committed (SB-delivered) block, in delivery order
* ``v`` — a view install ``{i: instance, v: view}``
* ``e`` — an executed-epoch mark ``{e: epoch, d: checkpoint digest,
  sd: state digest}``
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any, Callable

from repro.core.interfaces import ConsensusCore
from repro.core.outcomes import TxStatus
from repro.ledger.blocks import Block
from repro.runtime.codec import _decode_block, _encode_block
from repro.runtime.wal import WAL_FILE_NAME, WalWriter, encode_record, read_wal

logger = logging.getLogger(__name__)

#: Snapshot format version (bump on incompatible schema changes).
SNAPSHOT_VERSION = 1

SNAPSHOT_PREFIX = "snapshot-"


class SnapshotError(Exception):
    """A snapshot failed validation during restore."""


# -- WAL record builders ------------------------------------------------------


def block_record(block: Block) -> dict[str, Any]:
    """WAL record for one committed block."""
    return {"k": "b", "blk": _encode_block(block)}


def view_record(instance: int, view: int) -> dict[str, Any]:
    """WAL record for one view install."""
    return {"k": "v", "i": instance, "v": view}


def epoch_record(epoch: int, checkpoint_digest: str, state_digest: str) -> dict[str, Any]:
    """WAL record marking an epoch as executed locally."""
    return {"k": "e", "e": epoch, "d": checkpoint_digest, "sd": state_digest}


def decode_block_record(record: dict[str, Any]) -> Block | None:
    """Block carried by a ``b`` record, or ``None`` for other kinds."""
    if record.get("k") != "b":
        return None
    try:
        return _decode_block(record["blk"])
    except (KeyError, ValueError, TypeError):
        return None


# -- snapshot serialisation ---------------------------------------------------


def core_is_quiescent(core: ConsensusCore) -> bool:
    """Whether every delivered block has been fully processed.

    At a quiescent point the partial logs have no unprocessed head, the
    global orderer holds nothing back and the execution queue is drained —
    the entire consensus state is then a function of the store, the logs'
    positions and a handful of high-water marks.
    """
    if core.global_orderer.pending_count() != 0:
        return False
    if getattr(core, "_global_queue", None):
        return False
    return all(plog.peek_next() is None for plog in core.plogs)


def snapshot_core(core: ConsensusCore, *, epoch: int, checkpoint_digest: str) -> dict[str, Any] | None:
    """Serialise a quiescent core, or return ``None`` when unsupported.

    ``None`` means either the core is not quiescent (a snapshot here would
    lose in-flight ordering state) or its global orderer cannot resume from
    a snapshot — recovery then falls back to full WAL replay from genesis.
    """
    if not core_is_quiescent(core):
        return None
    orderer_state = core.global_orderer.snapshot_state()
    if orderer_state is None:
        return None
    terminal_statuses = [
        [tx_id, status.value]
        for tx_id, status in sorted(core._status.items())
        if status.terminal
    ]
    snapshot: dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "protocol": core.name,
        "num_instances": core.config.num_instances,
        "epoch_length": core.config.epoch_length,
        "epoch": epoch,
        "checkpoint_digest": checkpoint_digest,
        "state_digest": core.store.state_digest(),
        "frontier": list(core.frontier.as_state().sequence_numbers),
        "delivered": list(core.delivered_state().sequence_numbers),
        "epochs": {
            "processed": [plog.next_to_process - 1 for plog in core.plogs],
            "completed": core.epochs.completed_count,
        },
        "rank": {
            "highest_seen": core.rank_tracker.highest_seen,
            "assigned": core.rank_tracker._assigned,
        },
        "orderer": orderer_state,
        "objects": core.store.dump_objects(),
        "status": terminal_statuses,
        "counters": {
            "confirmed": core.confirmed_count,
            "partial": getattr(core, "partial_confirmations", 0),
            "global": getattr(core, "global_confirmations", 0),
        },
    }
    escrow = getattr(core, "escrow", None)
    if escrow is not None:
        snapshot["escrow"] = escrow.dump_entries()
    remaining = getattr(core, "_remaining_occurrences", None)
    if remaining is not None:
        snapshot["remaining_occurrences"] = dict(remaining)
    return snapshot


def restore_core(core: ConsensusCore, snapshot: dict[str, Any]) -> None:
    """Restore a *freshly built* core from a snapshot and verify its digest.

    Raises :class:`SnapshotError` when the snapshot does not match the
    core's configuration or its recorded state digest — the caller should
    discard the (now dirty) core, rebuild from genesis and fall back to an
    older snapshot or a full WAL replay.
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {snapshot.get('version')!r}")
    if snapshot.get("protocol") != core.name:
        raise SnapshotError(
            f"snapshot is for protocol {snapshot.get('protocol')!r}, core is {core.name!r}"
        )
    if int(snapshot.get("num_instances", -1)) != core.config.num_instances:
        raise SnapshotError("snapshot instance count mismatch")
    if int(snapshot.get("epoch_length", -1)) != core.config.epoch_length:
        raise SnapshotError("snapshot epoch length mismatch")
    try:
        core.store.load_objects(snapshot["objects"])
        escrow = getattr(core, "escrow", None)
        if escrow is not None:
            escrow.load_entries(snapshot.get("escrow", []))
        core.frontier.restore(snapshot["frontier"])
        core._delivered_frontier = [int(v) for v in snapshot["delivered"]]
        for plog, processed in zip(core.plogs, snapshot["epochs"]["processed"]):
            plog.fast_forward(int(processed) + 1)
        core.epochs.restore(
            snapshot["epochs"]["processed"], snapshot["epochs"]["completed"]
        )
        core.rank_tracker.highest_seen = int(snapshot["rank"]["highest_seen"])
        core.rank_tracker._assigned = int(snapshot["rank"]["assigned"])
        core.global_orderer.restore_state(snapshot["orderer"])
        core._status = {
            tx_id: TxStatus(value) for tx_id, value in snapshot.get("status", [])
        }
        counters = snapshot.get("counters", {})
        core.confirmed_count = int(counters.get("confirmed", 0))
        if hasattr(core, "partial_confirmations"):
            core.partial_confirmations = int(counters.get("partial", 0))
        if hasattr(core, "global_confirmations"):
            core.global_confirmations = int(counters.get("global", 0))
        if hasattr(core, "_remaining_occurrences"):
            core._remaining_occurrences = {
                str(tx_id): int(count)
                for tx_id, count in snapshot.get("remaining_occurrences", {}).items()
            }
    except (KeyError, ValueError, TypeError) as exc:
        raise SnapshotError(f"malformed snapshot: {exc}") from exc
    recomputed = core.store.state_digest()
    if recomputed != snapshot["state_digest"]:
        raise SnapshotError(
            f"snapshot digest mismatch: recorded {snapshot['state_digest'][:12]}…, "
            f"recomputed {recomputed[:12]}…"
        )


# -- snapshot files -----------------------------------------------------------


def snapshot_path(directory: str | Path, epoch: int) -> Path:
    return Path(directory) / f"{SNAPSHOT_PREFIX}{epoch:08d}.json"


def write_snapshot(directory: str | Path, snapshot: dict[str, Any]) -> Path:
    """Persist a snapshot atomically (tmp + fsync + rename)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = snapshot_path(directory, int(snapshot["epoch"]))
    tmp = path.with_suffix(".tmp")
    data = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:
            pass
    os.replace(tmp, path)
    return path


def list_snapshots(directory: str | Path) -> list[Path]:
    """Snapshot files in the directory, newest epoch first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        directory.glob(f"{SNAPSHOT_PREFIX}*.json"),
        key=lambda p: p.name,
        reverse=True,
    )


def load_snapshot(path: str | Path) -> dict[str, Any] | None:
    """Parse one snapshot file; ``None`` when unreadable or corrupt."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    return data


def compact_wal(
    path: str | Path,
    *,
    frontier: list[int] | tuple[int, ...],
    epoch: int,
) -> tuple[int, int]:
    """Drop WAL records a verified snapshot at ``frontier``/``epoch`` covers.

    Keeps exactly the replayable suffix a recovery starting from that
    snapshot needs:

    * ``b`` block records above the snapshot's delivered frontier;
    * one ``v`` record per instance carrying the highest installed view
      (snapshots do not record views, so the maximum must survive every
      compaction or a restart would rejoin in a stale view);
    * ``e`` epoch marks above the snapshot's epoch.

    The rewrite is atomic (tmp + fsync + rename); on any error the original
    WAL is left untouched.  Returns ``(kept, dropped)`` record counts.
    """
    path = Path(path)
    best_views: dict[int, int] = {}
    kept_records: list[dict[str, Any]] = []
    total = 0
    for record in read_wal(path):
        total += 1
        kind = record.get("k")
        if kind == "b":
            block = decode_block_record(record)
            if block is None:
                continue
            if (
                block.instance < len(frontier)
                and block.sequence_number <= frontier[block.instance]
            ):
                continue
            kept_records.append(record)
        elif kind == "v":
            try:
                instance, view = int(record["i"]), int(record["v"])
            except (KeyError, ValueError, TypeError):
                continue
            if view > best_views.get(instance, -1):
                best_views[instance] = view
        elif kind == "e":
            try:
                if int(record["e"]) <= epoch:
                    continue
            except (KeyError, ValueError, TypeError):
                continue
            kept_records.append(record)
        else:
            kept_records.append(record)
    view_records = [
        view_record(instance, view) for instance, view in sorted(best_views.items())
    ]
    out = view_records + kept_records
    tmp = path.with_suffix(".compact.tmp")
    with open(tmp, "wb") as handle:
        for record in out:
            handle.write(encode_record(record))
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:
            pass
    os.replace(tmp, path)
    return len(out), max(0, total - len(out))


# -- per-replica durability driver -------------------------------------------


class LocalRecovery:
    """Result of replaying a replica's own durable state."""

    def __init__(self, num_instances: int) -> None:
        self.snapshot_epoch: int | None = None
        self.blocks_replayed = 0
        self.views: list[int] = [0] * num_instances
        self.executed_epochs: list[int] = []

    @property
    def recovered_anything(self) -> bool:
        return self.snapshot_epoch is not None or self.blocks_replayed > 0


class ReplicaDurability:
    """Owns one replica's WAL and snapshot cadence.

    The replica calls the ``on_*`` hooks from its delivery path; the server
    calls :meth:`recover` (before starting the replica) and :meth:`close`
    (on shutdown).  Everything here is synchronous and cheap — appends go to
    a buffered file, fsyncs are batched, and snapshots only run at epoch
    boundaries.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        snapshot_every_epochs: int = 1,
        fsync_every: int | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every_epochs = max(1, int(snapshot_every_epochs))
        kwargs = {} if fsync_every is None else {"fsync_every": fsync_every}
        self.wal = WalWriter(self.directory / WAL_FILE_NAME, **kwargs)
        self._clock = clock
        self.last_snapshot_epoch: int | None = None
        self.last_snapshot_at: float | None = None
        self.snapshots_written = 0
        #: Epoch whose snapshot is still owed because the core was mid-burst
        #: (not quiescent) when the epoch completed, with its checkpoint
        #: digest.  Cut at the next quiescent delivery drain instead.
        self._deferred_snapshot: tuple[int, str] | None = None

    # -- metrics ----------------------------------------------------------

    @property
    def wal_bytes(self) -> int:
        return self.wal.bytes_written

    def snapshot_age(self) -> float:
        """Seconds since the last snapshot cut (-1 before the first one)."""
        if self.last_snapshot_at is None or self._clock is None:
            return -1.0
        return self._clock() - self.last_snapshot_at

    # -- write-side hooks --------------------------------------------------

    def on_block_delivered(self, block: Block) -> None:
        self.wal.append(block_record(block))

    def on_view_installed(self, instance: int, view: int) -> None:
        self.wal.append(view_record(instance, view))
        self.wal.flush()

    def on_epoch_completed(self, core: ConsensusCore, epoch: int, checkpoint_digest: str) -> None:
        """Log the executed-epoch mark and maybe cut a snapshot.

        Under live load the core is rarely quiescent at the exact moment an
        epoch completes (the completing block usually arrives mid-burst), so
        a failed cut is *deferred* rather than dropped: the newest owed epoch
        is remembered and :meth:`maybe_cut_deferred_snapshot` retries from
        the delivery drain once the in-flight work clears.
        """
        self.wal.append(epoch_record(epoch, checkpoint_digest, core.store.state_digest()))
        self.wal.flush()
        last = self.last_snapshot_epoch
        if last is not None and epoch < last + self.snapshot_every_epochs:
            return
        if self._cut_snapshot(core, epoch, checkpoint_digest):
            self._deferred_snapshot = None
        else:
            self._deferred_snapshot = (epoch, checkpoint_digest)

    def maybe_cut_deferred_snapshot(self, core: ConsensusCore) -> bool:
        """Cut the owed snapshot if the core has gone quiescent since.

        Cheap no-op when nothing is owed; called from the replica's delivery
        drain and from server shutdown.  The snapshot captures the core's
        *current* state (which strictly extends the owed epoch's boundary) —
        the recorded epoch/checkpoint digest still identify the quorum-stable
        checkpoint the snapshot covers.
        """
        if self._deferred_snapshot is None:
            return False
        epoch, checkpoint_digest = self._deferred_snapshot
        if not self._cut_snapshot(core, epoch, checkpoint_digest):
            return False
        self._deferred_snapshot = None
        return True

    def _cut_snapshot(
        self, core: ConsensusCore, epoch: int, checkpoint_digest: str
    ) -> bool:
        snapshot = snapshot_core(core, epoch=epoch, checkpoint_digest=checkpoint_digest)
        if snapshot is None:
            return False
        write_snapshot(self.directory, snapshot)
        self.last_snapshot_epoch = epoch
        if self._clock is not None:
            self.last_snapshot_at = self._clock()
        self.snapshots_written += 1
        self._compact_wal_below(snapshot)
        return True

    def _compact_wal_below(self, snapshot: dict[str, Any]) -> None:
        """Truncate the WAL below the snapshot just written.

        Safe because recovery (local and peer-serving state transfer) always
        consults the newest snapshot first: everything at or below its
        delivered frontier replays from the snapshot, never from the WAL.
        The writer is closed around the rewrite so no buffered tail is lost,
        and reopened on the (possibly replaced) file; the ``wal_bytes``
        gauge drops to the compacted size.  A failed rewrite keeps the
        original WAL — compaction is an optimisation, never a correctness
        requirement.
        """
        try:
            frontier = [int(v) for v in snapshot.get("delivered", [])]
            epoch = int(snapshot["epoch"])
        except (KeyError, ValueError, TypeError):
            return
        self.wal.close()
        try:
            kept, dropped = compact_wal(self.wal.path, frontier=frontier, epoch=epoch)
            if dropped:
                logger.debug(
                    "compacted WAL %s: kept %d records, dropped %d",
                    self.wal.path.name,
                    kept,
                    dropped,
                )
        except OSError as exc:
            logger.warning("WAL compaction failed (keeping full log): %s", exc)
        finally:
            self.wal = WalWriter(self.wal.path, fsync_every=self.wal.fsync_every)

    def record_transferred_block(self, block: Block) -> None:
        """Persist a block learned through state transfer (so a second crash
        does not lose it)."""
        self.wal.append(block_record(block))

    # -- recovery ----------------------------------------------------------

    def recover(self, core: ConsensusCore, build_core: Callable[[], ConsensusCore]) -> tuple[ConsensusCore, LocalRecovery]:
        """Rebuild consensus state from this replica's own run directory.

        Tries the newest snapshot first; a snapshot that fails digest
        verification is discarded (the core is rebuilt from genesis via
        ``build_core``) and the next-older one is tried, down to a full WAL
        replay from genesis.  WAL block records above the restored frontier
        are then replayed through ``core.on_block_delivered``.

        Returns the (possibly rebuilt) core and a :class:`LocalRecovery`
        describing what was recovered — including the highest view installed
        per instance, which the caller uses to fast-forward PBFT endpoints.
        """
        recovery = LocalRecovery(core.config.num_instances)
        for path in list_snapshots(self.directory):
            snapshot = load_snapshot(path)
            if snapshot is None:
                logger.warning("skipping unreadable snapshot %s", path.name)
                continue
            try:
                restore_core(core, snapshot)
            except SnapshotError as exc:
                logger.warning("discarding snapshot %s: %s", path.name, exc)
                core = build_core()
                continue
            recovery.snapshot_epoch = int(snapshot["epoch"])
            break
        delivered = list(core.delivered_state().sequence_numbers)
        for record in read_wal(self.wal.path):
            kind = record.get("k")
            if kind == "b":
                block = decode_block_record(record)
                if block is None or block.instance >= len(delivered):
                    continue
                if block.sequence_number != delivered[block.instance] + 1:
                    # Already covered by the restored snapshot, or a hole:
                    # the WAL is compacted at the *newest* snapshot's
                    # frontier, so when that snapshot is corrupt and an
                    # older base was restored, the log no longer reaches
                    # down to it.  Replaying across the gap would execute
                    # a divergent state — leave the rest to peer state
                    # transfer instead.
                    continue
                core.on_block_delivered(block)
                delivered[block.instance] = block.sequence_number
                recovery.blocks_replayed += 1
            elif kind == "v":
                try:
                    instance, view = int(record["i"]), int(record["v"])
                except (KeyError, ValueError, TypeError):
                    continue
                if 0 <= instance < len(recovery.views):
                    recovery.views[instance] = max(recovery.views[instance], view)
            elif kind == "e":
                try:
                    recovery.executed_epochs.append(int(record["e"]))
                except (KeyError, ValueError, TypeError):
                    continue
        # Checkpoints produced during replay were already broadcast by the
        # pre-crash incarnation; new epochs will vote afresh.
        pending = getattr(core, "pending_checkpoints", None)
        if pending:
            pending.clear()
        return core, recovery

    def wal_blocks_above(self, frontier: list[int] | tuple[int, ...]) -> list[Block]:
        """Blocks in this replica's WAL above a per-instance frontier
        (served to recovering peers)."""
        # Records appended since the last fsync batch sit in the writer's
        # user-space buffer, invisible to the file read below — and they are
        # precisely the freshest blocks a catching-up peer is missing.
        self.wal.flush()
        blocks: list[Block] = []
        for record in read_wal(self.wal.path):
            block = decode_block_record(record)
            if block is None or block.instance >= len(frontier):
                continue
            if block.sequence_number > frontier[block.instance]:
                blocks.append(block)
        return blocks

    def latest_snapshot(self) -> dict[str, Any] | None:
        """Newest parseable snapshot in this replica's directory."""
        for path in list_snapshots(self.directory):
            snapshot = load_snapshot(path)
            if snapshot is not None:
                return snapshot
        return None

    def wipe(self) -> None:
        """Delete durable state (genesis-mode restart).  Closes the WAL
        writer, removes the files and reopens a fresh WAL."""
        self.wal.close()
        try:
            self.wal.path.unlink()
        except OSError:
            pass
        for path in list_snapshots(self.directory):
            try:
                path.unlink()
            except OSError:
                pass
        self.wal = WalWriter(self.wal.path, fsync_every=self.wal.fsync_every)
        self.last_snapshot_epoch = None
        self.last_snapshot_at = None

    def close(self) -> None:
        self.wal.close()
