"""Closed- and open-loop load generation against a live cluster.

The generator replays the same Ethereum-style synthetic workload the
simulator uses (:mod:`repro.workload`) and reports through the same
:mod:`repro.metrics` collectors: client-side timestamps feed the end-to-end
latency and throughput trackers, and the five-stage latency breakdown is
pulled from replica 0's collector over the control plane — the live
equivalent of the simulator wiring, where replica 0 carries the
instrumentation.

* **closed loop**: ``concurrency`` logical clients, each submitting one
  transaction, awaiting its reply quorum, and immediately submitting the
  next — measures sustainable throughput.
* **open loop**: submissions arrive at a fixed rate regardless of replies —
  measures behavior under a target offered load.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.metrics.latency import STAGE_NAMES
from repro.metrics.summary import MetricsCollector, RunMetrics
from repro.obs.trace import TraceWriter
from repro.runtime.client import ClientConfig, ClientError, OrthrusClient
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

logger = logging.getLogger(__name__)


@dataclass
class LoadGenConfig:
    """Parameters of one load-generation run.

    Attributes:
        transactions: Total transactions to submit.
        mode: ``"closed"`` or ``"open"``.
        concurrency: In-flight submissions per closed-loop run.
        rate_tps: Target submission rate for open-loop runs.
        workload: Trace parameters (must match the cluster's genesis universe).
        client: Client tunables (id, fanout, timeout, retries).
        trace_file: JSONL file the client's span events (``submitted`` /
            ``replied``) are appended to (``None`` = no client tracing).
        trace_sample: Fraction of transactions traced — must match the
            replicas' rate so stitched timelines are never missing the
            client's events (deterministic tx-id sampling).
    """

    transactions: int = 1000
    mode: str = "closed"
    concurrency: int = 32
    rate_tps: float = 500.0
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(num_accounts=1024)
    )
    client: ClientConfig = field(default_factory=ClientConfig)
    trace_file: str | None = None
    trace_sample: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ConfigurationError(f"unknown loadgen mode {self.mode!r}")
        if self.transactions < 1:
            raise ConfigurationError("transactions must be at least 1")
        if self.concurrency < 1:
            raise ConfigurationError("concurrency must be at least 1")
        if self.rate_tps <= 0:
            raise ConfigurationError("rate_tps must be positive")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigurationError("trace_sample must be within [0, 1]")


@dataclass
class LoadReport:
    """Result of a load-generation run."""

    metrics: RunMetrics
    submitted: int
    completed: int
    failed: int
    retransmissions: int
    wall_seconds: float
    stage_breakdown: dict[str, float] = field(default_factory=dict)
    state_digests: dict[int, str] = field(default_factory=dict)
    #: View changes each probed replica observed (summed over instances);
    #: only replicas that answered the settlement probe appear, so during
    #: fault injection this covers exactly the survivors.
    view_changes: dict[int, int] = field(default_factory=dict)
    #: Run window on the shared monotonic clock (phase windows and trace
    #: timestamps live on the same axis).
    started_at: float = 0.0
    ended_at: float = 0.0
    #: Per-fault-phase SLOs (:class:`repro.obs.slo.PhaseSLO`); populated by
    #: chaos runs, empty for plain load runs.
    phases: list = field(default_factory=list)
    #: Client-observed consistency verdict
    #: (:class:`repro.obs.slo.ConsistencyReport`); populated by chaos runs
    #: that polled the cluster status during the load, ``None`` otherwise.
    consistency: object | None = None

    @property
    def digests_agree(self) -> bool:
        """Whether every probed replica reported the same state digest."""
        return len(set(self.state_digests.values())) <= 1

    def lines(self) -> list[str]:
        """Human-readable summary."""
        m = self.metrics
        out = [
            f"submitted            : {self.submitted}",
            f"completed (f+1 match): {self.completed}",
            f"failed               : {self.failed}",
            f"retransmissions      : {self.retransmissions}",
            f"wall time            : {self.wall_seconds:8.2f} s",
            f"throughput           : {m.throughput_tps:8.1f} tx/s",
            f"mean latency         : {m.latency.mean * 1000:8.1f} ms",
            f"p95 latency          : {m.latency.p95 * 1000:8.1f} ms",
            f"committed / rejected : {m.committed} / {m.rejected}",
        ]
        if self.stage_breakdown:
            out.append("stage breakdown (instrumented replica):")
            ordered = [name for name in STAGE_NAMES if name in self.stage_breakdown]
            ordered += [n for n in self.stage_breakdown if n not in STAGE_NAMES]
            for stage in ordered:
                out.append(f"  {stage:<18} {self.stage_breakdown[stage] * 1000:8.2f} ms")
        if self.state_digests:
            agree = "yes" if self.digests_agree else "NO — replicas diverged!"
            out.append(f"replica digests agree: {agree}")
        if self.consistency is not None:
            out.append("client-observed consistency:")
            out.extend("  " + line for line in self.consistency.lines())
        if self.phases:
            from repro.experiments.reporting import phase_slo_table

            out.append("per-fault-phase SLOs:")
            out.extend("  " + line for line in phase_slo_table(self.phases).splitlines())
        return out


class LoadGenerator:
    """Drive a live cluster with a synthetic workload and measure it."""

    def __init__(
        self,
        replicas: list[tuple[str, int] | str],
        config: LoadGenConfig | None = None,
    ) -> None:
        self.replicas = replicas
        self.config = config or LoadGenConfig()
        self.collector = MetricsCollector()
        self._client: OrthrusClient | None = None

    async def run(self, *, settle: bool = True) -> LoadReport:
        """Execute the configured run and return its report."""
        config = self.config
        workload = EthereumStyleWorkload(config.workload)
        client = OrthrusClient(self.replicas, config.client)
        self._client = client
        loop = asyncio.get_running_loop()
        tracer: TraceWriter | None = None
        if config.trace_file is not None and config.trace_sample > 0:
            tracer = TraceWriter(
                config.trace_file,
                node=config.client.client_id,
                sample_rate=config.trace_sample,
            )
        await client.connect()
        start = loop.time()
        reply_stage_samples: list[float] = []

        async def submit_one(tx) -> None:
            # The client stamps tx.submitted_at with the shared monotonic
            # clock; replicas read it, so all timestamps live on one axis.
            try:
                result = await client.submit(tx)
            except ClientError:
                if tracer is not None and tracer.sampled(tx.tx_id):
                    tracer.emit(tx.tx_id, "submitted", tx.submitted_at)
                return
            now = loop.time()
            if tracer is not None and tracer.sampled(tx.tx_id):
                tracer.emit(tx.tx_id, "submitted", tx.submitted_at)
                tracer.emit(tx.tx_id, "replied", now)
            latency = self.collector.latency
            latency.record_submitted(tx.tx_id, tx.submitted_at)
            latency.record_replied(tx.tx_id, now)
            confirmed = result.confirmed_at if result.confirmed_at is not None else now
            latency.record_confirmed(tx.tx_id, confirmed, committed=result.committed)
            if result.confirmed_at is not None:
                reply_stage_samples.append(now - result.confirmed_at)
            self.collector.throughput.record_confirmation(now)
            if result.committed:
                self.collector.committed += 1
            else:
                self.collector.rejected += 1

        try:
            if config.mode == "closed":
                await self._run_closed(workload, submit_one)
            else:
                await self._run_open(workload, submit_one)
            end = loop.time()
            breakdown: dict[str, float] = {}
            digests: dict[int, str] = {}
            view_changes: dict[int, int] = {}
            if settle:
                try:
                    breakdown, digests, view_changes = await self._settle(client)
                except ClientError as exc:
                    # A replica died after the run finished; the measured
                    # results are still valid, so report them without the
                    # control-plane extras rather than discarding everything.
                    logger.warning("settlement probe failed: %s", exc)
            if reply_stage_samples:
                # Replica timelines never see the client's reply receipt;
                # the reply stage is measured here and merged in.
                breakdown["reply"] = sum(reply_stage_samples) / len(reply_stage_samples)
            metrics = self.collector.finalize(start=start, end=max(end, start + 1e-9))
            return LoadReport(
                metrics=metrics,
                submitted=client.submitted,
                completed=client.completed,
                failed=client.failed,
                retransmissions=client.retransmissions,
                wall_seconds=end - start,
                stage_breakdown=breakdown,
                state_digests=digests,
                view_changes=view_changes,
                started_at=start,
                ended_at=end,
            )
        finally:
            self._client = None
            if tracer is not None:
                tracer.close()
            await client.close()

    # -- loop shapes ---------------------------------------------------------

    async def _run_closed(self, workload, submit_one) -> None:
        # next() is synchronous and the loop is single-threaded, so workers
        # can share the iterator without coordination.
        remaining = iter(workload.stream(self.config.transactions))

        async def worker() -> None:
            while True:
                tx = next(remaining, None)
                if tx is None:
                    return
                await submit_one(tx)

        workers = min(self.config.concurrency, self.config.transactions)
        await asyncio.gather(*(worker() for _ in range(workers)))

    async def _run_open(self, workload, submit_one) -> None:
        loop = asyncio.get_running_loop()
        interval = 1.0 / self.config.rate_tps
        start = loop.time()
        tasks: list[asyncio.Task] = []
        for index, tx in enumerate(workload.stream(self.config.transactions)):
            target = start + index * interval
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(loop.create_task(submit_one(tx)))
            if index % 64 == 63:
                # Flow control: block on the kernel send buffers so an
                # overdriven open-loop run backpressures instead of buffering
                # every unsent frame in client memory.
                await self._flush_client()
        await asyncio.gather(*tasks)
        await self._flush_client()

    async def _flush_client(self) -> None:
        if self._client is not None:
            await self._client.flush()

    # -- post-run settlement --------------------------------------------------

    async def _settle(
        self, client: OrthrusClient, *, timeout: float = 15.0, poll: float = 0.2
    ) -> tuple[dict[str, float], dict[int, str], dict[int, int]]:
        """Wait until the reachable replicas report one frontier and digest.

        Replies only need ``f + 1`` replicas, so at the moment the last reply
        arrives the slowest replicas may still be executing.  Poll the control
        plane until the cluster quiesces (bounded by ``timeout``), then return
        a stage breakdown, the replicas' digests and their view-change counts.
        Replicas crashed by fault injection drop out of the probe; the
        settlement condition then covers exactly the survivors.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        statuses = await client.cluster_status()
        while loop.time() < deadline:
            frontiers = {status.delivered_frontier for status in statuses}
            digests = {status.state_digest for status in statuses}
            if len(frontiers) == 1 and len(digests) == 1:
                break
            await asyncio.sleep(poll)
            statuses = await client.cluster_status()
        # Replica 0 carries the instrumentation, but it may be a crash
        # victim; fall back to any survivor's breakdown.
        breakdown = next(
            (s.stage_breakdown for s in statuses if s.replica == 0),
            statuses[0].stage_breakdown if statuses else {},
        )
        return (
            breakdown,
            {status.replica: status.state_digest for status in statuses},
            {status.replica: status.view_changes for status in statuses},
        )


async def run_loadgen(
    replicas: list[tuple[str, int] | str], config: LoadGenConfig | None = None
) -> LoadReport:
    """Convenience wrapper used by the CLI and tests."""
    return await LoadGenerator(replicas, config).run()
