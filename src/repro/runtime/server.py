"""Live replica server: one OS process hosting one Multi-BFT replica.

The server builds the exact consensus stack the simulator uses — a
:class:`~repro.cluster.replica.MultiBFTReplica` wrapping an Orthrus (or
baseline) core — and hosts it behind an
:class:`~repro.runtime.transport.AsyncioTransport`.  Inbound frames (TCP, or
Unix domain sockets for ``unix:`` endpoints) are read in batches, decoded —
inline, or on the configured crypto/codec worker pool for large batches —
and fed to ``replica.receive``; the replica's own proposal loop and
failure-detector timers run on the event loop through the transport's timer
interface.  No consensus code is duplicated or forked for live operation.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any

from repro.cluster.messages import ClientRequest
from repro.cluster.replica import MultiBFTReplica
from repro.metrics.summary import MetricsCollector
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import TraceWriter
from repro.runtime.chaos import make_abstention_filter
from repro.runtime.codec import WireCodecError, encode_envelope
from repro.runtime.config import ReplicaRuntimeConfig, format_endpoint
from repro.runtime.control import (
    Hello,
    MetricsReply,
    MetricsRequest,
    ShutdownRequest,
    StatusReply,
    StatusRequest,
)
from repro.runtime.framing import FrameError, FrameReader, write_frame
from repro.runtime.transport import AsyncioTransport, start_endpoint_server
from repro.runtime.workers import (
    OFFLOAD_MIN_BYTES,
    InlineWorkers,
    WorkerPool,
    decode_payloads,
    make_worker_pool,
)
from repro.sb.pbft.endpoint import PBFTConfig

logger = logging.getLogger(__name__)


class ReplicaServer:
    """Host one replica of a live Multi-BFT cluster over asyncio TCP."""

    def __init__(self, config: ReplicaRuntimeConfig) -> None:
        self.config = config
        self.metrics = MetricsCollector()
        #: Named-instrument registry shared by the transport, the replica and
        #: the server's own inbound-path counters; inert under ``--no-obs``.
        self.registry = MetricsRegistry() if config.obs_enabled else NULL_REGISTRY
        self.tracer: TraceWriter | None = None
        if config.obs_enabled and config.trace_file and config.trace_sample > 0.0:
            self.tracer = TraceWriter(
                config.trace_file,
                node=config.replica_id,
                sample_rate=config.trace_sample,
            )
        self._c_bytes_in = self.registry.counter("transport.bytes_in")
        self._c_decode_inline = self.registry.counter("server.decode_batches_inline")
        self._c_decode_offloaded = self.registry.counter(
            "server.decode_batches_offloaded"
        )
        self._h_decode_batch = self.registry.histogram("server.decode_batch_size")
        self.transport: AsyncioTransport | None = None
        self.replica: MultiBFTReplica | None = None
        self.workers: WorkerPool | InlineWorkers | None = None
        self.started_at: float | None = None
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self._metrics_sink = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Build the replica, open the listen socket, start proposing."""
        peers = {index: endpoint for index, endpoint in enumerate(self.config.peers)}
        self.transport = AsyncioTransport(
            self.config.replica_id,
            peers,
            send_delay=self.config.send_delay,
            wire_version=self.config.wire_version,
            registry=self.registry,
        )
        self.replica = MultiBFTReplica(
            replica_id=self.config.replica_id,
            num_replicas=self.config.num_replicas,
            core=self.config.build_core(),
            pbft_config=PBFTConfig(view_change_timeout=self.config.view_change_timeout),
            batch_size=self.config.batch_size,
            batch_interval=self.config.batch_interval,
            metrics=self.metrics,
            transport=self.transport,
            registry=self.registry,
            tracer=self.tracer,
        )
        self.registry.gauge_fn("server.connections", lambda: len(self._connections))
        self.registry.gauge_fn("server.committed", lambda: self.metrics.committed)
        self.registry.gauge_fn("server.rejected", lambda: self.metrics.rejected)
        if self.config.byzantine_abstain:
            # Undetectable Byzantine abstention (Fig. 8): this replica keeps
            # proposing/voting in the instances it leads but silently drops
            # consensus messages for every other instance.
            self.transport.outbound_filter = make_abstention_filter(self.replica)
        self.workers = make_worker_pool(self.config.workers)
        if self.workers is not None:
            self.registry.gauge_fn(
                "workers.batches_submitted",
                lambda: getattr(self.workers, "batches_submitted", 0),
            )
            self.registry.gauge_fn(
                "workers.items_submitted",
                lambda: getattr(self.workers, "items_submitted", 0),
            )
        endpoint = self.config.listen_endpoint
        self._server = await start_endpoint_server(self._handle_connection, endpoint)
        self.replica.start()
        self.started_at = self.transport.now()
        if self.config.obs_enabled and self.config.metrics_file:
            self._arm_metrics_snapshot()
        logger.info(
            "replica %d serving on %s (%s, %d instances, %d workers)",
            self.config.replica_id,
            format_endpoint(endpoint),
            self.config.protocol,
            self.config.instances,
            self.workers.workers,
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (or a shutdown frame arrives)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        await self._shutdown()

    def stop(self) -> None:
        """Request a graceful stop (safe to call from any loop callback)."""
        self._stopped.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the listen socket only stops *new* connections; peers and
        # clients already connected must see their sockets die too (that is
        # what a crash looks like from outside).
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        if self.transport is not None:
            await self.transport.close()
        if self.workers is not None:
            self.workers.close()
            self.workers = None
        if self.config.obs_enabled and self.config.metrics_file:
            # One final snapshot so post-mortem analysis sees the end state.
            self._write_metrics_snapshot()
        if self._metrics_sink is not None:
            self._metrics_sink.close()
            self._metrics_sink = None
        if self.tracer is not None:
            self.tracer.close()

    # -- periodic metrics snapshots -----------------------------------------

    def _arm_metrics_snapshot(self) -> None:
        assert self.transport is not None

        def tick() -> None:
            if self._stopped.is_set():
                return
            self._write_metrics_snapshot()
            if self.tracer is not None:
                # Piggyback the trace flush on the snapshot cadence so trace
                # files stay readable mid-run without per-event syscalls.
                self.tracer.flush()
            self._arm_metrics_snapshot()

        self.transport.set_timer(self.config.metrics_interval, tick)

    def _write_metrics_snapshot(self) -> None:
        if not self.config.metrics_file or self.transport is None:
            return
        try:
            if self._metrics_sink is None:
                self._metrics_sink = open(
                    self.config.metrics_file, "a", encoding="utf-8"
                )
            record = {
                "t": self.transport.now(),
                "replica": self.config.replica_id,
            }
            record.update(self.registry.snapshot())
            self._metrics_sink.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._metrics_sink.flush()
        except OSError as exc:  # a full disk must not kill the replica
            logger.warning(
                "replica %d metrics snapshot failed: %s", self.config.replica_id, exc
            )

    # -- inbound path -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames from one peer/client connection until EOF.

        The read side is batched twice over: the :class:`FrameReader`
        surfaces every frame a socket read delivered in one ``await``, and a
        super-frame (wire v3) expands into its packed envelopes.  Large
        batches are decoded on the worker pool, keeping the hashing/parsing
        off the consensus event loop.
        """
        assert self.transport is not None and self.replica is not None
        registered: int | None = None
        self._connections.add(writer)
        frames = FrameReader(reader)
        try:
            serving = True
            while serving:
                payloads = await frames.read_batch()
                if payloads is None:
                    break
                self._c_bytes_in.inc(sum(map(len, payloads)))
                for entry in await self._decode_batch(payloads):
                    if isinstance(entry, WireCodecError):
                        logger.warning(
                            "replica %d dropping frame: %s",
                            self.config.replica_id,
                            entry,
                        )
                        continue
                    sender, message = entry
                    registered, serving = await self._dispatch(
                        sender, message, writer, registered
                    )
                    if not serving:
                        break
        except (FrameError, ConnectionError, OSError) as exc:
            logger.debug("replica %d connection error: %s", self.config.replica_id, exc)
        finally:
            self._connections.discard(writer)
            if registered is not None:
                self.transport.unregister_stream(registered)
            writer.close()

    async def _decode_batch(
        self, payloads: list[bytes]
    ) -> list[tuple[int, Any] | WireCodecError]:
        """Decode one read's worth of frame payloads to (sender, message)."""
        self._h_decode_batch.observe(len(payloads))
        pool = self.workers
        if (
            pool is not None
            and pool.workers
            and sum(map(len, payloads)) >= OFFLOAD_MIN_BYTES
        ):
            self._c_decode_offloaded.inc()
            return await pool.decode(payloads)
        self._c_decode_inline.inc()
        return decode_payloads(payloads)

    async def _dispatch(
        self,
        sender: int,
        message: Any,
        writer: asyncio.StreamWriter,
        registered: int | None,
    ) -> tuple[int | None, bool]:
        """Route one decoded message; returns (registered, keep serving)."""
        assert self.transport is not None and self.replica is not None
        if isinstance(message, Hello):
            # Every hello advertises the sender's wire version; the
            # transport then encodes to that node at min(ours, theirs).
            self.transport.note_peer_version(message.node_id, message.wire_version)
            if message.role == "client":
                registered = message.node_id
                self.transport.register_stream(registered, writer)
                # Answer with our own hello so the client can upgrade
                # its request encoding symmetrically.
                await write_frame(
                    writer,
                    encode_envelope(
                        self.config.replica_id,
                        Hello(
                            self.config.replica_id,
                            role="replica",
                            wire_version=self.transport.wire_version,
                        ),
                    ),
                )
            return registered, True
        if isinstance(message, StatusRequest):
            await self._send_status(writer, message.nonce, sender)
            return registered, True
        if isinstance(message, MetricsRequest):
            await self._send_metrics(writer, message.nonce, sender)
            return registered, True
        if isinstance(message, ShutdownRequest):
            logger.info(
                "replica %d shutting down: %s",
                self.config.replica_id,
                message.reason or "requested",
            )
            self.stop()
            return registered, False
        # Route replies to clients over their inbound connection even
        # without an explicit Hello (robustness for simple clients).
        if registered is None and sender not in self.transport.peers:
            registered = sender
            self.transport.register_stream(sender, writer)
        if isinstance(message, ClientRequest) and message.tx.submitted_at is not None:
            # Client-stamped submission time (shared monotonic clock
            # on one host) opens the "send" stage of the breakdown.
            self.metrics.latency.record_submitted(
                message.tx.tx_id, message.tx.submitted_at
            )
        self.replica.receive(sender, message)
        return registered, True

    async def _send_status(
        self, writer: asyncio.StreamWriter, nonce: int, requester: int
    ) -> None:
        assert self.transport is not None
        reply = self.status(nonce)
        await write_frame(
            writer,
            encode_envelope(
                self.config.replica_id,
                reply,
                version=self.transport.version_for(requester),
            ),
        )

    async def _send_metrics(
        self, writer: asyncio.StreamWriter, nonce: int, requester: int
    ) -> None:
        assert self.transport is not None
        await write_frame(
            writer,
            encode_envelope(
                self.config.replica_id,
                self.metrics_reply(nonce),
                version=self.transport.version_for(requester),
            ),
        )

    # -- introspection ------------------------------------------------------

    def metrics_reply(self, nonce: int = 0) -> MetricsReply:
        """Registry snapshot as a control-plane reply (empty = obs off)."""
        uptime = 0.0
        if self.transport is not None and self.started_at is not None:
            uptime = self.transport.now() - self.started_at
        return MetricsReply(
            nonce=nonce,
            replica=self.config.replica_id,
            uptime=uptime,
            metrics=self.registry.snapshot(),
        )

    def status(self, nonce: int = 0) -> StatusReply:
        """Snapshot of this replica's progress (control plane)."""
        assert self.replica is not None
        core = self.replica.core
        return StatusReply(
            nonce=nonce,
            replica=self.config.replica_id,
            committed=self.metrics.committed,
            rejected=self.metrics.rejected,
            state_digest=core.store.state_digest(),
            delivered_frontier=tuple(core.delivered_state().sequence_numbers),
            view_changes=sum(
                endpoint.view_changes_completed
                for endpoint in self.replica.endpoints.values()
            ),
            stage_breakdown=self.metrics.latency.stage_breakdown_partial(),
        )


async def run_server(config: ReplicaRuntimeConfig) -> None:
    """Entry point used by ``repro serve``."""
    server = ReplicaServer(config)
    await server.start()
    await server.serve_forever()
