"""Live replica server: one OS process hosting one Multi-BFT replica.

The server builds the exact consensus stack the simulator uses — a
:class:`~repro.cluster.replica.MultiBFTReplica` wrapping an Orthrus (or
baseline) core — and hosts it behind an
:class:`~repro.runtime.transport.AsyncioTransport`.  Inbound frames (TCP, or
Unix domain sockets for ``unix:`` endpoints) are read in batches, decoded —
inline, or on the configured crypto/codec worker pool for large batches —
and fed to ``replica.receive``; the replica's own proposal loop and
failure-detector timers run on the event loop through the transport's timer
interface.  No consensus code is duplicated or forked for live operation.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
from typing import Any

from repro.cluster.messages import ClientRequest
from repro.cluster.replica import MultiBFTReplica
from repro.ledger.blocks import Block
from repro.metrics.summary import MetricsCollector
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import TraceWriter
from repro.runtime.chaos import make_abstention_filter, wan_delay_map
from repro.runtime.codec import (
    WireCodecError,
    _decode_block,
    _encode_block,
    encode_envelope,
)
from repro.runtime.config import ReplicaRuntimeConfig, format_endpoint
from repro.runtime.control import (
    RECOVERY_BLOCK_BATCH,
    Hello,
    LinkUpdate,
    MetricsReply,
    MetricsRequest,
    RecoveryReply,
    RecoveryRequest,
    ShutdownRequest,
    StatusReply,
    StatusRequest,
)
from repro.runtime.durability import ReplicaDurability, SnapshotError, restore_core
from repro.runtime.framing import FrameError, FrameReader, write_frame
from repro.runtime.transport import (
    AsyncioTransport,
    connect_endpoint,
    start_endpoint_server,
)
from repro.runtime.workers import (
    OFFLOAD_MIN_BYTES,
    InlineWorkers,
    WorkerPool,
    decode_payloads,
    make_worker_pool,
)
from repro.sb.pbft.endpoint import PBFTConfig

logger = logging.getLogger(__name__)

#: How often a durable replica checks for a wedged delivery frontier.  The
#: reconnection window after a peer restart can lose broadcast frames (there
#: is no per-message retransmission), so a replica that sees slots started
#: beyond its frontier while the frontier itself is stuck re-runs state
#: transfer to fill the gap.
CATCH_UP_INTERVAL = 0.5

#: Wall-clock window after start during which catch-up sweeps run on every
#: tick, wedged or not.  A block that commits cluster-side while the peers'
#: writers are still redialling us leaves *no* local trace — no started
#: slot, no pending bar work — so for as long as that loss window can be
#: open (failure detection plus reconnect backoff, well under a second) the
#: only way to learn about the tip is to ask.
CATCH_UP_SETTLE_SECONDS = 3.0


class ReplicaServer:
    """Host one replica of a live Multi-BFT cluster over asyncio TCP."""

    def __init__(self, config: ReplicaRuntimeConfig) -> None:
        self.config = config
        self.metrics = MetricsCollector()
        #: Named-instrument registry shared by the transport, the replica and
        #: the server's own inbound-path counters; inert under ``--no-obs``.
        self.registry = MetricsRegistry() if config.obs_enabled else NULL_REGISTRY
        self.tracer: TraceWriter | None = None
        if config.obs_enabled and config.trace_file and config.trace_sample > 0.0:
            self.tracer = TraceWriter(
                config.trace_file,
                node=config.replica_id,
                sample_rate=config.trace_sample,
            )
        self._c_bytes_in = self.registry.counter("transport.bytes_in")
        self._c_decode_inline = self.registry.counter("server.decode_batches_inline")
        self._c_decode_offloaded = self.registry.counter(
            "server.decode_batches_offloaded"
        )
        self._h_decode_batch = self.registry.histogram("server.decode_batch_size")
        self.transport: AsyncioTransport | None = None
        self.replica: MultiBFTReplica | None = None
        self.workers: WorkerPool | InlineWorkers | None = None
        self.durability: ReplicaDurability | None = None
        #: Wall-clock seconds the last (re)start spent recovering durable
        #: state — local snapshot + WAL replay plus peer state transfer.
        self.recovery_seconds: float = 0.0
        #: Live state transfers run after startup because the delivery
        #: frontier wedged on a lost frame (see :data:`CATCH_UP_INTERVAL`).
        self.catch_ups = 0
        self._catch_up_frontier: tuple[int, ...] | None = None
        self._catch_up_task: asyncio.Task[None] | None = None
        #: Transport-clock deadline until which the watchdog sweeps state
        #: transfer unconditionally (post-start restart window, and bumped
        #: by a partition heal).
        self._sweep_until = 0.0
        self.started_at: float | None = None
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self._metrics_sink = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Build the replica, open the listen socket, start proposing.

        With durability enabled (``run_dir``) a restart first recovers
        locally — newest valid snapshot, then the WAL suffix — and then,
        with the listen socket already open (so live consensus traffic and
        the transfer window overlap and no slot can fall in between), pulls
        whatever is still missing from peers before fast-forwarding the
        PBFT endpoints and starting to propose.
        """
        recovery_started = time.monotonic()
        peers = {index: endpoint for index, endpoint in enumerate(self.config.peers)}
        self.transport = AsyncioTransport(
            self.config.replica_id,
            peers,
            send_delay=self.config.send_delay,
            peer_delay=wan_delay_map(
                self.config.wan, self.config.replica_id, self.config.num_replicas
            ),
            wire_version=self.config.wire_version,
            registry=self.registry,
        )
        core = self.config.build_core()
        recovered_views: list[int] = [0] * core.config.num_instances
        if self.config.run_dir:
            self.durability = ReplicaDurability(
                self.config.run_dir,
                snapshot_every_epochs=self.config.snapshot_every_epochs,
                clock=self.transport.now,
            )
            if self.config.recovery == "genesis":
                self.durability.wipe()
            core, local = self.durability.recover(core, self.config.build_core)
            recovered_views = local.views
            if local.recovered_anything:
                logger.info(
                    "replica %d local recovery: snapshot epoch %s, %d WAL blocks",
                    self.config.replica_id,
                    local.snapshot_epoch,
                    local.blocks_replayed,
                )
        self.replica = MultiBFTReplica(
            replica_id=self.config.replica_id,
            num_replicas=self.config.num_replicas,
            core=core,
            pbft_config=PBFTConfig(view_change_timeout=self.config.view_change_timeout),
            batch_size=self.config.batch_size,
            batch_interval=self.config.batch_interval,
            metrics=self.metrics,
            transport=self.transport,
            registry=self.registry,
            tracer=self.tracer,
            durability=self.durability,
        )
        self.registry.gauge_fn("server.connections", lambda: len(self._connections))
        self.registry.gauge_fn("server.committed", lambda: self.metrics.committed)
        self.registry.gauge_fn("server.rejected", lambda: self.metrics.rejected)
        if self.durability is not None:
            durability = self.durability
            self.registry.gauge_fn("durability.wal_bytes", lambda: durability.wal_bytes)
            self.registry.gauge_fn("durability.snapshot_age", durability.snapshot_age)
            self.registry.gauge_fn(
                "durability.recovery_seconds", lambda: self.recovery_seconds
            )
        if self.config.byzantine_abstain:
            # Undetectable Byzantine abstention (Fig. 8): this replica keeps
            # proposing/voting in the instances it leads but silently drops
            # consensus messages for every other instance.
            self.transport.outbound_filter = make_abstention_filter(self.replica)
        self.workers = make_worker_pool(self.config.workers)
        if self.workers is not None:
            self.registry.gauge_fn(
                "workers.batches_submitted",
                lambda: getattr(self.workers, "batches_submitted", 0),
            )
            self.registry.gauge_fn(
                "workers.items_submitted",
                lambda: getattr(self.workers, "items_submitted", 0),
            )
        endpoint = self.config.listen_endpoint
        self._server = await start_endpoint_server(self._handle_connection, endpoint)
        if self.durability is not None:
            transferred, peer_views = await self._state_transfer()
            views = [max(own, peer) for own, peer in zip(recovered_views, peer_views)]
            self.replica.fast_forward(views)
            self.recovery_seconds = time.monotonic() - recovery_started
            if transferred or any(views):
                logger.info(
                    "replica %d state transfer: %d blocks, views %s, %.3fs recovery",
                    self.config.replica_id,
                    transferred,
                    views,
                    self.recovery_seconds,
                )
        self.replica.start()
        if self.durability is not None:
            self.registry.gauge_fn("durability.catch_ups", lambda: self.catch_ups)
        # The catch-up watchdog runs regardless of durability: a partition
        # heal leaves the same frontier wedge as a restart's reconnection
        # window, and the live state transfer it triggers can serve from
        # peers' in-memory logs.  Only the post-start settle sweeps are
        # durability-specific (they cover the restart loss window).
        self._arm_catch_up()
        self.started_at = self.transport.now()
        if self.config.obs_enabled and self.config.metrics_file:
            self._arm_metrics_snapshot()
        logger.info(
            "replica %d serving on %s (%s, %d instances, %d workers)",
            self.config.replica_id,
            format_endpoint(endpoint),
            self.config.protocol,
            self.config.instances,
            self.workers.workers,
        )

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (or a shutdown frame arrives)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        await self._shutdown()

    def stop(self) -> None:
        """Request a graceful stop (safe to call from any loop callback)."""
        self._stopped.set()

    async def _shutdown(self) -> None:
        if self._catch_up_task is not None:
            self._catch_up_task.cancel()
            try:
                await self._catch_up_task
            except (asyncio.CancelledError, Exception):
                pass
            self._catch_up_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the listen socket only stops *new* connections; peers and
        # clients already connected must see their sockets die too (that is
        # what a crash looks like from outside).
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        if self.transport is not None:
            await self.transport.close()
        if self.workers is not None:
            self.workers.close()
            self.workers = None
        if self.config.obs_enabled and self.config.metrics_file:
            # One final snapshot so post-mortem analysis sees the end state.
            self._write_metrics_snapshot()
        if self._metrics_sink is not None:
            self._metrics_sink.close()
            self._metrics_sink = None
        if self.durability is not None:
            # A graceful stop is a quiescent point: settle any snapshot owed
            # from an epoch that completed mid-burst before closing the WAL.
            if self.replica is not None:
                self.durability.maybe_cut_deferred_snapshot(self.replica.core)
            self.durability.close()
        if self.tracer is not None:
            self.tracer.close()

    # -- periodic metrics snapshots -----------------------------------------

    def _arm_metrics_snapshot(self) -> None:
        assert self.transport is not None

        def tick() -> None:
            if self._stopped.is_set():
                return
            self._write_metrics_snapshot()
            if self.tracer is not None:
                # Piggyback the trace flush on the snapshot cadence so trace
                # files stay readable mid-run without per-event syscalls.
                self.tracer.flush()
            self._arm_metrics_snapshot()

        self.transport.set_timer(self.config.metrics_interval, tick)

    def _write_metrics_snapshot(self) -> None:
        if not self.config.metrics_file or self.transport is None:
            return
        try:
            if self._metrics_sink is None:
                self._metrics_sink = open(
                    self.config.metrics_file, "a", encoding="utf-8"
                )
            record = {
                "t": self.transport.now(),
                "replica": self.config.replica_id,
            }
            record.update(self.registry.snapshot())
            self._metrics_sink.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._metrics_sink.flush()
        except OSError as exc:  # a full disk must not kill the replica
            logger.warning(
                "replica %d metrics snapshot failed: %s", self.config.replica_id, exc
            )

    # -- inbound path -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames from one peer/client connection until EOF.

        The read side is batched twice over: the :class:`FrameReader`
        surfaces every frame a socket read delivered in one ``await``, and a
        super-frame (wire v3) expands into its packed envelopes.  Large
        batches are decoded on the worker pool, keeping the hashing/parsing
        off the consensus event loop.
        """
        assert self.transport is not None and self.replica is not None
        registered: int | None = None
        self._connections.add(writer)
        frames = FrameReader(reader)
        try:
            serving = True
            while serving:
                payloads = await frames.read_batch()
                if payloads is None:
                    break
                self._c_bytes_in.inc(sum(map(len, payloads)))
                for entry in await self._decode_batch(payloads):
                    if isinstance(entry, WireCodecError):
                        logger.warning(
                            "replica %d dropping frame: %s",
                            self.config.replica_id,
                            entry,
                        )
                        continue
                    sender, message = entry
                    registered, serving = await self._dispatch(
                        sender, message, writer, registered
                    )
                    if not serving:
                        break
        except (FrameError, ConnectionError, OSError) as exc:
            logger.debug("replica %d connection error: %s", self.config.replica_id, exc)
        finally:
            self._connections.discard(writer)
            if registered is not None:
                self.transport.unregister_stream(registered)
            writer.close()

    async def _decode_batch(
        self, payloads: list[bytes]
    ) -> list[tuple[int, Any] | WireCodecError]:
        """Decode one read's worth of frame payloads to (sender, message)."""
        self._h_decode_batch.observe(len(payloads))
        pool = self.workers
        if (
            pool is not None
            and pool.workers
            and sum(map(len, payloads)) >= OFFLOAD_MIN_BYTES
        ):
            self._c_decode_offloaded.inc()
            return await pool.decode(payloads)
        self._c_decode_inline.inc()
        return decode_payloads(payloads)

    async def _dispatch(
        self,
        sender: int,
        message: Any,
        writer: asyncio.StreamWriter,
        registered: int | None,
    ) -> tuple[int | None, bool]:
        """Route one decoded message; returns (registered, keep serving)."""
        assert self.transport is not None and self.replica is not None
        if isinstance(message, Hello):
            # Every hello advertises the sender's wire version; the
            # transport then encodes to that node at min(ours, theirs).
            self.transport.note_peer_version(message.node_id, message.wire_version)
            if message.role == "client":
                registered = message.node_id
                self.transport.register_stream(registered, writer)
                # Answer with our own hello so the client can upgrade
                # its request encoding symmetrically.
                await write_frame(
                    writer,
                    encode_envelope(
                        self.config.replica_id,
                        Hello(
                            self.config.replica_id,
                            role="replica",
                            wire_version=self.transport.wire_version,
                        ),
                    ),
                )
            return registered, True
        if isinstance(message, StatusRequest):
            await self._send_status(writer, message.nonce, sender)
            return registered, True
        if isinstance(message, MetricsRequest):
            await self._send_metrics(writer, message.nonce, sender)
            return registered, True
        if isinstance(message, RecoveryRequest):
            await self._send_recovery(writer, message, sender)
            return registered, True
        if isinstance(message, LinkUpdate):
            # Chaos control plane: replace the partition-blocked peer set.
            # The set is absolute (not a delta), so replayed or reordered
            # updates are idempotent.
            healed = self.transport.blocked - frozenset(message.blocked)
            self.transport.set_blocked_peers(message.blocked)
            logger.info(
                "replica %d link update: blocked peers %s",
                self.config.replica_id,
                list(message.blocked) or "none",
            )
            if healed:
                # A heal: every frame dropped during the partition is gone
                # for good, and with no post-heal traffic the wedge detector
                # has nothing to compare against.  Sweep state transfer for
                # a settle window — a caught-up replica transfers nothing.
                self._sweep_until = max(
                    self._sweep_until,
                    self.transport.now() + CATCH_UP_SETTLE_SECONDS,
                )
            return registered, True
        if isinstance(message, ShutdownRequest):
            logger.info(
                "replica %d shutting down: %s",
                self.config.replica_id,
                message.reason or "requested",
            )
            self.stop()
            return registered, False
        # Route replies to clients over their inbound connection even
        # without an explicit Hello (robustness for simple clients).
        if registered is None and sender not in self.transport.peers:
            registered = sender
            self.transport.register_stream(sender, writer)
        if isinstance(message, ClientRequest) and message.tx.submitted_at is not None:
            # Client-stamped submission time (shared monotonic clock
            # on one host) opens the "send" stage of the breakdown.
            self.metrics.latency.record_submitted(
                message.tx.tx_id, message.tx.submitted_at
            )
        self.replica.receive(sender, message)
        return registered, True

    async def _send_status(
        self, writer: asyncio.StreamWriter, nonce: int, requester: int
    ) -> None:
        assert self.transport is not None
        reply = self.status(nonce)
        await write_frame(
            writer,
            encode_envelope(
                self.config.replica_id,
                reply,
                version=self.transport.version_for(requester),
            ),
        )

    async def _send_metrics(
        self, writer: asyncio.StreamWriter, nonce: int, requester: int
    ) -> None:
        assert self.transport is not None
        await write_frame(
            writer,
            encode_envelope(
                self.config.replica_id,
                self.metrics_reply(nonce),
                version=self.transport.version_for(requester),
            ),
        )

    # -- crash recovery / state transfer ------------------------------------

    async def _state_transfer(self) -> tuple[int, list[int]]:
        """Pull the committed state this replica is missing from its peers.

        Runs with the listen socket already open, so the transfer window and
        live consensus traffic overlap: everything committed up to the last
        fetch arrives here, everything after arrives as ordinary consensus
        messages.  A block that commits cluster-side right inside the
        hand-off (its pre-prepare predates our socket, its commit postdates
        the last fetch) is recovered by the normal view-change path — the
        new-view message re-carries undelivered proposals.  Returns the
        number of transferred blocks and the highest installed view seen
        per instance.
        """
        assert self.replica is not None
        views = [0] * self.replica.core.config.num_instances
        transferred = 0
        for peer_id, endpoint in enumerate(self.config.peers):
            if peer_id == self.config.replica_id:
                continue
            if self.transport is not None and peer_id in self.transport.blocked:
                # Recovery dials fresh sockets, which would tunnel straight
                # through an active partition rule; an unreachable peer must
                # stay unreachable for state transfer too.
                continue
            try:
                fetched, peer_views = await asyncio.wait_for(
                    self._fetch_from_peer(endpoint), timeout=30.0
                )
            except (OSError, ConnectionError, asyncio.TimeoutError,
                    FrameError, WireCodecError) as exc:
                logger.debug(
                    "replica %d state transfer from peer %d failed: %s",
                    self.config.replica_id,
                    peer_id,
                    exc,
                )
                continue
            transferred += fetched
            for instance, view in enumerate(peer_views[: len(views)]):
                views[instance] = max(views[instance], view)
        return transferred, views

    async def _fetch_from_peer(
        self, endpoint: tuple[str, int]
    ) -> tuple[int, tuple[int, ...]]:
        """Request snapshot + block batches from one peer until caught up."""
        assert self.replica is not None
        reader, writer = await connect_endpoint(endpoint)
        fetched = 0
        views: tuple[int, ...] = ()
        try:
            frames = FrameReader(reader)
            # Recovery is a one-shot control exchange, not the hot path: pin
            # the connection to canonical JSON (v1) so it works against any
            # peer without waiting for version negotiation.
            await write_frame(
                writer,
                encode_envelope(
                    self.config.replica_id,
                    Hello(self.config.replica_id, role="replica", wire_version=1),
                    version=1,
                ),
            )
            nonce = 0
            while True:
                nonce += 1
                request = RecoveryRequest(
                    nonce=nonce,
                    replica=self.config.replica_id,
                    frontier=tuple(
                        self.replica.core.delivered_state().sequence_numbers
                    ),
                )
                await write_frame(
                    writer,
                    encode_envelope(self.config.replica_id, request, version=1),
                )
                reply = await self._read_recovery_reply(frames, nonce)
                if reply is None:
                    break
                views = reply.views
                progressed = self._apply_recovery_reply(reply)
                fetched += progressed
                if progressed == 0:
                    break
        finally:
            writer.close()
        return fetched, views

    async def _read_recovery_reply(
        self, frames: FrameReader, nonce: int
    ) -> RecoveryReply | None:
        """Next :class:`RecoveryReply` matching ``nonce`` on the connection."""
        while True:
            payloads = await asyncio.wait_for(frames.read_batch(), timeout=10.0)
            if payloads is None:
                return None
            for entry in decode_payloads(payloads):
                if isinstance(entry, WireCodecError):
                    continue
                _, message = entry
                if isinstance(message, RecoveryReply) and message.nonce == nonce:
                    return message

    def _apply_recovery_reply(self, reply: RecoveryReply) -> int:
        """Apply one transfer reply; returns a progress count (0 = done)."""
        assert self.replica is not None
        snapshot_restored = False
        if reply.snapshot:
            try:
                snapshot = json.loads(reply.snapshot)
            except ValueError:
                snapshot = None
            if isinstance(snapshot, dict):
                snapshot_restored = self._maybe_restore_snapshot(snapshot, reply)
        core = self.replica.core
        delivered = list(core.delivered_state().sequence_numbers)
        applied = 0
        for data in reply.blocks:
            try:
                block = _decode_block(data)
            except (KeyError, ValueError, TypeError):
                continue
            if block.instance >= len(delivered):
                continue
            if block.sequence_number != delivered[block.instance] + 1:
                # Either already delivered, or a hole: a compacted peer WAL
                # starts at that peer's own snapshot frontier, so when its
                # snapshot was not adoptable the served blocks may skip
                # sequences we still need.  Executing across a gap would
                # silently diverge the state machine — stop at the hole and
                # let the watchdog retry against another (or a fresher) peer.
                continue
            core.on_block_delivered(block)
            delivered[block.instance] = block.sequence_number
            if self.durability is not None:
                self.durability.record_transferred_block(block)
            applied += 1
        if applied or snapshot_restored:
            # Epochs completed during transfer replay are already quorum-
            # stable cluster-side; don't re-broadcast votes for them.
            pending = getattr(core, "pending_checkpoints", None)
            if pending:
                pending.clear()
        return applied + (1 if snapshot_restored and applied == 0 else 0)

    def _maybe_restore_snapshot(
        self, snapshot: dict[str, Any], reply: RecoveryReply
    ) -> bool:
        """Adopt a transferred snapshot when it strictly extends our state.

        Restoring is a wholesale overwrite onto a freshly built core, so it
        is only safe when the snapshot's delivered frontier covers every
        block this replica already replayed.  The snapshot self-verifies
        against its recorded state digest and is cross-checked against the
        quorum-stable checkpoint digest the peer pinned in the reply.
        """
        assert self.replica is not None
        delivered = list(self.replica.core.delivered_state().sequence_numbers)
        try:
            snap_delivered = [int(v) for v in snapshot.get("delivered", [])]
        except (ValueError, TypeError):
            return False
        if len(snap_delivered) != len(delivered):
            return False
        if not all(s >= d for s, d in zip(snap_delivered, delivered)):
            return False
        if snap_delivered == delivered:
            return False
        if (
            reply.checkpoint_digest
            and int(snapshot.get("epoch", -2)) == reply.checkpoint_epoch
            and snapshot.get("checkpoint_digest") != reply.checkpoint_digest
        ):
            logger.warning(
                "replica %d rejecting transferred snapshot: checkpoint digest "
                "does not match the quorum-stable digest for epoch %d",
                self.config.replica_id,
                reply.checkpoint_epoch,
            )
            return False
        fresh = self.config.build_core()
        try:
            restore_core(fresh, snapshot)
        except SnapshotError as exc:
            logger.warning(
                "replica %d rejecting transferred snapshot: %s",
                self.config.replica_id,
                exc,
            )
            return False
        self.replica.core = fresh
        logger.info(
            "replica %d restored peer snapshot at epoch %s",
            self.config.replica_id,
            snapshot.get("epoch"),
        )
        return True

    # -- post-start catch-up --------------------------------------------------

    def _arm_catch_up(self) -> None:
        """Watch for a wedged delivery frontier and heal it by state transfer.

        PBFT delivers strictly in order and this transport does not
        retransmit lost frames: a pre-prepare or commit broadcast while a
        peer's writer was still reconnecting after our restart is gone for
        good, and every later slot of that instance then piles up behind the
        hole.  The watchdog fires when the frontier made no progress over a
        whole interval while some slot beyond it has already started — live
        evidence the cluster moved on without us — and re-runs the same
        state transfer the startup path uses, then re-aligns the endpoints.
        A healthy replica never triggers it (either the frontier moves, or
        nothing beyond it has started), so the steady-state cost is one
        frontier comparison per interval.
        """
        assert self.transport is not None
        # Settle sweeps exist to cover the restart loss window, which only
        # durable replicas recover through; without durability the watchdog
        # is wedge-triggered only (until a heal bumps the sweep deadline).
        if self.durability is not None:
            self._sweep_until = self.transport.now() + CATCH_UP_SETTLE_SECONDS

        def tick() -> None:
            if self._stopped.is_set() or self.replica is None:
                return
            wedged = self._delivery_wedged()
            settling = (
                self.transport is not None
                and self.transport.now() < self._sweep_until
            )
            if (self._catch_up_task is None or self._catch_up_task.done()) and (
                wedged or settling
            ):
                self._catch_up_task = asyncio.get_running_loop().create_task(
                    self._catch_up()
                )
            if self.transport is not None:
                self.transport.set_timer(CATCH_UP_INTERVAL, tick)

        self.transport.set_timer(CATCH_UP_INTERVAL, tick)

    def _delivery_wedged(self) -> bool:
        """True when some instance stalled behind slots the cluster started.

        Per-instance on purpose: a replica wedged on one instance keeps
        proposing no-ops on the instances it leads (the global orderer has
        blocks waiting on the bar), so the frontier as a whole never stops
        moving — only the wedged instance's component does.
        """
        assert self.replica is not None
        delivered = tuple(self.replica.core.delivered_state().sequence_numbers)
        previous = self._catch_up_frontier
        self._catch_up_frontier = delivered
        if previous is None or len(previous) != len(delivered):
            return False
        return any(
            delivered[instance] == previous[instance]
            and endpoint.slots.highest_started() > delivered[instance]
            for instance, endpoint in self.replica.endpoints.items()
        )

    async def _catch_up(self) -> None:
        transferred, views = await self._state_transfer()
        if self.replica is None or self._stopped.is_set():
            return
        if transferred:
            # Same re-alignment as startup: drop slots below the new
            # frontier (their sequence numbers are spoken for) and install
            # any views the cluster moved to while we were deaf.
            self.replica.fast_forward(views)
            self.catch_ups += 1
            logger.info(
                "replica %d caught up: %d blocks via live state transfer",
                self.config.replica_id,
                transferred,
            )
            # Progress extends the sweep: a round that still moved blocks
            # means we are chasing a head that advanced while we fetched,
            # so a fixed heal+settle deadline can expire mid-chase.  The
            # first round that transfers nothing lets the deadline stand —
            # we are converged (or wedge detection takes over).
            if self.transport is not None:
                self._sweep_until = max(
                    self._sweep_until,
                    self.transport.now() + CATCH_UP_SETTLE_SECONDS,
                )
        else:
            logger.debug(
                "replica %d catch-up round transferred nothing",
                self.config.replica_id,
            )

    async def _send_recovery(
        self, writer: asyncio.StreamWriter, request: RecoveryRequest, requester: int
    ) -> None:
        """Answer a recovering peer with our snapshot and missing blocks."""
        assert self.replica is not None and self.transport is not None
        core = self.replica.core
        width = core.config.num_instances
        requestor_frontier = list(request.frontier)
        if len(requestor_frontier) != width:
            requestor_frontier = (requestor_frontier + [-1] * width)[:width]
        if self.durability is not None:
            blocks = self.durability.wal_blocks_above(requestor_frontier)
        else:
            blocks = self._blocks_above(requestor_frontier)
        # A global prefix of delivery-ordered blocks keeps every instance's
        # subsequence a prefix too, so the requestor can apply it directly.
        blocks = blocks[:RECOVERY_BLOCK_BATCH]
        checkpoint_epoch = self.replica.latest_stable_epoch()
        checkpoint_digest = (
            self.replica.stable_checkpoint_digest(checkpoint_epoch) or ""
            if checkpoint_epoch >= 0
            else ""
        )
        snapshot_text = ""
        if self.durability is not None:
            snapshot = self.durability.latest_snapshot()
            if snapshot is not None:
                snap_delivered = snapshot.get("delivered", [])
                if any(
                    int(s) > r
                    for s, r in zip(snap_delivered, requestor_frontier)
                ):
                    snapshot_text = json.dumps(
                        snapshot, sort_keys=True, separators=(",", ":")
                    )
        reply = RecoveryReply(
            nonce=request.nonce,
            replica=self.config.replica_id,
            frontier=tuple(core.delivered_state().sequence_numbers),
            views=tuple(
                self.replica.endpoints[instance].view for instance in range(width)
            ),
            checkpoint_epoch=checkpoint_epoch,
            checkpoint_digest=checkpoint_digest,
            snapshot=snapshot_text,
            blocks=tuple(_encode_block(block) for block in blocks),
        )
        await write_frame(
            writer,
            encode_envelope(
                self.config.replica_id,
                reply,
                version=self.transport.version_for(requester),
            ),
        )

    def _blocks_above(self, frontier: list[int]) -> list[Block]:
        """Missing blocks served from the in-memory partial logs.

        Fallback for peers running without durability; epoch garbage
        collection may have pruned old blocks here, in which case a durable
        peer (or its snapshot) has to cover the gap.
        """
        assert self.replica is not None
        core = self.replica.core
        delivered = core.delivered_state().sequence_numbers
        blocks: list[Block] = []
        for instance, plog in enumerate(core.plogs):
            if instance >= len(frontier):
                break
            for sequence in range(frontier[instance] + 1, delivered[instance] + 1):
                block = plog.get(sequence)
                if block is None:
                    break
                blocks.append(block)
        return blocks

    # -- introspection ------------------------------------------------------

    def metrics_reply(self, nonce: int = 0) -> MetricsReply:
        """Registry snapshot as a control-plane reply (empty = obs off)."""
        uptime = 0.0
        if self.transport is not None and self.started_at is not None:
            uptime = self.transport.now() - self.started_at
        return MetricsReply(
            nonce=nonce,
            replica=self.config.replica_id,
            uptime=uptime,
            metrics=self.registry.snapshot(),
        )

    def status(self, nonce: int = 0) -> StatusReply:
        """Snapshot of this replica's progress (control plane)."""
        assert self.replica is not None
        core = self.replica.core
        return StatusReply(
            nonce=nonce,
            replica=self.config.replica_id,
            committed=self.metrics.committed,
            rejected=self.metrics.rejected,
            state_digest=core.store.state_digest(),
            delivered_frontier=tuple(core.delivered_state().sequence_numbers),
            view_changes=sum(
                endpoint.view_changes_completed
                for endpoint in self.replica.endpoints.values()
            ),
            stage_breakdown=self.metrics.latency.stage_breakdown_partial(),
        )


async def run_server(config: ReplicaRuntimeConfig) -> None:
    """Entry point used by ``repro serve``."""
    server = ReplicaServer(config)
    await server.start()
    # SIGTERM (the supervisor's polite stop) must run the full shutdown
    # path: it flushes the WAL tail past the last fsync batch and writes
    # the final metrics snapshot.  Only SIGKILL should look like a crash.
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, server.stop)
    except (NotImplementedError, RuntimeError):  # non-Unix loops
        pass
    try:
        await server.serve_forever()
    finally:
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
