"""Live fault injection: apply a :class:`FaultPlan` to a real cluster.

The simulator has injected the paper's three degradation modes since the
first PR; this module brings them to the asyncio runtime so the same
:class:`~repro.cluster.faults.FaultPlan` drives real processes over real
sockets:

* **Stragglers** — a slowdown factor becomes a per-frame outbound delay
  inside the straggler's :class:`~repro.runtime.transport.AsyncioTransport`
  (:func:`send_delay_for`), so everything the slow replica says arrives late,
  exactly like a CPU- or link-degraded node.
* **Detectable crashes** — the :class:`ChaosController` SIGKILLs the
  replica's OS process at its scheduled time (and optionally restarts it);
  survivors detect the silence through the PBFT failure detector and rotate
  the crashed leader out via a view change.
* **Undetectable Byzantine abstention** — the abstaining replica keeps
  proposing and voting in the instances it *leads* but silently drops its
  consensus messages for every other instance
  (:func:`make_abstention_filter`), so no timeout ever fires yet every other
  instance must form quorums from the remaining ``2f + 1`` replicas.

Unlike the simulator, none of this is deterministic: crash times are wall
clock, view changes race real traffic, and two runs of the same plan will
not produce identical logs.  What must still hold — and what the chaos tests
assert — is the *distributed-systems* contract: surviving replicas converge
to identical state digests and clients keep completing with ``f + 1``
matching replies.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.cluster.faults import FaultPlan
from repro.errors import ConfigurationError
from repro.sb.pbft.messages import PBFTMessage

#: Outbound per-frame delay corresponding to slowdown factor 2.0 (seconds).
#: A slowdown of ``s`` maps to ``(s - 1) * STRAGGLER_UNIT_DELAY``; the
#: paper's 10x straggler therefore holds every frame for 45 ms — enough to
#: dominate localhost round trips without freezing the run.
STRAGGLER_UNIT_DELAY = 0.005


def send_delay_for(
    plan: FaultPlan, replica_id: int, *, unit: float = STRAGGLER_UNIT_DELAY
) -> float:
    """Outbound frame delay (seconds) for one replica under ``plan``."""
    slowdown = plan.slowdown_of(replica_id)
    return max(0.0, (slowdown - 1.0) * unit)


def abstaining_replicas(plan: FaultPlan, num_replicas: int) -> set[int]:
    """Replica ids that abstain under ``plan`` (the last ``k`` replicas).

    The paper deploys one SB instance per replica, so every replica leads
    somewhere and "abstain from instances you do not lead" is meaningful for
    any of them.  With fewer instances than replicas the low ids hold the
    initial leaderships, so the *highest* ids are picked — they abstain
    everywhere while the protocol-critical leaders stay honest, matching the
    Fig. 8 setup where quorums shrink but no failure detector fires.
    """
    count = plan.undetectable_faults
    if count <= 0:
        return set()
    if count > (num_replicas - 1) // 3:
        raise ConfigurationError(
            f"{count} abstaining replicas exceed f = {(num_replicas - 1) // 3} "
            f"for n = {num_replicas}; quorums would be unreachable"
        )
    return set(range(num_replicas - count, num_replicas))


def make_abstention_filter(replica: Any) -> Callable[[Any], bool]:
    """Outbound-message predicate implementing Byzantine abstention.

    Keeps every non-consensus message (client replies, control plane) and
    consensus messages for instances ``replica`` currently leads; drops
    consensus messages for all other instances.  Leadership is evaluated per
    message so the behaviour follows view changes.
    """

    def keep(message: Any) -> bool:
        if not isinstance(message, PBFTMessage):
            return True
        return message.instance in replica.led_instances()

    return keep


# -- WAN emulation specs ------------------------------------------------------

#: Named latency models ``FaultPlan.wan`` accepts (see ``net/latency.py``).
WAN_MODEL_NAMES = ("wan", "lan")


def parse_wan_spec(
    value: Any,
) -> str | tuple[tuple[float, ...], ...] | None:
    """Canonicalise a WAN spec: a model name, a delay matrix, or ``None``.

    Accepts the named models from ``net/latency.py`` (``"wan"``/``"lan"``),
    an explicit square one-way delay matrix (list/tuple of rows, JSON text,
    or an ``@file`` reference to JSON), or ``None``.  Returns the canonical
    hashable form: the name string or a tuple-of-tuples matrix.
    """
    if value is None:
        return None
    if isinstance(value, str):
        text = value.strip()
        if text in WAN_MODEL_NAMES:
            return text
        if text.startswith("@"):
            try:
                text = Path(text[1:]).read_text(encoding="utf-8")
            except OSError as exc:
                raise ConfigurationError(f"cannot read WAN matrix file: {exc}") from exc
        try:
            value = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"WAN spec must be one of {WAN_MODEL_NAMES} or a JSON delay "
                f"matrix: {exc}"
            ) from exc
    if not isinstance(value, (list, tuple)) or not value:
        raise ConfigurationError("WAN matrix must be a non-empty list of rows")
    matrix: list[tuple[float, ...]] = []
    for row in value:
        if not isinstance(row, (list, tuple)) or len(row) != len(value):
            raise ConfigurationError("WAN matrix must be square")
        try:
            cells = tuple(float(cell) for cell in row)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed WAN matrix row {row!r}: {exc}") from exc
        if any(cell < 0 for cell in cells):
            raise ConfigurationError("WAN matrix delays must be non-negative")
        matrix.append(cells)
    return tuple(matrix)


def wan_to_text(wan: str | tuple[tuple[float, ...], ...] | None) -> str | None:
    """Render a canonical WAN spec back to flag/JSON text (``None`` passes)."""
    if wan is None:
        return None
    if isinstance(wan, str):
        return wan
    return json.dumps([list(row) for row in wan])


def wan_delay_map(
    wan: str | tuple[tuple[float, ...], ...] | None,
    replica_id: int,
    num_replicas: int,
) -> dict[int, float]:
    """Per-destination one-way delays for one replica under a WAN spec.

    ``None`` (no emulation) maps to no delays.  Named models use the sim's
    region matrices with the same round-robin region assignment
    (``node_id % regions``); an explicit matrix is used verbatim with
    ``len(matrix)`` synthetic regions.  The self-delay (the matrix
    diagonal) is omitted: a replica does not talk to itself over the
    transport.
    """
    from repro.net.latency import LANLatencyModel, WANLatencyModel

    spec = parse_wan_spec(wan)
    if spec is None:
        return {}
    if spec == "lan":
        flat = LANLatencyModel().base_delay
        return {
            destination: flat
            for destination in range(num_replicas)
            if destination != replica_id
        }
    if isinstance(spec, str):
        model = WANLatencyModel()
    else:
        regions = tuple(f"region-{n}" for n in range(len(spec)))
        model = WANLatencyModel(regions=regions, matrix=spec)
    return {
        destination: model.base_delay(replica_id, destination)
        for destination in range(num_replicas)
        if destination != replica_id
    }


# -- fault plan (de)serialisation --------------------------------------------


def fault_plan_to_json(plan: FaultPlan) -> str:
    """Serialise a plan to the JSON shape ``fault_plan_from_json`` reads."""
    return json.dumps(
        {
            "stragglers": {str(k): v for k, v in sorted(plan.stragglers.items())},
            "crashes": {str(k): v for k, v in sorted(plan.crashes.items())},
            "restarts": {str(k): v for k, v in sorted(plan.restarts.items())},
            "churn": [list(cycle) for cycle in plan.churn],
            "partitions": [
                [at, [list(group) for group in groups], duration]
                for at, groups, duration in plan.partitions
            ],
            "oneway_drops": [list(entry) for entry in plan.oneway_drops],
            "wan": wan_to_text(plan.wan),
            "expect_stall": plan.expect_stall,
            "view_change_timeout": plan.view_change_timeout,
            "undetectable_faults": plan.undetectable_faults,
        },
        sort_keys=True,
    )


def fault_plan_from_json(
    text: str, *, default_view_change_timeout: float | None = None
) -> FaultPlan:
    """Parse a :class:`FaultPlan` from JSON text or an ``@file`` reference.

    Accepted keys (all optional): ``stragglers`` (replica -> slowdown),
    ``crashes`` (replica -> seconds), ``restarts`` (replica -> seconds),
    ``churn`` (list of ``[at, replica, downtime]`` crash/restart cycles),
    ``view_change_timeout``, ``undetectable_faults``.  Unknown keys are an
    error — a typo silently producing a fault-free plan would invalidate an
    entire experiment.  ``default_view_change_timeout`` applies when the JSON
    does not set one (the CLI threads its own flag through here).
    """
    text = text.strip()
    if text.startswith("@"):
        try:
            text = Path(text[1:]).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan file: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError("fault plan must be a JSON object")
    known = {
        "stragglers",
        "crashes",
        "restarts",
        "churn",
        "partitions",
        "oneway_drops",
        "wan",
        "expect_stall",
        "view_change_timeout",
        "undetectable_faults",
    }
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown fault plan keys: {', '.join(sorted(unknown))}"
        )

    def id_map(key: str) -> dict[int, float]:
        raw = data.get(key, {})
        if not isinstance(raw, dict):
            raise ConfigurationError(f"fault plan {key!r} must be an object")
        try:
            return {int(k): float(v) for k, v in raw.items()}
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed fault plan {key!r}: {exc}") from exc

    raw_churn = data.get("churn", [])
    if not isinstance(raw_churn, list):
        raise ConfigurationError("fault plan 'churn' must be a list")
    churn: list[tuple[float, int, float]] = []
    for entry in raw_churn:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise ConfigurationError(
                "each churn entry must be [at, replica, downtime]"
            )
        try:
            churn.append((float(entry[0]), int(entry[1]), float(entry[2])))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed churn entry {entry!r}: {exc}") from exc

    raw_partitions = data.get("partitions", [])
    if not isinstance(raw_partitions, list):
        raise ConfigurationError("fault plan 'partitions' must be a list")
    partitions: list[tuple[float, tuple[tuple[int, ...], ...], float]] = []
    for entry in raw_partitions:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise ConfigurationError(
                "each partition entry must be [at, [groups...], duration]"
            )
        at_raw, groups_raw, duration_raw = entry
        if not isinstance(groups_raw, (list, tuple)):
            raise ConfigurationError(
                "partition groups must be a list of replica-id lists"
            )
        try:
            groups = tuple(
                tuple(int(replica) for replica in group) for group in groups_raw
            )
            partitions.append((float(at_raw), groups, float(duration_raw)))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed partition entry {entry!r}: {exc}"
            ) from exc

    raw_oneway = data.get("oneway_drops", [])
    if not isinstance(raw_oneway, list):
        raise ConfigurationError("fault plan 'oneway_drops' must be a list")
    oneway_drops: list[tuple[float, int, int, float]] = []
    for entry in raw_oneway:
        if not isinstance(entry, (list, tuple)) or len(entry) != 4:
            raise ConfigurationError(
                "each oneway_drops entry must be [at, source, destination, duration]"
            )
        try:
            oneway_drops.append(
                (float(entry[0]), int(entry[1]), int(entry[2]), float(entry[3]))
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed oneway_drops entry {entry!r}: {exc}"
            ) from exc

    fallback_timeout = (
        default_view_change_timeout
        if default_view_change_timeout is not None
        else FaultPlan().view_change_timeout
    )
    plan = FaultPlan(
        stragglers=id_map("stragglers"),
        crashes=id_map("crashes"),
        restarts=id_map("restarts"),
        churn=tuple(churn),
        partitions=tuple(partitions),
        oneway_drops=tuple(oneway_drops),
        wan=parse_wan_spec(data.get("wan")),
        expect_stall=bool(data.get("expect_stall", False)),
        view_change_timeout=float(data.get("view_change_timeout", fallback_timeout)),
        undetectable_faults=int(data.get("undetectable_faults", 0)),
    )
    validate_fault_plan(plan)
    return plan


def partition_components(
    groups: tuple[tuple[int, ...], ...], num_replicas: int
) -> list[set[int]]:
    """Expand a partition's groups into the full component list.

    Replicas named in no explicit group form one implicit remainder
    component — ``groups=((3,),)`` at ``n = 4`` means "isolate replica 3
    from {0, 1, 2}".
    """
    components = [set(group) for group in groups]
    named = set().union(*components) if components else set()
    remainder = set(range(num_replicas)) - named
    if remainder:
        components.append(remainder)
    return components


def blocked_peers_for(
    replica_id: int,
    *,
    active_partitions: list[tuple[tuple[int, ...], ...]],
    active_oneways: set[tuple[int, int]],
    num_replicas: int,
) -> tuple[int, ...]:
    """Peer ids ``replica_id`` must not send to under the active rules.

    Symmetric partitions block both directions (each side computes the
    other as blocked); a one-way drop blocks only the source's sends, so
    the destination keeps talking back — the classic asymmetric-loss case.
    """
    blocked: set[int] = set()
    for groups in active_partitions:
        for component in partition_components(groups, num_replicas):
            if replica_id in component:
                blocked |= set(range(num_replicas)) - component
                break
    for source, destination in active_oneways:
        if source == replica_id:
            blocked.add(destination)
    blocked.discard(replica_id)
    return tuple(sorted(blocked))


def validate_fault_plan(plan: FaultPlan, num_replicas: int | None = None) -> None:
    """Reject plans the live runtime cannot execute coherently."""
    parse_wan_spec(plan.wan)
    for at_time, groups, duration in plan.partitions:
        if at_time < 0:
            raise ConfigurationError("partition start time is negative")
        if duration <= 0:
            raise ConfigurationError(
                f"partition at {at_time}s must heal after a positive duration"
            )
        if not groups or any(not group for group in groups):
            raise ConfigurationError(
                f"partition at {at_time}s needs at least one non-empty group"
            )
        seen: set[int] = set()
        for group in groups:
            overlap = seen & set(group)
            if overlap:
                raise ConfigurationError(
                    f"partition at {at_time}s lists replica "
                    f"{sorted(overlap)[0]} in more than one group"
                )
            seen |= set(group)
    ordered = sorted((at, at + duration) for at, _, duration in plan.partitions)
    for (start_a, end_a), (start_b, _) in zip(ordered, ordered[1:]):
        if start_b < end_a:
            raise ConfigurationError(
                f"partitions overlap: one starting at {start_b}s begins before "
                f"the heal at {end_a}s — merge them into a single rule"
            )
    for at_time, source, destination, duration in plan.oneway_drops:
        if at_time < 0:
            raise ConfigurationError("one-way drop start time is negative")
        if duration <= 0:
            raise ConfigurationError(
                f"one-way drop at {at_time}s must heal after a positive duration"
            )
        if source == destination:
            raise ConfigurationError(
                f"one-way drop at {at_time}s names replica {source} as both "
                f"source and destination"
            )
    for replica, slowdown in plan.stragglers.items():
        if slowdown < 1.0:
            raise ConfigurationError(
                f"straggler slowdown for replica {replica} must be >= 1.0"
            )
    for replica, at_time in plan.crashes.items():
        if at_time < 0:
            raise ConfigurationError(f"crash time for replica {replica} is negative")
    for replica, at_time in plan.restarts.items():
        crash_at = plan.crash_time_of(replica)
        if crash_at is None:
            raise ConfigurationError(
                f"restart scheduled for replica {replica} which never crashes"
            )
        if at_time <= crash_at:
            raise ConfigurationError(
                f"replica {replica} restarts at {at_time}s, "
                f"before its crash at {crash_at}s"
            )
    per_replica_cycles: dict[int, list[tuple[float, float]]] = {}
    for at_time, replica, downtime in plan.churn:
        if at_time < 0:
            raise ConfigurationError(
                f"churn crash time for replica {replica} is negative"
            )
        if downtime <= 0:
            raise ConfigurationError(
                f"churn downtime for replica {replica} must be positive"
            )
        per_replica_cycles.setdefault(replica, []).append((at_time, downtime))
    for replica, cycles in per_replica_cycles.items():
        cycles.sort()
        for (at_a, down_a), (at_b, _) in zip(cycles, cycles[1:]):
            if at_b <= at_a + down_a:
                raise ConfigurationError(
                    f"churn cycles for replica {replica} overlap: crash at "
                    f"{at_b}s falls before the restart at {at_a + down_a}s"
                )
    if num_replicas is not None:
        faulty = set(plan.crashes) | abstaining_replicas(plan, num_replicas)
        limit = (num_replicas - 1) // 3
        if len(faulty) > limit:
            raise ConfigurationError(
                f"plan makes {len(faulty)} replicas faulty but n = {num_replicas} "
                f"only tolerates f = {limit}"
            )
        # A partition must leave some component able to form quorums: at
        # most f replicas cut off from the largest side.  Plans that
        # deliberately deny every quorum must say so with expect_stall.
        for at_time, groups, duration in plan.partitions:
            components = partition_components(groups, num_replicas)
            isolated = num_replicas - max(len(c) for c in components)
            if isolated > limit and not plan.expect_stall:
                raise ConfigurationError(
                    f"partition at {at_time}s cuts {isolated} replicas off the "
                    f"largest component but n = {num_replicas} only tolerates "
                    f"f = {limit}; mark the plan expect_stall to run it anyway"
                )
        # Churn and partition victims are only transiently unavailable; what
        # must stay within f is the *concurrently* unavailable count at any
        # instant — a partition minority composing with a churn downtime can
        # deny quorums even when each alone would not.
        edges: list[tuple[float, int]] = []
        for at_time, _, downtime in plan.churn:
            edges.append((at_time, 1))
            edges.append((at_time + downtime, -1))
        if not plan.expect_stall:
            for at_time, groups, duration in plan.partitions:
                components = partition_components(groups, num_replicas)
                isolated = num_replicas - max(len(c) for c in components)
                if isolated > 0:
                    edges.append((at_time, isolated))
                    edges.append((at_time + duration, -isolated))
        if edges:
            concurrent = peak = 0
            for _, delta in sorted(edges):
                concurrent += delta
                peak = max(peak, concurrent)
            if len(faulty) + peak > limit:
                raise ConfigurationError(
                    f"plan takes {len(faulty) + peak} replicas down at once "
                    f"but n = {num_replicas} only tolerates f = {limit}"
                )
        churn_replicas = [replica for _, replica, _ in plan.churn]
        partition_replicas = [
            replica for _, groups, _ in plan.partitions for group in groups
            for replica in group
        ]
        oneway_replicas = [
            replica for _, source, destination, _ in plan.oneway_drops
            for replica in (source, destination)
        ]
        named = (
            list(plan.stragglers)
            + list(plan.crashes)
            + churn_replicas
            + partition_replicas
            + oneway_replicas
        )
        for replica in named:
            if not 0 <= replica < num_replicas:
                raise ConfigurationError(
                    f"fault plan names replica {replica} but the cluster has "
                    f"{num_replicas} replicas"
                )


# -- scheduled process faults -------------------------------------------------


@dataclass
class ChaosEvent:
    """One executed fault action (for reports and assertions)."""

    at: float
    action: str  # "crash" | "restart" | "partition" | "heal" | "drop" | "undrop"
    #: Replica id for process actions; the plan-rule index for link actions.
    replica: int
    #: Human-readable description for link actions (empty for process ones).
    label: str = ""

    def describe(self) -> str:
        """Render the event for logs and console output."""
        if self.label:
            return self.label
        return f"{self.action} replica {self.replica}"


class ChaosController:
    """Execute a plan's scheduled crash/restart actions against a cluster.

    The controller is deliberately poll-driven (:meth:`poll` executes every
    action whose time has come), so the CLI supervisor loop, asyncio chaos
    runs (:meth:`run`) and unit tests with a fake cluster can all drive it.
    Times are seconds relative to whenever the caller starts polling.
    """

    def __init__(self, cluster: Any, plan: FaultPlan) -> None:
        validate_fault_plan(plan)
        self.cluster = cluster
        self.plan = plan
        self.events: list[ChaosEvent] = []
        #: Loop time :meth:`run` started polling at (``None`` until then);
        #: ``started_at + event.at`` places events on the shared clock, the
        #: axis the phase-window SLO split uses.
        self.started_at: float | None = None
        #: Replicas intentionally down right now (``cluster.check()`` hygiene:
        #: a chaos-killed process is not an unexpected exit).
        self.down: set[int] = set()
        #: Groups of currently-active symmetric partitions (indexed rules).
        self._active_partitions: dict[int, tuple[tuple[int, ...], ...]] = {}
        #: Currently-active one-way ``(source, destination)`` drops.
        self._active_oneways: set[tuple[int, int]] = set()
        actions = [(at, "crash", replica) for replica, at in plan.crashes.items()]
        actions += [(at, "restart", replica) for replica, at in plan.restarts.items()]
        # Churn cycles expand into the same crash/restart action stream.
        for at, replica, downtime in plan.churn:
            actions.append((at, "crash", replica))
            actions.append((at + downtime, "restart", replica))
        # Partition/one-way rules expand into apply + heal pairs; the third
        # tuple slot carries the rule index instead of a replica id.
        for index, (at, _, duration) in enumerate(plan.partitions):
            actions.append((at, "partition", index))
            actions.append((at + duration, "heal", index))
        for index, (at, _, _, duration) in enumerate(plan.oneway_drops):
            actions.append((at, "drop", index))
            actions.append((at + duration, "undrop", index))
        # Sort by time; at equal times crashes execute before restarts only
        # if scheduled earlier, which validate_fault_plan already guarantees.
        self._pending = sorted(actions)

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled action has been executed."""
        return not self._pending

    def _num_replicas(self) -> int:
        """Cluster size, for expanding partition groups into blocked sets."""
        spec = getattr(self.cluster, "spec", None)
        if spec is not None:
            return int(spec.num_replicas)
        endpoints = getattr(self.cluster, "endpoints", None)
        if endpoints:
            return len(endpoints)
        named = [0]
        for _, groups, _ in self.plan.partitions:
            named.extend(replica for group in groups for replica in group)
        for _, source, destination, _ in self.plan.oneway_drops:
            named.extend((source, destination))
        return max(named) + 1

    def _push_link_updates(self) -> None:
        """Retarget every live replica's blocked-peer set from active rules.

        Each replica receives the *absolute* set it must not send to, so
        overlapping rules and heals compose idempotently: applying the same
        set twice is harmless and a heal simply shrinks the set.  Down
        replicas are skipped (nothing to configure); a restarted replica
        comes back with an empty blocked set, which matches the semantics —
        its outbound frames were dropped at the senders all along.
        """
        from repro.runtime.control import LinkUpdate

        num_replicas = self._num_replicas()
        active_partitions = list(self._active_partitions.values())
        for replica in range(num_replicas):
            if replica in self.down:
                continue
            blocked = blocked_peers_for(
                replica,
                active_partitions=active_partitions,
                active_oneways=self._active_oneways,
                num_replicas=num_replicas,
            )
            try:
                self.cluster.send_control(replica, LinkUpdate(blocked=blocked))
            except OSError:
                # A replica that died between check() and here; its outbound
                # rules become moot and unexpected_exits() will report it.
                continue

    def _execute_action(self, elapsed: float, action: str, replica: int) -> ChaosEvent:
        """Execute one due action (shared by the sync and async drivers).

        For crashes the replica joins :attr:`down` *before* the SIGKILL:
        anyone observing ``cluster.check()`` concurrently (the async driver
        runs kills in a worker thread) must already see the exit as
        intentional, or a planned crash would be misreported as unexpected.
        """
        label = ""
        if action == "crash":
            self.down.add(replica)
            self.cluster.kill_replica(replica)
        elif action == "restart":
            self.cluster.restart_replica(replica)
            self.down.discard(replica)
            if self._active_partitions or self._active_oneways:
                # The fresh process starts with an empty blocked set; re-push
                # so a restart inside a partition window stays partitioned.
                self._push_link_updates()
        elif action == "partition":
            at, groups, duration = self.plan.partitions[replica]
            self._active_partitions[replica] = groups
            self._push_link_updates()
            sides = " | ".join(
                "{%s}" % ",".join(str(r) for r in sorted(component))
                for component in partition_components(groups, self._num_replicas())
            )
            label = f"partition {sides}"
        elif action == "heal":
            self._active_partitions.pop(replica, None)
            self._push_link_updates()
            label = f"heal partition #{replica}"
        elif action == "drop":
            _, source, destination, _ = self.plan.oneway_drops[replica]
            self._active_oneways.add((source, destination))
            self._push_link_updates()
            label = f"drop {source}->{destination}"
        elif action == "undrop":
            _, source, destination, _ = self.plan.oneway_drops[replica]
            self._active_oneways.discard((source, destination))
            self._push_link_updates()
            label = f"undrop {source}->{destination}"
        else:  # pragma: no cover - construction guarantees known actions
            raise ValueError(f"unknown chaos action: {action!r}")
        event = ChaosEvent(at=elapsed, action=action, replica=replica, label=label)
        self.events.append(event)
        return event

    def poll(self, elapsed: float) -> list[ChaosEvent]:
        """Execute every action due at or before ``elapsed`` seconds."""
        fired: list[ChaosEvent] = []
        while self._pending and self._pending[0][0] <= elapsed:
            _, action, replica = self._pending.pop(0)
            fired.append(self._execute_action(elapsed, action, replica))
        return fired

    def unexpected_exits(self) -> list[int]:
        """Replicas that died without the plan asking them to."""
        return [replica for replica in self.cluster.check() if replica not in self.down]

    def unfired_actions(self) -> list[tuple[float, str, int]]:
        """Scheduled ``(at, action, replica)`` actions that never executed."""
        return list(self._pending)

    def episodes(self) -> list[tuple[float, float | None, str]]:
        """Executed fault episodes as ``(start, end, label)`` intervals.

        Times are relative to the controller start (the same axis as
        :attr:`ChaosEvent.at`).  Point faults pair up with their closing
        action — crash with restart, partition with heal, drop with undrop;
        an episode whose closing action never fired gets ``end=None`` (still
        open when the run finished).  Feeds the per-fault-event phase
        windows (:func:`repro.obs.slo.fault_episode_windows`).
        """
        episodes: list[tuple[float, float | None, str]] = []
        open_index: dict[tuple[str, int], int] = {}
        closers = {"restart": "crash", "heal": "partition", "undrop": "drop"}
        for event in self.events:
            if event.action in ("crash", "partition", "drop"):
                open_index[(event.action, event.replica)] = len(episodes)
                episodes.append((event.at, None, event.describe()))
            elif event.action in closers:
                key = (closers[event.action], event.replica)
                index = open_index.pop(key, None)
                if index is not None:
                    start, _, label = episodes[index]
                    episodes[index] = (start, event.at, label)
        return episodes

    async def run(self, *, poll_interval: float = 0.05) -> None:
        """Poll on the event loop until every scheduled action has run.

        Process kills are executed in a worker thread — SIGKILL plus the
        reaping ``wait()`` would otherwise stall the loop driving the load
        generator.
        """
        loop = asyncio.get_running_loop()
        started = self.started_at = loop.time()
        while self._pending:
            await asyncio.sleep(poll_interval)
            elapsed = loop.time() - started
            while self._pending and self._pending[0][0] <= elapsed:
                _, action, replica = self._pending.pop(0)
                await asyncio.to_thread(self._execute_action, elapsed, action, replica)


# -- one-shot chaos experiment ------------------------------------------------


@dataclass
class ChaosRunResult:
    """Everything a chaos run produced."""

    report: Any  # LoadReport (kept Any to avoid importing loadgen eagerly)
    events: list[ChaosEvent] = field(default_factory=list)
    unexpected_exits: list[int] = field(default_factory=list)
    #: Scheduled actions the run ended before reaching.  Non-empty means the
    #: measurement does NOT cover the requested fault plan (e.g. a crash at
    #: t=10s against a load that finished at t=3s) — treated as a failure,
    #: because "survived the fault" must never be reported for a fault that
    #: was never injected.
    unfired_actions: list[tuple[float, str, int]] = field(default_factory=list)

    @property
    def view_changes(self) -> int:
        """View changes observed across the surviving replicas."""
        return sum(self.report.view_changes.values())

    @property
    def ok(self) -> bool:
        """Liveness and safety summary: progress, agreement, no surprises."""
        consistency = getattr(self.report, "consistency", None)
        return (
            self.report.metrics.committed > 0
            and self.report.digests_agree
            and not self.unexpected_exits
            and not self.unfired_actions
            and (consistency is None or consistency.ok)
        )

    def lines(self) -> list[str]:
        out = []
        for event in self.events:
            out.append(f"chaos: {event.describe()} @ {event.at:.2f}s")
        for at, action, target in self.unfired_actions:
            out.append(
                f"chaos: ERROR {action} ({target}) scheduled at "
                f"{at:.2f}s never fired — the run ended first, so the "
                f"measurement does not cover the requested plan (run fails); "
                f"extend the load (more transactions / lower rate)"
            )
        out.extend(self.report.lines())
        if self.report.view_changes:
            total = self.view_changes
            detail = ", ".join(
                f"r{replica}={count}"
                for replica, count in sorted(self.report.view_changes.items())
            )
            out.append(f"view changes         : {total} ({detail})")
        if self.unexpected_exits:
            out.append(f"UNEXPECTED replica exits: {self.unexpected_exits}")
        return out


async def run_chaos(cluster_spec, load_config) -> ChaosRunResult:
    """Run one fault-injected load experiment against a fresh local cluster.

    Starts the cluster described by ``cluster_spec`` (whose ``faults`` plan
    configures stragglers and abstainers inside the replica processes),
    executes scheduled crashes/restarts concurrently with the load generator,
    and returns the combined result.  The cluster is always torn down.
    """
    from repro.obs.slo import (
        StatusSample,
        check_consistency,
        compute_phase_slos,
        fault_episode_windows,
    )
    from repro.runtime.client import ClientConfig, ClientError, OrthrusClient
    from repro.runtime.cluster import LocalCluster
    from repro.runtime.loadgen import LoadGenerator

    cluster = LocalCluster(cluster_spec)
    if (
        cluster.run_dir is not None
        and cluster_spec.trace_sample > 0
        and cluster_spec.obs_enabled
        and load_config.trace_file is None
    ):
        # The replicas trace into the run directory; give the client's span
        # events a home there too so stitched timelines are complete.
        load_config = replace(
            load_config,
            trace_file=str(cluster.run_dir / "client" / "trace.jsonl"),
            trace_sample=cluster_spec.trace_sample,
        )
    await asyncio.to_thread(cluster.start)
    controller = ChaosController(cluster, cluster_spec.faults)
    chaos_task = asyncio.create_task(controller.run())
    loop = asyncio.get_running_loop()
    #: Mid-run (time, cumulative view changes) samples for per-phase deltas.
    view_change_samples: list[tuple[float, int]] = []
    #: Per-replica (time, committed, frontier, digest) samples: the run log
    #: the client-side staleness and monotonicity checkers read.
    status_samples: list[StatusSample] = []
    poll_stop = asyncio.Event()

    async def poll_view_changes() -> None:
        probe = OrthrusClient(
            list(cluster.endpoints),
            ClientConfig(client_id=load_config.client.client_id + 1, timeout=2.0),
        )
        try:
            await probe.connect(require_all=False)
        except (ClientError, OSError):
            return
        try:
            while not poll_stop.is_set():
                try:
                    statuses = await probe.cluster_status()
                    now = loop.time()
                    view_change_samples.append(
                        (now, sum(s.view_changes for s in statuses))
                    )
                    status_samples.extend(
                        StatusSample(
                            at=now,
                            replica=s.replica,
                            committed=s.committed,
                            frontier=tuple(s.delivered_frontier),
                            digest=s.state_digest,
                        )
                        for s in statuses
                    )
                except (ClientError, OSError):
                    pass
                try:
                    await asyncio.wait_for(poll_stop.wait(), timeout=0.5)
                except asyncio.TimeoutError:
                    pass
        finally:
            await probe.close()

    poll_task = asyncio.create_task(poll_view_changes())
    try:
        generator = LoadGenerator(list(cluster.endpoints), load_config)
        report = await generator.run()
        poll_stop.set()
        await poll_task
        # Monotonicity + staleness over the run log: a planned restart is an
        # allowed committed-counter reset (a fresh process starts at zero),
        # everything else must be monotone; settled digests come from the
        # load generator's final settlement probe.
        restarts_at = [
            (controller.started_at + e.at, e.replica)
            for e in controller.events
            if e.action == "restart" and controller.started_at is not None
        ]
        report.consistency = check_consistency(
            status_samples,
            final_digests=report.state_digests,
            resets=restarts_at,
        )
        # Split the run into per-fault-event phases (pre, then during/post
        # around *each* episode, not one global window).  Episode times are
        # relative to the controller's start; the settle margin keeps the
        # failure-detector/view-change aftermath inside "during".
        if controller.started_at is not None and controller.events:
            base = controller.started_at
            episodes = [
                (
                    base + start,
                    report.ended_at if end is None else base + end,
                    label,
                )
                for start, end, label in controller.episodes()
            ]
            windows = fault_episode_windows(
                report.started_at,
                report.ended_at,
                episodes,
                settle=cluster_spec.view_change_timeout,
            )
            report.phases = compute_phase_slos(
                windows,
                generator.collector.latency.timelines(),
                view_change_samples=view_change_samples,
                regression_times=report.consistency.regression_times,
            )
        return ChaosRunResult(
            report=report,
            events=list(controller.events),
            unexpected_exits=controller.unexpected_exits(),
            unfired_actions=controller.unfired_actions(),
        )
    finally:
        poll_stop.set()
        for task in (poll_task, chaos_task):
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        await asyncio.to_thread(cluster.stop)
