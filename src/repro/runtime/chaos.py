"""Live fault injection: apply a :class:`FaultPlan` to a real cluster.

The simulator has injected the paper's three degradation modes since the
first PR; this module brings them to the asyncio runtime so the same
:class:`~repro.cluster.faults.FaultPlan` drives real processes over real
sockets:

* **Stragglers** — a slowdown factor becomes a per-frame outbound delay
  inside the straggler's :class:`~repro.runtime.transport.AsyncioTransport`
  (:func:`send_delay_for`), so everything the slow replica says arrives late,
  exactly like a CPU- or link-degraded node.
* **Detectable crashes** — the :class:`ChaosController` SIGKILLs the
  replica's OS process at its scheduled time (and optionally restarts it);
  survivors detect the silence through the PBFT failure detector and rotate
  the crashed leader out via a view change.
* **Undetectable Byzantine abstention** — the abstaining replica keeps
  proposing and voting in the instances it *leads* but silently drops its
  consensus messages for every other instance
  (:func:`make_abstention_filter`), so no timeout ever fires yet every other
  instance must form quorums from the remaining ``2f + 1`` replicas.

Unlike the simulator, none of this is deterministic: crash times are wall
clock, view changes race real traffic, and two runs of the same plan will
not produce identical logs.  What must still hold — and what the chaos tests
assert — is the *distributed-systems* contract: surviving replicas converge
to identical state digests and clients keep completing with ``f + 1``
matching replies.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.cluster.faults import FaultPlan
from repro.errors import ConfigurationError
from repro.sb.pbft.messages import PBFTMessage

#: Outbound per-frame delay corresponding to slowdown factor 2.0 (seconds).
#: A slowdown of ``s`` maps to ``(s - 1) * STRAGGLER_UNIT_DELAY``; the
#: paper's 10x straggler therefore holds every frame for 45 ms — enough to
#: dominate localhost round trips without freezing the run.
STRAGGLER_UNIT_DELAY = 0.005


def send_delay_for(
    plan: FaultPlan, replica_id: int, *, unit: float = STRAGGLER_UNIT_DELAY
) -> float:
    """Outbound frame delay (seconds) for one replica under ``plan``."""
    slowdown = plan.slowdown_of(replica_id)
    return max(0.0, (slowdown - 1.0) * unit)


def abstaining_replicas(plan: FaultPlan, num_replicas: int) -> set[int]:
    """Replica ids that abstain under ``plan`` (the last ``k`` replicas).

    The paper deploys one SB instance per replica, so every replica leads
    somewhere and "abstain from instances you do not lead" is meaningful for
    any of them.  With fewer instances than replicas the low ids hold the
    initial leaderships, so the *highest* ids are picked — they abstain
    everywhere while the protocol-critical leaders stay honest, matching the
    Fig. 8 setup where quorums shrink but no failure detector fires.
    """
    count = plan.undetectable_faults
    if count <= 0:
        return set()
    if count > (num_replicas - 1) // 3:
        raise ConfigurationError(
            f"{count} abstaining replicas exceed f = {(num_replicas - 1) // 3} "
            f"for n = {num_replicas}; quorums would be unreachable"
        )
    return set(range(num_replicas - count, num_replicas))


def make_abstention_filter(replica: Any) -> Callable[[Any], bool]:
    """Outbound-message predicate implementing Byzantine abstention.

    Keeps every non-consensus message (client replies, control plane) and
    consensus messages for instances ``replica`` currently leads; drops
    consensus messages for all other instances.  Leadership is evaluated per
    message so the behaviour follows view changes.
    """

    def keep(message: Any) -> bool:
        if not isinstance(message, PBFTMessage):
            return True
        return message.instance in replica.led_instances()

    return keep


# -- fault plan (de)serialisation --------------------------------------------


def fault_plan_to_json(plan: FaultPlan) -> str:
    """Serialise a plan to the JSON shape ``fault_plan_from_json`` reads."""
    return json.dumps(
        {
            "stragglers": {str(k): v for k, v in sorted(plan.stragglers.items())},
            "crashes": {str(k): v for k, v in sorted(plan.crashes.items())},
            "restarts": {str(k): v for k, v in sorted(plan.restarts.items())},
            "churn": [list(cycle) for cycle in plan.churn],
            "view_change_timeout": plan.view_change_timeout,
            "undetectable_faults": plan.undetectable_faults,
        },
        sort_keys=True,
    )


def fault_plan_from_json(
    text: str, *, default_view_change_timeout: float | None = None
) -> FaultPlan:
    """Parse a :class:`FaultPlan` from JSON text or an ``@file`` reference.

    Accepted keys (all optional): ``stragglers`` (replica -> slowdown),
    ``crashes`` (replica -> seconds), ``restarts`` (replica -> seconds),
    ``churn`` (list of ``[at, replica, downtime]`` crash/restart cycles),
    ``view_change_timeout``, ``undetectable_faults``.  Unknown keys are an
    error — a typo silently producing a fault-free plan would invalidate an
    entire experiment.  ``default_view_change_timeout`` applies when the JSON
    does not set one (the CLI threads its own flag through here).
    """
    text = text.strip()
    if text.startswith("@"):
        try:
            text = Path(text[1:]).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan file: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError("fault plan must be a JSON object")
    known = {
        "stragglers",
        "crashes",
        "restarts",
        "churn",
        "view_change_timeout",
        "undetectable_faults",
    }
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown fault plan keys: {', '.join(sorted(unknown))}"
        )

    def id_map(key: str) -> dict[int, float]:
        raw = data.get(key, {})
        if not isinstance(raw, dict):
            raise ConfigurationError(f"fault plan {key!r} must be an object")
        try:
            return {int(k): float(v) for k, v in raw.items()}
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed fault plan {key!r}: {exc}") from exc

    raw_churn = data.get("churn", [])
    if not isinstance(raw_churn, list):
        raise ConfigurationError("fault plan 'churn' must be a list")
    churn: list[tuple[float, int, float]] = []
    for entry in raw_churn:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise ConfigurationError(
                "each churn entry must be [at, replica, downtime]"
            )
        try:
            churn.append((float(entry[0]), int(entry[1]), float(entry[2])))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed churn entry {entry!r}: {exc}") from exc

    fallback_timeout = (
        default_view_change_timeout
        if default_view_change_timeout is not None
        else FaultPlan().view_change_timeout
    )
    plan = FaultPlan(
        stragglers=id_map("stragglers"),
        crashes=id_map("crashes"),
        restarts=id_map("restarts"),
        churn=tuple(churn),
        view_change_timeout=float(data.get("view_change_timeout", fallback_timeout)),
        undetectable_faults=int(data.get("undetectable_faults", 0)),
    )
    validate_fault_plan(plan)
    return plan


def validate_fault_plan(plan: FaultPlan, num_replicas: int | None = None) -> None:
    """Reject plans the live runtime cannot execute coherently."""
    for replica, slowdown in plan.stragglers.items():
        if slowdown < 1.0:
            raise ConfigurationError(
                f"straggler slowdown for replica {replica} must be >= 1.0"
            )
    for replica, at_time in plan.crashes.items():
        if at_time < 0:
            raise ConfigurationError(f"crash time for replica {replica} is negative")
    for replica, at_time in plan.restarts.items():
        crash_at = plan.crash_time_of(replica)
        if crash_at is None:
            raise ConfigurationError(
                f"restart scheduled for replica {replica} which never crashes"
            )
        if at_time <= crash_at:
            raise ConfigurationError(
                f"replica {replica} restarts at {at_time}s, "
                f"before its crash at {crash_at}s"
            )
    per_replica_cycles: dict[int, list[tuple[float, float]]] = {}
    for at_time, replica, downtime in plan.churn:
        if at_time < 0:
            raise ConfigurationError(
                f"churn crash time for replica {replica} is negative"
            )
        if downtime <= 0:
            raise ConfigurationError(
                f"churn downtime for replica {replica} must be positive"
            )
        per_replica_cycles.setdefault(replica, []).append((at_time, downtime))
    for replica, cycles in per_replica_cycles.items():
        cycles.sort()
        for (at_a, down_a), (at_b, _) in zip(cycles, cycles[1:]):
            if at_b <= at_a + down_a:
                raise ConfigurationError(
                    f"churn cycles for replica {replica} overlap: crash at "
                    f"{at_b}s falls before the restart at {at_a + down_a}s"
                )
    if num_replicas is not None:
        faulty = set(plan.crashes) | abstaining_replicas(plan, num_replicas)
        limit = (num_replicas - 1) // 3
        if len(faulty) > limit:
            raise ConfigurationError(
                f"plan makes {len(faulty)} replicas faulty but n = {num_replicas} "
                f"only tolerates f = {limit}"
            )
        # Churn replicas are only transiently down; what must stay within f
        # is the *concurrently* faulty count at any instant.
        if plan.churn:
            edges = []
            for at_time, _, downtime in plan.churn:
                edges.append((at_time, 1))
                edges.append((at_time + downtime, -1))
            concurrent = peak = 0
            for _, delta in sorted(edges):
                concurrent += delta
                peak = max(peak, concurrent)
            if len(faulty) + peak > limit:
                raise ConfigurationError(
                    f"plan takes {len(faulty) + peak} replicas down at once "
                    f"but n = {num_replicas} only tolerates f = {limit}"
                )
        churn_replicas = [replica for _, replica, _ in plan.churn]
        for replica in list(plan.stragglers) + list(plan.crashes) + churn_replicas:
            if not 0 <= replica < num_replicas:
                raise ConfigurationError(
                    f"fault plan names replica {replica} but the cluster has "
                    f"{num_replicas} replicas"
                )


# -- scheduled process faults -------------------------------------------------


@dataclass
class ChaosEvent:
    """One executed fault action (for reports and assertions)."""

    at: float
    action: str  # "crash" | "restart"
    replica: int


class ChaosController:
    """Execute a plan's scheduled crash/restart actions against a cluster.

    The controller is deliberately poll-driven (:meth:`poll` executes every
    action whose time has come), so the CLI supervisor loop, asyncio chaos
    runs (:meth:`run`) and unit tests with a fake cluster can all drive it.
    Times are seconds relative to whenever the caller starts polling.
    """

    def __init__(self, cluster: Any, plan: FaultPlan) -> None:
        validate_fault_plan(plan)
        self.cluster = cluster
        self.plan = plan
        self.events: list[ChaosEvent] = []
        #: Loop time :meth:`run` started polling at (``None`` until then);
        #: ``started_at + event.at`` places events on the shared clock, the
        #: axis the phase-window SLO split uses.
        self.started_at: float | None = None
        #: Replicas intentionally down right now (``cluster.check()`` hygiene:
        #: a chaos-killed process is not an unexpected exit).
        self.down: set[int] = set()
        actions = [(at, "crash", replica) for replica, at in plan.crashes.items()]
        actions += [(at, "restart", replica) for replica, at in plan.restarts.items()]
        # Churn cycles expand into the same crash/restart action stream.
        for at, replica, downtime in plan.churn:
            actions.append((at, "crash", replica))
            actions.append((at + downtime, "restart", replica))
        # Sort by time; at equal times crashes execute before restarts only
        # if scheduled earlier, which validate_fault_plan already guarantees.
        self._pending = sorted(actions)

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled action has been executed."""
        return not self._pending

    def _execute_action(self, elapsed: float, action: str, replica: int) -> ChaosEvent:
        """Execute one due action (shared by the sync and async drivers).

        For crashes the replica joins :attr:`down` *before* the SIGKILL:
        anyone observing ``cluster.check()`` concurrently (the async driver
        runs kills in a worker thread) must already see the exit as
        intentional, or a planned crash would be misreported as unexpected.
        """
        if action == "crash":
            self.down.add(replica)
            self.cluster.kill_replica(replica)
        else:
            self.cluster.restart_replica(replica)
            self.down.discard(replica)
        event = ChaosEvent(at=elapsed, action=action, replica=replica)
        self.events.append(event)
        return event

    def poll(self, elapsed: float) -> list[ChaosEvent]:
        """Execute every action due at or before ``elapsed`` seconds."""
        fired: list[ChaosEvent] = []
        while self._pending and self._pending[0][0] <= elapsed:
            _, action, replica = self._pending.pop(0)
            fired.append(self._execute_action(elapsed, action, replica))
        return fired

    def unexpected_exits(self) -> list[int]:
        """Replicas that died without the plan asking them to."""
        return [replica for replica in self.cluster.check() if replica not in self.down]

    def unfired_actions(self) -> list[tuple[float, str, int]]:
        """Scheduled ``(at, action, replica)`` actions that never executed."""
        return list(self._pending)

    async def run(self, *, poll_interval: float = 0.05) -> None:
        """Poll on the event loop until every scheduled action has run.

        Process kills are executed in a worker thread — SIGKILL plus the
        reaping ``wait()`` would otherwise stall the loop driving the load
        generator.
        """
        loop = asyncio.get_running_loop()
        started = self.started_at = loop.time()
        while self._pending:
            await asyncio.sleep(poll_interval)
            elapsed = loop.time() - started
            while self._pending and self._pending[0][0] <= elapsed:
                _, action, replica = self._pending.pop(0)
                await asyncio.to_thread(self._execute_action, elapsed, action, replica)


# -- one-shot chaos experiment ------------------------------------------------


@dataclass
class ChaosRunResult:
    """Everything a chaos run produced."""

    report: Any  # LoadReport (kept Any to avoid importing loadgen eagerly)
    events: list[ChaosEvent] = field(default_factory=list)
    unexpected_exits: list[int] = field(default_factory=list)
    #: Scheduled actions the run ended before reaching.  Non-empty means the
    #: measurement does NOT cover the requested fault plan (e.g. a crash at
    #: t=10s against a load that finished at t=3s) — treated as a failure,
    #: because "survived the fault" must never be reported for a fault that
    #: was never injected.
    unfired_actions: list[tuple[float, str, int]] = field(default_factory=list)

    @property
    def view_changes(self) -> int:
        """View changes observed across the surviving replicas."""
        return sum(self.report.view_changes.values())

    @property
    def ok(self) -> bool:
        """Liveness and safety summary: progress, agreement, no surprises."""
        return (
            self.report.metrics.committed > 0
            and self.report.digests_agree
            and not self.unexpected_exits
            and not self.unfired_actions
        )

    def lines(self) -> list[str]:
        out = []
        for event in self.events:
            out.append(f"chaos: {event.action} replica {event.replica} @ {event.at:.2f}s")
        for at, action, replica in self.unfired_actions:
            out.append(
                f"chaos: WARNING {action} replica {replica} scheduled at "
                f"{at:.2f}s never fired — the run ended first; extend the "
                f"load (more transactions / lower rate) to cover the plan"
            )
        out.extend(self.report.lines())
        if self.report.view_changes:
            total = self.view_changes
            detail = ", ".join(
                f"r{replica}={count}"
                for replica, count in sorted(self.report.view_changes.items())
            )
            out.append(f"view changes         : {total} ({detail})")
        if self.unexpected_exits:
            out.append(f"UNEXPECTED replica exits: {self.unexpected_exits}")
        return out


async def run_chaos(cluster_spec, load_config) -> ChaosRunResult:
    """Run one fault-injected load experiment against a fresh local cluster.

    Starts the cluster described by ``cluster_spec`` (whose ``faults`` plan
    configures stragglers and abstainers inside the replica processes),
    executes scheduled crashes/restarts concurrently with the load generator,
    and returns the combined result.  The cluster is always torn down.
    """
    from repro.obs.slo import compute_phase_slos, fault_phase_windows
    from repro.runtime.client import ClientConfig, ClientError, OrthrusClient
    from repro.runtime.cluster import LocalCluster
    from repro.runtime.loadgen import LoadGenerator

    cluster = LocalCluster(cluster_spec)
    if (
        cluster.run_dir is not None
        and cluster_spec.trace_sample > 0
        and cluster_spec.obs_enabled
        and load_config.trace_file is None
    ):
        # The replicas trace into the run directory; give the client's span
        # events a home there too so stitched timelines are complete.
        load_config = replace(
            load_config,
            trace_file=str(cluster.run_dir / "client" / "trace.jsonl"),
            trace_sample=cluster_spec.trace_sample,
        )
    await asyncio.to_thread(cluster.start)
    controller = ChaosController(cluster, cluster_spec.faults)
    chaos_task = asyncio.create_task(controller.run())
    loop = asyncio.get_running_loop()
    #: Mid-run (time, cumulative view changes) samples for per-phase deltas.
    view_change_samples: list[tuple[float, int]] = []
    poll_stop = asyncio.Event()

    async def poll_view_changes() -> None:
        probe = OrthrusClient(
            list(cluster.endpoints),
            ClientConfig(client_id=load_config.client.client_id + 1, timeout=2.0),
        )
        try:
            await probe.connect(require_all=False)
        except (ClientError, OSError):
            return
        try:
            while not poll_stop.is_set():
                try:
                    statuses = await probe.cluster_status()
                    view_change_samples.append(
                        (loop.time(), sum(s.view_changes for s in statuses))
                    )
                except (ClientError, OSError):
                    pass
                try:
                    await asyncio.wait_for(poll_stop.wait(), timeout=0.5)
                except asyncio.TimeoutError:
                    pass
        finally:
            await probe.close()

    poll_task = asyncio.create_task(poll_view_changes())
    try:
        generator = LoadGenerator(list(cluster.endpoints), load_config)
        report = await generator.run()
        poll_stop.set()
        await poll_task
        # Split the run into pre/during/post-fault phases.  Event times are
        # relative to the controller's start; the settle margin keeps the
        # failure-detector/view-change aftermath inside "during".
        if controller.started_at is not None and controller.events:
            event_times = [controller.started_at + e.at for e in controller.events]
            windows = fault_phase_windows(
                report.started_at,
                report.ended_at,
                event_times,
                settle=cluster_spec.view_change_timeout,
            )
            report.phases = compute_phase_slos(
                windows,
                generator.collector.latency.timelines(),
                view_change_samples=view_change_samples,
            )
        return ChaosRunResult(
            report=report,
            events=list(controller.events),
            unexpected_exits=controller.unexpected_exits(),
            unfired_actions=controller.unfired_actions(),
        )
    finally:
        poll_stop.set()
        for task in (poll_task, chaos_task):
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        await asyncio.to_thread(cluster.stop)
