"""Per-replica write-ahead log for the live runtime (durability layer).

The WAL is an append-mode JSONL file under the replica's run directory: one
record per line, each line carrying a CRC32 of its payload so a torn tail
(the classic crash-during-append artifact) is detected and dropped without
corrupting the replayed prefix — the same tolerance discipline as
``obs/trace.py``'s reader, hardened with an explicit checksum because the WAL
is replayed into consensus state rather than merely inspected.

Line format::

    <8-hex crc32> <compact JSON record>\n

Records are opaque dicts to this module; the durability layer writes three
kinds (committed blocks, view installs, executed-epoch marks — see
``docs/durability.md``).  ``json.dumps`` with ``ensure_ascii`` guarantees the
payload never contains a raw newline, so the line framing is unambiguous.

Writes are fsync-batched: the file is flushed and fsynced every
``fsync_every`` appends (and on ``flush``/``close``), bounding both the
per-record syscall cost and the number of records an OS crash can lose.  A
SIGKILL loses at most the unflushed tail — which state transfer from a peer
then fills in.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

#: Default number of appends between fsyncs.
DEFAULT_FSYNC_EVERY = 16

#: WAL file name under a replica's run directory.
WAL_FILE_NAME = "wal.jsonl"


def encode_record(record: dict[str, Any]) -> bytes:
    """Render one record as a checksummed, newline-terminated WAL line."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def decode_record(line: bytes) -> dict[str, Any] | None:
    """Parse one WAL line (without its newline); ``None`` if corrupt."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    return record


def read_wal(path: str | Path) -> list[dict[str, Any]]:
    """Replay every intact record from a WAL file.

    Torn-tail tolerant: the final line is dropped when it is incomplete
    (no terminating newline — an append cut short by a crash) or fails its
    checksum.  A corrupt record *before* the tail stops the replay there:
    records after a mid-file corruption can no longer be trusted to be a
    prefix of what was logged, so the intact prefix is returned instead.
    """
    try:
        data = Path(path).read_bytes()
    except OSError:
        return []
    chunks = data.split(b"\n")
    # Bytes after the last newline are a torn append (the terminating newline
    # is the last byte written), so an unterminated tail is always dropped —
    # even when its record bytes happen to be complete.
    chunks.pop()
    records: list[dict[str, Any]] = []
    for chunk in chunks:
        if not chunk:
            continue
        record = decode_record(chunk)
        if record is None:
            break
        records.append(record)
    return records


class WalWriter:
    """Append-mode, fsync-batched writer for one replica's WAL."""

    def __init__(self, path: str | Path, *, fsync_every: int = DEFAULT_FSYNC_EVERY) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        #: Total size of the log including records from previous incarnations
        #: (the file is opened in append mode across restarts).
        self.bytes_written = self.path.stat().st_size
        self.records_appended = 0
        self._unsynced = 0

    def append(self, record: dict[str, Any]) -> None:
        """Append one record, fsyncing every ``fsync_every`` appends."""
        line = encode_record(record)
        self._file.write(line)
        self.bytes_written += len(line)
        self.records_appended += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        """Flush buffered records and fsync the file."""
        if self._file.closed:
            return
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:
            # Filesystems without fsync (some tmpfs/CI setups) still get the
            # stream flush; durability degrades to the OS page cache there.
            pass
        self._unsynced = 0

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._file.closed:
            return
        self.flush()
        self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
