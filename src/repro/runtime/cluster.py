"""Spawn and supervise a local live cluster as real OS processes.

:class:`LocalCluster` launches one ``repro serve`` subprocess per replica on
localhost (free ports picked automatically), waits for every listen socket to
accept, and supervises the fleet: a replica that exits unexpectedly is
reported.  Shutdown is graceful-first (a control-plane shutdown frame), then
SIGTERM, then SIGKILL.

Configured with explicit hosts, the same ``repro serve`` flags deploy the
cluster across machines; this class only automates the localhost case.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.faults import FaultPlan
from repro.errors import ExperimentError
from repro.runtime.chaos import (
    abstaining_replicas,
    send_delay_for,
    validate_fault_plan,
)
from repro.runtime.config import ReplicaRuntimeConfig, format_endpoint
from repro.workload.config import WorkloadConfig


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for an ephemeral port that is currently free."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


@dataclass
class ClusterSpec:
    """Shape of a locally spawned cluster."""

    num_replicas: int = 4
    num_instances: int | None = None
    protocol: str = "orthrus"
    host: str = "127.0.0.1"
    base_port: int | None = None  # None: pick free ports automatically
    batch_size: int = 64
    batch_interval: float = 0.05
    view_change_timeout: float = 10.0
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(num_accounts=1024)
    )
    #: Degradations applied to the cluster: stragglers and Byzantine
    #: abstention configure the replica processes at spawn; crashes and
    #: restarts are executed by a :class:`~repro.runtime.chaos.ChaosController`.
    faults: FaultPlan = field(default_factory=FaultPlan.none)
    #: Highest wire version the replicas speak (``None`` = codec default,
    #: struct-packed binary; ``1`` pins the cluster to canonical JSON).
    wire_version: int | None = None

    def __post_init__(self) -> None:
        if self.num_replicas < 4:
            raise ExperimentError("live clusters need at least 4 replicas")
        validate_fault_plan(self.faults, self.num_replicas)

    def endpoints(self) -> tuple[tuple[str, int], ...]:
        if self.base_port is not None:
            return tuple(
                (self.host, self.base_port + index)
                for index in range(self.num_replicas)
            )
        return tuple((self.host, free_port(self.host)) for _ in range(self.num_replicas))


class LocalCluster:
    """A supervised fleet of ``repro serve`` subprocesses on localhost."""

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec()
        self.endpoints: tuple[tuple[str, int], ...] = self.spec.endpoints()
        self.processes: list[subprocess.Popen] = []
        self._stderr_logs: list[Path] = []
        self._retired_logs: list[Path] = []

    # -- configuration ------------------------------------------------------

    def runtime_config(self, replica_id: int) -> ReplicaRuntimeConfig:
        """The :class:`ReplicaRuntimeConfig` replica ``replica_id`` runs with."""
        return ReplicaRuntimeConfig(
            replica_id=replica_id,
            peers=self.endpoints,
            protocol=self.spec.protocol,
            num_instances=self.spec.num_instances,
            batch_size=self.spec.batch_size,
            batch_interval=self.spec.batch_interval,
            view_change_timeout=self.spec.view_change_timeout,
            workload=self.spec.workload,
            send_delay=send_delay_for(self.spec.faults, replica_id),
            byzantine_abstain=replica_id
            in abstaining_replicas(self.spec.faults, self.spec.num_replicas),
            wire_version=self.spec.wire_version,
        )

    def serve_command(self, replica_id: int) -> list[str]:
        """The ``repro serve`` argv for one replica."""
        spec = self.spec
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--replica-id",
            str(replica_id),
            "--peers",
            ",".join(format_endpoint(endpoint) for endpoint in self.endpoints),
            "--protocol",
            spec.protocol,
            "--batch-size",
            str(spec.batch_size),
            "--batch-interval",
            str(spec.batch_interval),
            "--view-change-timeout",
            str(spec.view_change_timeout),
            "--accounts",
            str(spec.workload.num_accounts),
            "--workload-seed",
            str(spec.workload.seed),
        ]
        if spec.num_instances is not None:
            command += ["--instances", str(spec.num_instances)]
        runtime = self.runtime_config(replica_id)
        if runtime.send_delay > 0:
            command += ["--send-delay", str(runtime.send_delay)]
        if runtime.byzantine_abstain:
            command += ["--byzantine-abstain"]
        if spec.wire_version is not None:
            command += ["--wire-version", str(spec.wire_version)]
        return command

    # -- lifecycle -----------------------------------------------------------

    def start(self, *, ready_timeout: float = 20.0, attempts: int = 3) -> None:
        """Spawn every replica and wait until all listen sockets accept.

        Automatically chosen ports are inherently racy (the probe socket is
        closed before the child binds), so startup failures are retried with
        freshly picked ports up to ``attempts`` times.
        """
        if self.processes:
            raise ExperimentError("cluster is already running")
        last_error: Exception | None = None
        for attempt in range(max(1, attempts)):
            if attempt > 0 and self.spec.base_port is None:
                self.endpoints = self.spec.endpoints()
            try:
                self._spawn()
                self._wait_ready(ready_timeout)
                return
            except ExperimentError as error:
                last_error = error
                self.stop()
        raise ExperimentError(
            f"cluster failed to start after {attempts} attempts: {last_error}"
        )

    def _spawn(self) -> None:
        for replica_id in range(self.spec.num_replicas):
            process, log = self._spawn_replica(replica_id)
            self.processes.append(process)
            self._stderr_logs.append(log)

    def _spawn_replica(self, replica_id: int) -> tuple[subprocess.Popen, Path]:
        # Children must import the same ``repro`` this supervisor runs,
        # whether it came from an installed package or a PYTHONPATH checkout.
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        # stderr goes to a file, not a pipe: nobody reads a pipe during
        # the run, so a chatty replica would fill it and block inside a
        # logging write.  The file is read back for diagnostics.
        log = Path(tempfile.mkstemp(prefix=f"repro-replica-{replica_id}-")[1])
        with log.open("wb") as stderr_sink:
            process = subprocess.Popen(
                self.serve_command(replica_id),
                stdout=subprocess.DEVNULL,
                stderr=stderr_sink,
                env=env,
            )
        return process, log

    def _wait_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for index, (host, port) in enumerate(self.endpoints):
            while True:
                process = self.processes[index]
                if process.poll() is not None:
                    raise ExperimentError(
                        f"replica {index} exited during startup "
                        f"(code {process.returncode}): "
                        f"{self.replica_stderr(index).strip()[-2000:]}"
                    )
                try:
                    with socket.create_connection((host, port), timeout=0.25):
                        break
                except OSError:
                    if time.monotonic() > deadline:
                        raise ExperimentError(
                            f"replica {index} did not open {host}:{port} "
                            f"within {timeout}s"
                        ) from None
                    time.sleep(0.05)

    def check(self) -> list[int]:
        """Ids of replicas whose processes have exited (healthy: empty)."""
        return [
            index
            for index, process in enumerate(self.processes)
            if process.poll() is not None
        ]

    # -- fault injection -----------------------------------------------------

    def kill_replica(self, replica_id: int) -> None:
        """Crash one replica process (SIGKILL: a crash, not a clean exit).

        Used by :class:`~repro.runtime.chaos.ChaosController` to execute a
        :class:`FaultPlan` crash.  The process slot is kept so the replica
        can later be restarted on the same endpoint.
        """
        if not 0 <= replica_id < len(self.processes):
            raise ExperimentError(f"no replica {replica_id} to kill")
        process = self.processes[replica_id]
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    def restart_replica(self, replica_id: int) -> None:
        """Respawn a previously killed replica on its original endpoint.

        The restarted process rebuilds from genesis — there is no state
        transfer yet — so it rejoins as a passive participant: it serves its
        listen socket and answers the control plane but cannot catch up with
        slots delivered while it was down.  Quorums must still come from the
        replicas that stayed up.
        """
        if not 0 <= replica_id < len(self.processes):
            raise ExperimentError(f"no replica {replica_id} to restart")
        if self.processes[replica_id].poll() is None:
            raise ExperimentError(f"replica {replica_id} is still running")
        process, log = self._spawn_replica(replica_id)
        self.processes[replica_id] = process
        # Retire (but keep for cleanup) the pre-crash log; diagnostics now
        # read the restarted process's log at the replica's index.
        self._retired_logs.append(self._stderr_logs[replica_id])
        self._stderr_logs[replica_id] = log

    def replica_stderr(self, replica_id: int) -> str:
        """Contents of one replica's stderr log (diagnostics)."""
        try:
            return self._stderr_logs[replica_id].read_text(errors="replace")
        except (IndexError, OSError):
            return ""

    def stop(self, *, grace: float = 5.0) -> None:
        """Terminate every replica (SIGTERM, then SIGKILL after ``grace``)."""
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + grace
        for process in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        self.processes.clear()
        for log in self._stderr_logs + self._retired_logs:
            try:
                log.unlink()
            except OSError:
                pass
        self._stderr_logs.clear()
        self._retired_logs.clear()

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
