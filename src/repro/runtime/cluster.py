"""Spawn and supervise a local live cluster as real OS processes.

:class:`LocalCluster` launches one ``repro serve`` subprocess per replica on
localhost, waits for every listen socket to accept, and supervises the
fleet.  Scale-sensitive paths are engineered for ~100-replica runs:

* listen ports are reserved *in one batch* (all probe sockets held open
  until just before each child binds), not picked one retry-looped probe at
  a time — the one-port-at-a-time TOCTOU window thrashes at high counts;
* readiness is probed in parallel across replicas instead of serially;
* exits are observed by per-process watcher threads feeding one event, so a
  supervisor blocks in :meth:`wait_for_exit` instead of polling every
  process on a timer;
* ``transport="uds"`` puts every endpoint on a Unix domain socket under a
  private temp directory, skipping the TCP/IP stack for co-located replicas.

Shutdown is graceful-first (a control-plane shutdown frame), then SIGTERM,
then SIGKILL.  Configured with explicit hosts, the same ``repro serve``
flags deploy the cluster across machines; this class only automates the
localhost case.
"""

from __future__ import annotations

import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.faults import FaultPlan
from repro.errors import ExperimentError
from repro.runtime.chaos import (
    abstaining_replicas,
    send_delay_for,
    validate_fault_plan,
    wan_to_text,
)
from repro.runtime.config import (
    ReplicaRuntimeConfig,
    format_endpoint,
    is_uds_endpoint,
    uds_path,
)
from repro.workload.config import WorkloadConfig


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for an ephemeral port that is currently free."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def reserve_free_ports(count: int, host: str = "127.0.0.1") -> list[socket.socket]:
    """Reserve ``count`` distinct free ports, returning the bound sockets.

    All sockets are held open simultaneously, so the OS cannot hand the same
    port out twice; the caller closes each socket immediately before the
    process that will reuse its port binds, shrinking the reuse race to
    microseconds (vs. the whole startup window when ports are probed one at
    a time).  ``SO_REUSEADDR`` lets the successor bind without waiting out
    the probe socket's teardown.
    """
    sockets: list[socket.socket] = []
    try:
        for _ in range(count):
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind((host, 0))
            sockets.append(probe)
    except OSError:
        for probe in sockets:
            probe.close()
        raise
    return sockets


@dataclass
class ClusterSpec:
    """Shape of a locally spawned cluster."""

    num_replicas: int = 4
    num_instances: int | None = None
    protocol: str = "orthrus"
    host: str = "127.0.0.1"
    base_port: int | None = None  # None: pick free ports automatically
    batch_size: int = 64
    batch_interval: float = 0.05
    #: Blocks per epoch (checkpoint cadence).  The default matches
    #: :class:`ReplicaRuntimeConfig`; durability runs want a small value so
    #: snapshots actually get cut at test/chaos time scales.
    epoch_length: int = 1_000_000
    view_change_timeout: float = 10.0
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(num_accounts=1024)
    )
    #: Degradations applied to the cluster: stragglers and Byzantine
    #: abstention configure the replica processes at spawn; crashes and
    #: restarts are executed by a :class:`~repro.runtime.chaos.ChaosController`.
    faults: FaultPlan = field(default_factory=FaultPlan.none)
    #: Highest wire version the replicas speak (``None`` = codec default,
    #: batched binary framing; ``1`` pins the cluster to canonical JSON).
    wire_version: int | None = None
    #: ``"tcp"`` (default) or ``"uds"`` — Unix domain sockets under a
    #: private temp directory, for co-located replicas.
    transport: str = "tcp"
    #: Crypto/codec worker processes per replica (0 = inline).
    workers: int = 0
    #: Observability master switch: ``False`` runs every replica with the
    #: inert no-op registry (the A/B arm of the ``obs_overhead`` benchmark).
    obs_enabled: bool = True
    #: Directory run artifacts live under (``replica-<i>/trace.jsonl``,
    #: ``replica-<i>/metrics.jsonl``, ``replica-<i>/stderr.log``).  ``None``
    #: auto-creates a ``repro-run-*`` temp directory when tracing is
    #: requested; artifacts under a run directory survive :meth:`stop` so
    #: ``repro trace`` can stitch them afterwards.
    run_dir: str | None = None
    #: Give every replica a WAL + snapshots under its run directory
    #: (``replica-<i>/wal.jsonl``, ``replica-<i>/snapshot-*.json``) so a
    #: killed replica can be restarted with full crash recovery (snapshot +
    #: WAL replay + peer state transfer).  Auto-creates a temp run dir when
    #: none was configured.
    durability: bool = False
    #: Cut a snapshot at most every N completed epochs (durability only).
    snapshot_every_epochs: int = 1
    #: Fraction of transactions traced (0.0 = tracing off); the same
    #: deterministic tx-id hash decides sampling in every process.
    trace_sample: float = 0.0
    #: Seconds between metrics-registry snapshots appended to each
    #: replica's ``metrics.jsonl`` (written only when a run dir exists).
    metrics_interval: float = 1.0
    #: Stderr logging threshold and format for the replica processes.
    log_level: str = "info"
    log_format: str = "text"

    def __post_init__(self) -> None:
        if self.num_replicas < 4:
            raise ExperimentError("live clusters need at least 4 replicas")
        if self.transport not in ("tcp", "uds"):
            raise ExperimentError(f"unknown cluster transport {self.transport!r}")
        if self.workers < 0:
            raise ExperimentError("workers cannot be negative")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ExperimentError("trace_sample must be within [0, 1]")
        if self.metrics_interval <= 0:
            raise ExperimentError("metrics_interval must be positive")
        if self.epoch_length < 1:
            raise ExperimentError("epoch_length must be at least 1")
        if self.snapshot_every_epochs < 1:
            raise ExperimentError("snapshot_every_epochs must be at least 1")
        validate_fault_plan(self.faults, self.num_replicas)

    def endpoints(self) -> tuple[tuple[str, int], ...]:
        """TCP endpoints from ``base_port`` (or one-shot free-port picks).

        :class:`LocalCluster` does not call this on the automatic-port path —
        it batch-reserves instead (see :func:`reserve_free_ports`).
        """
        if self.base_port is not None:
            return tuple(
                (self.host, self.base_port + index)
                for index in range(self.num_replicas)
            )
        return tuple((self.host, free_port(self.host)) for _ in range(self.num_replicas))


class LocalCluster:
    """A supervised fleet of ``repro serve`` subprocesses on localhost."""

    def __init__(self, spec: ClusterSpec | None = None) -> None:
        self.spec = spec or ClusterSpec()
        self.processes: list[subprocess.Popen] = []
        self._stderr_logs: list[Path] = []
        self._retired_logs: list[Path] = []
        self._socket_dir: Path | None = None
        self._reserved: list[socket.socket | None] = []
        #: Exit bookkeeping fed by one watcher thread per child process.
        self._exit_lock = threading.Lock()
        self._exits: dict[int, subprocess.Popen] = {}
        self._exit_event = threading.Event()
        self._watchers: list[threading.Thread] = []
        #: Run-artifact directory: explicit, or a temp dir when tracing was
        #: requested without one.  Artifacts under it are kept on stop().
        self.run_dir: Path | None = None
        if self.spec.run_dir is not None:
            self.run_dir = Path(self.spec.run_dir)
        elif self.spec.durability or (
            self.spec.trace_sample > 0 and self.spec.obs_enabled
        ):
            self.run_dir = Path(tempfile.mkdtemp(prefix="repro-run-"))
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
        self.endpoints: tuple[tuple[str, int], ...] = self._pick_endpoints()

    def replica_dir(self, replica_id: int) -> Path:
        """Per-replica artifact directory under the run dir (created lazily)."""
        assert self.run_dir is not None, "cluster has no run directory"
        directory = self.run_dir / f"replica-{replica_id}"
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    # -- endpoint selection ---------------------------------------------------

    def _pick_endpoints(self) -> tuple[tuple[str, int], ...]:
        spec = self.spec
        if spec.transport == "uds":
            if self._socket_dir is None:
                self._socket_dir = Path(tempfile.mkdtemp(prefix="repro-uds-"))
            return tuple(
                (f"unix:{self._socket_dir / f'replica-{index}.sock'}", 0)
                for index in range(spec.num_replicas)
            )
        if spec.base_port is not None:
            return spec.endpoints()
        self._release_reserved()
        self._reserved = list(reserve_free_ports(spec.num_replicas, spec.host))
        return tuple(
            (spec.host, probe.getsockname()[1]) for probe in self._reserved
        )

    def _release_reserved(self, index: int | None = None) -> None:
        if index is not None:
            if index < len(self._reserved) and self._reserved[index] is not None:
                self._reserved[index].close()
                self._reserved[index] = None
            return
        for probe in self._reserved:
            if probe is not None:
                probe.close()
        self._reserved = []

    # -- configuration ------------------------------------------------------

    def runtime_config(
        self, replica_id: int, *, recovery: str = "snapshot"
    ) -> ReplicaRuntimeConfig:
        """The :class:`ReplicaRuntimeConfig` replica ``replica_id`` runs with."""
        trace_file = None
        metrics_file = None
        if self.run_dir is not None and self.spec.obs_enabled:
            replica_dir = self.replica_dir(replica_id)
            if self.spec.trace_sample > 0:
                trace_file = str(replica_dir / "trace.jsonl")
            metrics_file = str(replica_dir / "metrics.jsonl")
        run_dir = None
        if self.spec.durability:
            run_dir = str(self.replica_dir(replica_id))
        return ReplicaRuntimeConfig(
            replica_id=replica_id,
            peers=self.endpoints,
            protocol=self.spec.protocol,
            num_instances=self.spec.num_instances,
            batch_size=self.spec.batch_size,
            batch_interval=self.spec.batch_interval,
            epoch_length=self.spec.epoch_length,
            view_change_timeout=self.spec.view_change_timeout,
            workload=self.spec.workload,
            send_delay=send_delay_for(self.spec.faults, replica_id),
            wan=wan_to_text(self.spec.faults.wan),
            byzantine_abstain=replica_id
            in abstaining_replicas(self.spec.faults, self.spec.num_replicas),
            wire_version=self.spec.wire_version,
            workers=self.spec.workers,
            obs_enabled=self.spec.obs_enabled,
            trace_file=trace_file,
            trace_sample=self.spec.trace_sample,
            metrics_file=metrics_file,
            metrics_interval=self.spec.metrics_interval,
            log_level=self.spec.log_level,
            log_format=self.spec.log_format,
            run_dir=run_dir,
            recovery=recovery,
            snapshot_every_epochs=self.spec.snapshot_every_epochs,
        )

    def serve_command(
        self, replica_id: int, *, recovery: str = "snapshot"
    ) -> list[str]:
        """The ``repro serve`` argv for one replica."""
        spec = self.spec
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--replica-id",
            str(replica_id),
            "--peers",
            ",".join(format_endpoint(endpoint) for endpoint in self.endpoints),
            "--protocol",
            spec.protocol,
            "--batch-size",
            str(spec.batch_size),
            "--batch-interval",
            str(spec.batch_interval),
            "--view-change-timeout",
            str(spec.view_change_timeout),
            "--accounts",
            str(spec.workload.num_accounts),
            "--workload-seed",
            str(spec.workload.seed),
        ]
        if spec.num_instances is not None:
            command += ["--instances", str(spec.num_instances)]
        if spec.epoch_length != 1_000_000:
            command += ["--epoch-length", str(spec.epoch_length)]
        runtime = self.runtime_config(replica_id, recovery=recovery)
        if runtime.run_dir is not None:
            command += ["--run-dir", runtime.run_dir]
            if recovery != "snapshot":
                command += ["--recovery", recovery]
            if spec.snapshot_every_epochs != 1:
                command += ["--snapshot-every-epochs", str(spec.snapshot_every_epochs)]
        if runtime.send_delay > 0:
            command += ["--send-delay", str(runtime.send_delay)]
        if runtime.wan is not None:
            command += ["--wan", runtime.wan]
        if runtime.byzantine_abstain:
            command += ["--byzantine-abstain"]
        if spec.wire_version is not None:
            command += ["--wire-version", str(spec.wire_version)]
        if spec.workers > 0:
            command += ["--workers", str(spec.workers)]
        if not spec.obs_enabled:
            command += ["--no-obs"]
        if runtime.trace_file is not None:
            command += [
                "--trace-file",
                runtime.trace_file,
                "--trace-sample",
                str(runtime.trace_sample),
            ]
        if runtime.metrics_file is not None:
            command += [
                "--metrics-file",
                runtime.metrics_file,
                "--metrics-interval",
                str(runtime.metrics_interval),
            ]
        if spec.log_level != "info":
            command += ["--log-level", spec.log_level]
        if spec.log_format != "text":
            command += ["--log-format", spec.log_format]
        return command

    # -- lifecycle -----------------------------------------------------------

    def start(self, *, ready_timeout: float = 20.0, attempts: int = 3) -> None:
        """Spawn every replica and wait until all listen sockets accept.

        Even batch-reserved ports leave a microscopic reuse window between
        releasing a reservation and the child binding, so startup failures
        are still retried with freshly reserved ports up to ``attempts``
        times.
        """
        if self.processes:
            raise ExperimentError("cluster is already running")
        if self.spec.transport == "uds" and self._socket_dir is None:
            # A previous stop() removed the socket directory.
            self.endpoints = self._pick_endpoints()
        last_error: Exception | None = None
        for attempt in range(max(1, attempts)):
            if attempt > 0:
                self.endpoints = self._pick_endpoints()
            try:
                self._spawn()
                self._wait_ready(ready_timeout)
                return
            except ExperimentError as error:
                last_error = error
                self.stop()
        raise ExperimentError(
            f"cluster failed to start after {attempts} attempts: {last_error}"
        )

    def _spawn(self) -> None:
        for replica_id in range(self.spec.num_replicas):
            process, log = self._spawn_replica(replica_id)
            self.processes.append(process)
            self._stderr_logs.append(log)

    def _spawn_replica(
        self, replica_id: int, *, recovery: str = "snapshot"
    ) -> tuple[subprocess.Popen, Path]:
        # Children must import the same ``repro`` this supervisor runs,
        # whether it came from an installed package or a PYTHONPATH checkout.
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        # stderr goes to a file, not a pipe: nobody reads a pipe during
        # the run, so a chatty replica would fill it and block inside a
        # logging write.  The file is read back for diagnostics.  With a run
        # directory it lives there (append mode, so a restart keeps the
        # pre-crash tail) and survives stop().
        if self.run_dir is not None:
            log = self.replica_dir(replica_id) / "stderr.log"
        else:
            log = Path(tempfile.mkstemp(prefix=f"repro-replica-{replica_id}-")[1])
        # Release this replica's port reservation at the last moment.
        self._release_reserved(replica_id)
        with log.open("ab") as stderr_sink:
            process = subprocess.Popen(
                self.serve_command(replica_id, recovery=recovery),
                stdout=subprocess.DEVNULL,
                stderr=stderr_sink,
                env=env,
            )
        self._watch(replica_id, process)
        return process, log

    def _watch(self, replica_id: int, process: subprocess.Popen) -> None:
        """Start a thread that records the process's exit and sets the event."""

        def wait_for_process() -> None:
            try:
                process.wait()
            except Exception:  # pragma: no cover - teardown races
                return
            with self._exit_lock:
                self._exits[replica_id] = process
            self._exit_event.set()

        watcher = threading.Thread(
            target=wait_for_process,
            name=f"repro-exit-watch-{replica_id}",
            daemon=True,
        )
        watcher.start()
        self._watchers.append(watcher)

    def _wait_ready(self, timeout: float) -> None:
        """Probe every replica's listen endpoint until all accept (parallel)."""
        deadline = time.monotonic() + timeout
        abort = threading.Event()
        max_workers = min(32, max(1, self.spec.num_replicas))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(self._wait_endpoint, index, deadline, abort)
                for index in range(len(self.endpoints))
            ]
            try:
                for future in as_completed(futures):
                    future.result()
            finally:
                abort.set()

    def _wait_endpoint(
        self, index: int, deadline: float, abort: threading.Event
    ) -> None:
        endpoint = self.endpoints[index]
        while not abort.is_set():
            process = self.processes[index]
            if process.poll() is not None:
                raise ExperimentError(
                    f"replica {index} exited during startup "
                    f"(code {process.returncode}): "
                    f"{self.replica_stderr(index).strip()[-2000:]}"
                )
            try:
                if is_uds_endpoint(endpoint):
                    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as probe:
                        probe.settimeout(0.25)
                        probe.connect(uds_path(endpoint))
                else:
                    with socket.create_connection(endpoint, timeout=0.25):
                        pass
                return
            except OSError:
                if time.monotonic() > deadline:
                    raise ExperimentError(
                        f"replica {index} did not open "
                        f"{format_endpoint(endpoint)} within the ready timeout"
                    ) from None
                time.sleep(0.05)

    def check(self) -> list[int]:
        """Ids of replicas whose processes have exited (healthy: empty)."""
        with self._exit_lock:
            recorded = {
                replica_id
                for replica_id, process in self._exits.items()
                if replica_id < len(self.processes)
                and self.processes[replica_id] is process
            }
        # Belt and braces: a watcher that has not run yet must not hide a
        # death from a caller who asks right now.
        recorded.update(
            index
            for index, process in enumerate(self.processes)
            if process.poll() is not None
        )
        return sorted(recorded)

    def wait_for_exit(self, timeout: float) -> list[int]:
        """Block until some replica exits (or ``timeout`` passes).

        Event-driven supervision: watcher threads flag exits the moment
        ``waitpid`` returns, so a supervisor sleeps here instead of polling
        every process on a timer.  Returns :meth:`check`.
        """
        self._exit_event.wait(timeout)
        self._exit_event.clear()
        return self.check()

    # -- fault injection -----------------------------------------------------

    def send_control(self, replica_id: int, message) -> None:
        """Fire one control-plane frame at a replica over a throwaway socket.

        Used by the chaos controller to push partition link updates
        (:class:`~repro.runtime.control.LinkUpdate`).  Synchronous and
        fire-and-forget: the frame is canonical JSON (v1) so it decodes
        without version negotiation, and no reply is awaited — link updates
        are absolute sets, so a lost one is corrected by the next push.
        Raises ``OSError`` when the replica's socket refuses (e.g. it is
        down); callers decide whether that matters.
        """
        from repro.runtime.codec import encode_envelope
        from repro.runtime.framing import encode_frame

        if not 0 <= replica_id < len(self.endpoints):
            raise ExperimentError(f"no replica {replica_id} to control")
        endpoint = self.endpoints[replica_id]
        frame = encode_frame(
            encode_envelope(self.spec.num_replicas, message, version=1)
        )
        if is_uds_endpoint(endpoint):
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(2.0)
                sock.connect(uds_path(endpoint))
                sock.sendall(frame)
        else:
            with socket.create_connection(endpoint, timeout=2.0) as sock:
                sock.sendall(frame)

    def kill_replica(self, replica_id: int) -> None:
        """Crash one replica process (SIGKILL: a crash, not a clean exit).

        Used by :class:`~repro.runtime.chaos.ChaosController` to execute a
        :class:`FaultPlan` crash.  The process slot is kept so the replica
        can later be restarted on the same endpoint.
        """
        if not 0 <= replica_id < len(self.processes):
            raise ExperimentError(f"no replica {replica_id} to kill")
        process = self.processes[replica_id]
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    def restart_replica(
        self,
        replica_id: int,
        *,
        recovery: str = "snapshot",
        ready_timeout: float = 20.0,
    ) -> None:
        """Respawn a previously killed replica on its original endpoint.

        Blocks until the restarted process accepts on its listen socket
        (bounded by ``ready_timeout``), mirroring :meth:`start`'s contract —
        callers can dial it the moment this returns.  The socket opens
        *before* WAL replay and state transfer finish, so acceptance does
        not mean the replica has caught up yet.

        Recovery modes:

        * ``"snapshot"`` (default) — with durability on, the restarted
          process recovers from its newest valid snapshot plus the WAL
          suffix, pulls whatever it still misses from peers, and rejoins as
          a *full* participant (it leads its instances and votes).
        * ``"genesis"`` — durable state is wiped first; the replica rebuilds
          from the genesis state and catches up through state transfer
          alone.

        Without durability (``ClusterSpec.durability=False``) there is no
        WAL, no snapshots and no state transfer: either mode rebuilds from
        genesis and rejoins passively — it serves its listen socket and
        answers the control plane but cannot catch up with slots delivered
        while it was down, so quorums must come from the replicas that
        stayed up.
        """
        if recovery not in ("snapshot", "genesis"):
            raise ExperimentError(f"unknown recovery mode {recovery!r}")
        if not 0 <= replica_id < len(self.processes):
            raise ExperimentError(f"no replica {replica_id} to restart")
        if self.processes[replica_id].poll() is None:
            raise ExperimentError(f"replica {replica_id} is still running")
        process, log = self._spawn_replica(replica_id, recovery=recovery)
        with self._exit_lock:
            self._exits.pop(replica_id, None)
        self.processes[replica_id] = process
        # Retire (but keep for cleanup) the pre-crash log; diagnostics now
        # read the restarted process's log at the replica's index.
        self._retired_logs.append(self._stderr_logs[replica_id])
        self._stderr_logs[replica_id] = log
        self._wait_endpoint(
            replica_id, time.monotonic() + ready_timeout, threading.Event()
        )

    def replica_stderr(self, replica_id: int) -> str:
        """Contents of one replica's stderr log (diagnostics)."""
        try:
            return self._stderr_logs[replica_id].read_text(errors="replace")
        except (IndexError, OSError):
            return ""

    def stop(self, *, grace: float = 5.0) -> None:
        """Terminate every replica (SIGTERM, then SIGKILL after ``grace``)."""
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + grace
        for process in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        self.processes.clear()
        for watcher in self._watchers:
            watcher.join(timeout=1.0)
        self._watchers.clear()
        with self._exit_lock:
            self._exits.clear()
        self._exit_event.clear()
        self._release_reserved()
        # Run-directory artifacts (traces, metrics, stderr) outlive the
        # cluster; only the anonymous temp logs are cleaned up.
        if self.run_dir is None:
            for log in self._stderr_logs + self._retired_logs:
                try:
                    log.unlink()
                except OSError:
                    pass
        self._stderr_logs.clear()
        self._retired_logs.clear()
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)
            self._socket_dir = None

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
