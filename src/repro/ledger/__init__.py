"""Ledger data model: objects, transactions, blocks, state, escrow."""

from repro.ledger.blocks import Block, SystemState
from repro.ledger.escrow import EscrowEntry, EscrowLog, EscrowResult
from repro.ledger.objects import (
    LedgerObject,
    ObjectOperation,
    ObjectType,
    OperationKind,
    owned_account,
    shared_record,
)
from repro.ledger.state import StateStore
from repro.ledger.transactions import (
    Transaction,
    TransactionType,
    classify,
    contract_call,
    next_transaction_id,
    payment,
    reset_transaction_counter,
    simple_transfer,
)
from repro.ledger.validation import BlockValidator, TransactionValidator, ValidationReport

__all__ = [
    "Block",
    "BlockValidator",
    "EscrowEntry",
    "EscrowLog",
    "EscrowResult",
    "LedgerObject",
    "ObjectOperation",
    "ObjectType",
    "OperationKind",
    "StateStore",
    "SystemState",
    "Transaction",
    "TransactionType",
    "TransactionValidator",
    "ValidationReport",
    "classify",
    "contract_call",
    "next_transaction_id",
    "owned_account",
    "payment",
    "reset_transaction_counter",
    "shared_record",
    "simple_transfer",
]
