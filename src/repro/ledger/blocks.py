"""Blocks: batches of transactions agreed by one SB instance (Sec. III-B).

A block is ``b = (txs, ins, sn, S, sigma)``: the transaction batch, the
instance that produced it, its sequence number within that instance, the
system state the leader referenced when pulling the batch, and the leader's
signature.  Protocols that use dynamic global ordering (Ladon, Orthrus)
additionally carry the block's *rank*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.crypto.digest import escape_json_string, sha256_hex
from repro.crypto.signatures import Signature
from repro.ledger.transactions import Transaction

#: Per-block header overhead charged by the bandwidth model (bytes).
BLOCK_HEADER_BYTES = 512


@dataclass(frozen=True)
class SystemState:
    """The Multi-BFT system state ``S = (sn_0, ..., sn_{m-1})``.

    ``sequence_numbers[i]`` is the highest sequence number delivered by
    instance ``i`` at the moment the state was captured, or ``-1`` when the
    instance has not delivered anything yet (the paper's ``⊥``).
    """

    sequence_numbers: tuple[int, ...]

    @classmethod
    def initial(cls, instance_count: int) -> "SystemState":
        """State before any block has been delivered."""
        return cls(tuple([-1] * instance_count))

    def advanced(self, instance: int, sequence_number: int) -> "SystemState":
        """Return a copy with ``instance`` advanced to ``sequence_number``."""
        values = list(self.sequence_numbers)
        values[instance] = max(values[instance], sequence_number)
        return SystemState(tuple(values))

    def covers(self, other: "SystemState") -> bool:
        """True when this state has delivered at least as much as ``other``."""
        if len(self.sequence_numbers) != len(other.sequence_numbers):
            return False
        return all(
            mine >= theirs
            for mine, theirs in zip(self.sequence_numbers, other.sequence_numbers)
        )

    def digest_fields(self) -> list[int]:
        """Canonical fields for hashing."""
        return list(self.sequence_numbers)

    def __iter__(self) -> Iterator[int]:
        return iter(self.sequence_numbers)

    def __len__(self) -> int:
        return len(self.sequence_numbers)


@dataclass
class Block:
    """A batch of transactions proposed by one SB instance.

    Attributes:
        instance: Index of the SB instance that produced the block.
        sequence_number: Position of the block within that instance.
        transactions: The batch.
        state: System state the leader referenced (``b.S`` in the paper).
        proposer: Node id of the leader that created the block.
        epoch: Epoch the block belongs to.
        rank: Dynamic-ordering rank (Ladon/Orthrus); ``None`` for protocols
            that use pre-determined global ordering.
        signature: Leader signature over the block digest.
    """

    instance: int
    sequence_number: int
    transactions: tuple[Transaction, ...]
    state: SystemState
    proposer: int
    epoch: int = 0
    rank: int | None = None
    signature: Signature | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        instance: int,
        sequence_number: int,
        transactions: Sequence[Transaction],
        state: SystemState,
        proposer: int,
        *,
        epoch: int = 0,
        rank: int | None = None,
    ) -> "Block":
        """Build a block from a transaction sequence."""
        return cls(
            instance=instance,
            sequence_number=sequence_number,
            transactions=tuple(transactions),
            state=state,
            proposer=proposer,
            epoch=epoch,
            rank=rank,
        )

    @property
    def is_noop(self) -> bool:
        """True for empty filler blocks (ISS-style no-ops)."""
        return len(self.transactions) == 0

    @property
    def size_bytes(self) -> int:
        """Wire size used by the bandwidth model."""
        return BLOCK_HEADER_BYTES + sum(tx.payload_size for tx in self.transactions)

    # Memoized like the digest below: the ordering hot path reads the id
    # several times per delivery.
    _block_id_memo = None

    @property
    def block_id(self) -> tuple[int, int]:
        """(instance, sequence_number) pair identifying the block."""
        memo = self._block_id_memo
        if memo is None:
            memo = self._block_id_memo = (self.instance, self.sequence_number)
        return memo

    # Lazily memoized content digest (unannotated on purpose: a plain class
    # attribute, not a dataclass field; shadowed per instance on first use).
    _digest_memo = None

    def digest_fields(self) -> dict[str, Any]:
        """Canonical fields for hashing (signature excluded)."""
        return {
            "instance": self.instance,
            "sn": self.sequence_number,
            "epoch": self.epoch,
            "rank": self.rank,
            "state": self.state.digest_fields(),
            "proposer": self.proposer,
            "txs": [tx.tx_id for tx in self.transactions],
        }

    def canonical_render(self) -> bytes:
        """Canonical bytes, byte-identical to sorted-key JSON of
        :meth:`digest_fields` (property-tested in ``tests/crypto``)."""
        txs = ", ".join(escape_json_string(tx.tx_id) for tx in self.transactions)
        state = ", ".join(map(str, self.state.sequence_numbers))
        rank = "null" if self.rank is None else str(self.rank)
        return (
            '{"epoch": %d, "instance": %d, "proposer": %d, "rank": %s, '
            '"sn": %d, "state": [%s], "txs": [%s]}'
            % (
                self.epoch,
                self.instance,
                self.proposer,
                rank,
                self.sequence_number,
                state,
                txs,
            )
        ).encode("utf-8")

    @property
    def digest(self) -> str:
        """Content digest of the block.

        Memoized on first access: every digest-covered field is fixed at
        construction (re-proposals after a view change reuse the same block
        object, so the digest survives unchanged by design).
        """
        memo = self._digest_memo
        if memo is None:
            memo = sha256_hex(self.canonical_render())
            self._digest_memo = memo
        return memo

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)
