"""Transactions: payment and contract classes (Sec. III-B).

A transaction is ``tx = (O, id, sigma)``: a set of object operations, a unique
identifier and the owner signatures that authorise decrements on owned
objects.  Payment transactions involve only owned objects; contract
transactions may additionally touch shared objects and therefore require
global ordering.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.crypto.digest import escape_json_string, sha256_hex
from repro.crypto.signatures import Signature
from repro.ledger.objects import ObjectOperation, ObjectType, OperationKind

#: Payload size used throughout the paper's evaluation (bytes).
DEFAULT_PAYLOAD_BYTES = 500

_tx_counter = itertools.count()


def next_transaction_id(prefix: str = "tx") -> str:
    """Generate a process-unique transaction identifier."""
    return f"{prefix}-{next(_tx_counter):012d}"


def reset_transaction_counter() -> None:
    """Reset the id counter (tests only; keeps golden ids stable)."""
    global _tx_counter
    _tx_counter = itertools.count()


class TransactionType(enum.Enum):
    """Payment (conflict-free) vs contract (general non-commutative)."""

    PAYMENT = "payment"
    CONTRACT = "contract"


@dataclass
class Transaction:
    """A client transaction.

    Attributes:
        tx_id: Unique identifier.
        operations: Object operations this transaction performs.
        tx_type: Payment or contract.
        payload_size: Bytes of client payload carried (500 in the paper).
        client_id: Submitting client (set by the workload/client layer).
        signatures: Owner signatures for owned-object decrements, keyed by
            the owning account.
        submitted_at: Simulated submission time (filled in by the client).
    """

    tx_id: str
    operations: tuple[ObjectOperation, ...]
    tx_type: TransactionType
    payload_size: int = DEFAULT_PAYLOAD_BYTES
    client_id: str | None = None
    signatures: Mapping[str, Signature] = field(default_factory=dict)
    submitted_at: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- classification helpers -------------------------------------------

    @property
    def is_payment(self) -> bool:
        """True for conflict-free payment transactions."""
        return self.tx_type is TransactionType.PAYMENT

    @property
    def is_contract(self) -> bool:
        """True for general (non-commutative) contract transactions."""
        return self.tx_type is TransactionType.CONTRACT

    def payers(self) -> list[str]:
        """Keys of owned objects this transaction decrements (the payers)."""
        return sorted(
            {op.key for op in self.operations if op.is_owned_decrement}
        )

    def payees(self) -> list[str]:
        """Keys of objects this transaction increments."""
        return sorted({op.key for op in self.operations if op.is_increment})

    def shared_keys(self) -> list[str]:
        """Keys of shared objects this transaction touches."""
        return sorted(
            {
                op.key
                for op in self.operations
                if op.object_type is ObjectType.SHARED
            }
        )

    @property
    def is_multi_payer(self) -> bool:
        """True when more than one owned object is decremented."""
        return len(self.payers()) > 1

    def decrement_operations(self) -> list[ObjectOperation]:
        """All owned decremental operations (the escrow targets).

        Memoized: escrow checks, partitioning and validation all re-ask this
        on the hot path, and ``operations`` is immutable after construction.
        """
        memo = self._decrements_memo
        if memo is None:
            memo = [op for op in self.operations if op.is_owned_decrement]
            self._decrements_memo = memo
        return memo

    def increment_operations(self) -> list[ObjectOperation]:
        """All incremental operations."""
        return [op for op in self.operations if op.is_increment]

    def total_debit(self) -> int:
        """Sum of all owned decrements (tokens leaving payer accounts)."""
        return sum(op.amount for op in self.decrement_operations())

    def total_credit(self) -> int:
        """Sum of all increments (tokens entering payee accounts)."""
        return sum(op.amount for op in self.increment_operations())

    @property
    def size_bytes(self) -> int:
        """Wire size estimate used by the bandwidth model."""
        return self.payload_size

    # Lazily memoized content digest: a class-level sentinel (deliberately
    # unannotated so the dataclass machinery does not treat it as a field);
    # the instance attribute shadows it after the first access.
    _digest_memo = None
    # Same pattern for the owned-decrement slice of ``operations``.
    _decrements_memo = None

    def digest_fields(self) -> dict[str, Any]:
        """Canonical fields for hashing."""
        return {
            "tx_id": self.tx_id,
            "type": self.tx_type.value,
            "operations": [op.digest_fields() for op in self.operations],
        }

    def canonical_render(self) -> bytes:
        """Canonical bytes, byte-identical to sorted-key JSON of
        :meth:`digest_fields` (keys are pre-sorted constants, so only the
        values are interpolated; property-tested in ``tests/crypto``)."""
        ops = ", ".join(
            '{"amount": %d, "key": %s, "kind": "%s", "type": "%s"}'
            % (op.amount, escape_json_string(op.key), op.kind.value, op.object_type.value)
            for op in self.operations
        )
        return (
            '{"operations": [%s], "tx_id": %s, "type": "%s"}'
            % (ops, escape_json_string(self.tx_id), self.tx_type.value)
        ).encode("utf-8")

    @property
    def digest(self) -> str:
        """Content digest of the transaction.

        Computed on first access and memoized: every field the digest covers
        (``tx_id``, ``tx_type``, the ``operations`` tuple) is immutable after
        construction, an invariant the digest property tests re-check by
        comparing the memo against a fresh recomputation.
        """
        memo = self._digest_memo
        if memo is None:
            memo = sha256_hex(self.canonical_render())
            self._digest_memo = memo
        return memo

    def __hash__(self) -> int:
        return hash(self.tx_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.tx_id == other.tx_id


# -- factory helpers -------------------------------------------------------


def payment(
    payers: Mapping[str, int] | Sequence[tuple[str, int]],
    payees: Mapping[str, int] | Sequence[tuple[str, int]],
    *,
    tx_id: str | None = None,
    client_id: str | None = None,
    payload_size: int = DEFAULT_PAYLOAD_BYTES,
) -> Transaction:
    """Build a payment transaction.

    Args:
        payers: Mapping (or pair sequence) of payer account -> amount debited.
        payees: Mapping (or pair sequence) of payee account -> amount credited.
        tx_id: Optional explicit id; generated when omitted.
        client_id: Submitting client identity.
        payload_size: Payload bytes carried by the transaction.

    The debits and credits are kept as provided; balance conservation
    (sum of debits == sum of credits) is the caller's responsibility and is
    asserted by the validator for workload-generated traffic.
    """
    payer_items = list(payers.items()) if isinstance(payers, Mapping) else list(payers)
    payee_items = list(payees.items()) if isinstance(payees, Mapping) else list(payees)
    operations: list[ObjectOperation] = []
    for key, amount in payer_items:
        operations.append(
            ObjectOperation(
                key=key,
                kind=OperationKind.DECREMENT,
                amount=int(amount),
                object_type=ObjectType.OWNED,
            )
        )
    for key, amount in payee_items:
        operations.append(
            ObjectOperation(
                key=key,
                kind=OperationKind.INCREMENT,
                amount=int(amount),
                object_type=ObjectType.OWNED,
            )
        )
    return Transaction(
        tx_id=tx_id or next_transaction_id(),
        operations=tuple(operations),
        tx_type=TransactionType.PAYMENT,
        payload_size=payload_size,
        client_id=client_id,
    )


def simple_transfer(
    payer: str,
    payee: str,
    amount: int,
    *,
    tx_id: str | None = None,
    client_id: str | None = None,
) -> Transaction:
    """Single-payer, single-payee payment (the paper's tx1/tx2/tx3 examples)."""
    return payment({payer: amount}, {payee: amount}, tx_id=tx_id, client_id=client_id)


def contract_call(
    caller_debits: Mapping[str, int] | Sequence[tuple[str, int]],
    shared_updates: Mapping[str, int] | Sequence[tuple[str, int]],
    *,
    credits: Mapping[str, int] | Sequence[tuple[str, int]] | None = None,
    tx_id: str | None = None,
    client_id: str | None = None,
    payload_size: int = DEFAULT_PAYLOAD_BYTES,
) -> Transaction:
    """Build a contract transaction.

    Args:
        caller_debits: Owned accounts charged by the call (payer -> amount).
        shared_updates: Shared objects assigned new values (key -> value).
        credits: Optional owned accounts credited by the call.
        tx_id: Optional explicit id.
        client_id: Submitting client identity.
        payload_size: Payload bytes carried by the transaction.
    """
    debit_items = (
        list(caller_debits.items())
        if isinstance(caller_debits, Mapping)
        else list(caller_debits)
    )
    shared_items = (
        list(shared_updates.items())
        if isinstance(shared_updates, Mapping)
        else list(shared_updates)
    )
    credit_items: list[tuple[str, int]] = []
    if credits is not None:
        credit_items = (
            list(credits.items()) if isinstance(credits, Mapping) else list(credits)
        )

    operations: list[ObjectOperation] = []
    for key, amount in debit_items:
        operations.append(
            ObjectOperation(
                key=key,
                kind=OperationKind.DECREMENT,
                amount=int(amount),
                object_type=ObjectType.OWNED,
            )
        )
    for key, value in shared_items:
        operations.append(
            ObjectOperation(
                key=key,
                kind=OperationKind.ASSIGN,
                amount=int(value),
                object_type=ObjectType.SHARED,
            )
        )
    for key, amount in credit_items:
        operations.append(
            ObjectOperation(
                key=key,
                kind=OperationKind.INCREMENT,
                amount=int(amount),
                object_type=ObjectType.OWNED,
            )
        )
    return Transaction(
        tx_id=tx_id or next_transaction_id("ctx"),
        operations=tuple(operations),
        tx_type=TransactionType.CONTRACT,
        payload_size=payload_size,
        client_id=client_id,
    )


def classify(operations: Iterable[ObjectOperation]) -> TransactionType:
    """Infer the transaction type from its operations.

    A transaction is a payment when every operation is a commutative
    increment/decrement on owned objects; anything touching shared objects or
    using non-commutative operations is a contract transaction.
    """
    for op in operations:
        if op.object_type is ObjectType.SHARED or not op.is_commutative:
            return TransactionType.CONTRACT
    return TransactionType.PAYMENT
