"""Replicated state store holding ledger objects.

Each replica owns one :class:`StateStore` mapping object keys to
:class:`~repro.ledger.objects.LedgerObject` instances.  The store exposes the
primitive mutations the execution engine needs (credit, debit, assign) and a
content digest used by checkpoints and by the safety tests that compare
replicas.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.crypto.digest import DigestAccumulator, digest
from repro.errors import InsufficientFundsError, UnknownObjectError
from repro.ledger.objects import LedgerObject, ObjectType, owned_account, shared_record


class StateStore:
    """Key-value store of ledger objects with condition-checked mutations."""

    def __init__(self) -> None:
        self._objects: dict[str, LedgerObject] = {}
        # state_digest() memoization: per-object digests keyed by the
        # object's mutation version (every mutation goes through
        # credit/debit/assign, which bump it), plus the sorted key list,
        # invalidated when membership changes.  Checkpoints and live status
        # probes then only re-hash objects that actually changed.
        self._digest_cache: dict[str, tuple[int, str]] = {}
        self._sorted_keys: list[str] | None = None
        #: Digest-memo effectiveness counters (plain ints: cheap enough for
        #: the simulator hot path, surfaced by the live metrics registry via
        #: callback gauges).
        self.digest_cache_hits = 0
        self.digest_cache_misses = 0

    # -- population --------------------------------------------------------

    def create_account(self, key: str, balance: int = 0) -> LedgerObject:
        """Create (or reset) an owned account with the given balance."""
        obj = owned_account(key, balance)
        self._note_membership_change(key)
        self._objects[key] = obj
        return obj

    def create_shared(self, key: str, value: int = 0) -> LedgerObject:
        """Create (or reset) a shared contract object."""
        obj = shared_record(key, value)
        self._note_membership_change(key)
        self._objects[key] = obj
        return obj

    def _note_membership_change(self, key: str) -> None:
        # A created (or reset) object restarts at version 0, which could
        # collide with a cached version — drop both caches conservatively.
        self._digest_cache.pop(key, None)
        if key not in self._objects:
            self._sorted_keys = None

    def load_accounts(self, balances: Mapping[str, int]) -> None:
        """Bulk-create owned accounts from a mapping."""
        for key, balance in balances.items():
            self.create_account(key, balance)

    # -- lookup -------------------------------------------------------------

    def get(self, key: str) -> LedgerObject:
        """Return the object stored under ``key``.

        Raises:
            UnknownObjectError: If the key does not exist.
        """
        try:
            return self._objects[key]
        except KeyError as exc:
            raise UnknownObjectError(f"object {key!r} does not exist") from exc

    def get_or_create(self, key: str, object_type: ObjectType) -> LedgerObject:
        """Return the object, creating a zero-valued one if absent."""
        if key not in self._objects:
            if object_type is ObjectType.SHARED:
                return self.create_shared(key)
            return self.create_account(key)
        return self._objects[key]

    def balance_of(self, key: str) -> int:
        """Current value of the object under ``key``."""
        return self.get(key).value

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def keys(self) -> Iterator[str]:
        """Iterate over all object keys."""
        return iter(self._objects)

    def total_owned_value(self) -> int:
        """Sum of all owned-object values (token supply, for invariants)."""
        return sum(
            obj.value
            for obj in self._objects.values()
            if obj.object_type is ObjectType.OWNED
        )

    # -- mutation -----------------------------------------------------------

    def credit(self, key: str, amount: int) -> int:
        """Increase an object's value by ``amount`` and return the new value."""
        obj = self.get(key)
        obj.value += int(amount)
        obj.version += 1
        return obj.value

    def debit(self, key: str, amount: int) -> int:
        """Decrease an object's value, enforcing the object's condition.

        Raises:
            InsufficientFundsError: If the resulting value would violate the
                object's ``con`` attribute.
        """
        obj = self.get(key)
        candidate = obj.value - int(amount)
        if not obj.satisfies_condition(candidate):
            raise InsufficientFundsError(
                f"debit of {amount} on {key!r} violates condition "
                f"(balance {obj.value}, minimum {obj.condition})"
            )
        obj.value = candidate
        obj.version += 1
        return obj.value

    def can_debit(self, key: str, amount: int) -> bool:
        """Whether a debit of ``amount`` would respect the condition."""
        obj = self.get(key)
        return obj.satisfies_condition(obj.value - int(amount))

    def assign(self, key: str, value: int) -> int:
        """Assign ``value`` to the object (non-commutative contract write)."""
        obj = self.get(key)
        obj.value = int(value)
        obj.version += 1
        return obj.value

    # -- snapshots ----------------------------------------------------------

    def snapshot(self, keys: Iterable[str] | None = None) -> dict[str, int]:
        """Return ``{key: value}`` for the requested keys (all by default)."""
        selected = self._objects if keys is None else {k: self.get(k) for k in keys}
        return {key: obj.value for key, obj in sorted(selected.items())}

    def state_digest(self) -> str:
        """Deterministic digest of the full store contents.

        Incremental: per-object digests are cached against the object's
        mutation version, so successive calls only re-hash objects that
        changed in between (checkpoints at every epoch boundary and live
        status probes hit this with mostly-unchanged stores).
        """
        keys = self._sorted_keys
        if keys is None:
            keys = self._sorted_keys = sorted(self._objects)
        cache = self._digest_cache
        accumulator = DigestAccumulator()
        hits = misses = 0
        for key in keys:
            obj = self._objects[key]
            cached = cache.get(key)
            if cached is not None and cached[0] == obj.version:
                entry = cached[1]
                hits += 1
            else:
                entry = digest(obj)
                cache[key] = (obj.version, entry)
                misses += 1
            accumulator.append(entry)
        self.digest_cache_hits += hits
        self.digest_cache_misses += misses
        return accumulator.hexdigest()

    def dump_objects(self) -> list[list]:
        """Serialise every object as ``[key, value, type, condition, version]``.

        The row format is the durable-snapshot wire form (see
        ``docs/durability.md``); rows are sorted by key so the dump is
        deterministic across replicas holding equal state.
        """
        return [
            [obj.key, obj.value, obj.object_type.value, obj.condition, obj.version]
            for _, obj in sorted(self._objects.items())
        ]

    def load_objects(self, rows: Iterable[list]) -> None:
        """Replace the store's contents with rows from :meth:`dump_objects`.

        Mutates this instance in place (references held by escrow logs and
        execution engines stay valid) and drops every digest cache.
        """
        self._objects = {
            key: LedgerObject(
                key=key,
                value=int(value),
                object_type=ObjectType(object_type),
                condition=int(condition),
                version=int(version),
            )
            for key, value, object_type, condition, version in rows
        }
        self._digest_cache = {}
        self._sorted_keys = None

    def copy(self) -> "StateStore":
        """Deep copy of the store (used by speculative validation)."""
        clone = StateStore()
        for key, obj in self._objects.items():
            clone._objects[key] = LedgerObject(
                key=obj.key,
                value=obj.value,
                object_type=obj.object_type,
                condition=obj.condition,
                version=obj.version,
                metadata=dict(obj.metadata),
            )
        return clone
