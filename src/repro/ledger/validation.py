"""Transaction and block validation (the ``validateTx`` step of Algorithm 1).

Replicas verify structural well-formedness, amount sanity, type consistency
and — when a PKI is supplied — the owner signatures authorising decrements on
owned objects.  Leaders additionally validate blocks proposed by other leaders
(spoofing-attack detection in Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import verify
from repro.errors import ValidationError
from repro.ledger.blocks import Block
from repro.ledger.objects import ObjectType, OperationKind
from repro.ledger.transactions import Transaction, TransactionType


@dataclass
class ValidationReport:
    """Outcome of validating one transaction or block."""

    valid: bool
    errors: list[str] = field(default_factory=list)

    def require(self) -> None:
        """Raise :class:`ValidationError` when invalid."""
        if not self.valid:
            raise ValidationError("; ".join(self.errors))


class TransactionValidator:
    """Checks transactions before they are admitted to buckets."""

    def __init__(
        self,
        pki: PublicKeyInfrastructure | None = None,
        *,
        require_signatures: bool = False,
        require_balanced_payments: bool = True,
    ) -> None:
        self._pki = pki
        self._require_signatures = require_signatures and pki is not None
        self._require_balanced = require_balanced_payments

    def validate(self, tx: Transaction) -> ValidationReport:
        """Validate a single transaction."""
        errors: list[str] = []
        if not tx.tx_id:
            errors.append("transaction id is empty")
        if not tx.operations:
            errors.append("transaction has no operations")
        if not any(op.object_type is ObjectType.OWNED for op in tx.operations):
            errors.append("every transaction must involve at least one owned object")
        for op in tx.operations:
            if op.kind in (OperationKind.INCREMENT, OperationKind.DECREMENT):
                if op.amount < 0:
                    errors.append(
                        f"negative amount {op.amount} on {op.key!r} is not allowed"
                    )
            if op.object_type is ObjectType.SHARED and tx.is_payment:
                errors.append(
                    f"payment transaction touches shared object {op.key!r}"
                )
            if op.kind is OperationKind.ASSIGN and tx.is_payment:
                errors.append("payment transaction contains a non-commutative assign")
        if (
            self._require_balanced
            and tx.tx_type is TransactionType.PAYMENT
            and tx.total_debit() != tx.total_credit()
        ):
            errors.append(
                f"unbalanced payment: debits {tx.total_debit()} != "
                f"credits {tx.total_credit()}"
            )
        if self._require_signatures:
            errors.extend(self._check_signatures(tx))
        return ValidationReport(valid=not errors, errors=errors)

    def _check_signatures(self, tx: Transaction) -> list[str]:
        errors: list[str] = []
        assert self._pki is not None
        for payer in tx.payers():
            signature = tx.signatures.get(payer)
            if signature is None:
                errors.append(f"missing signature from payer {payer!r}")
                continue
            if not verify(self._pki, signature, tx):
                errors.append(f"invalid signature from payer {payer!r}")
        return errors


class BlockValidator:
    """Checks blocks delivered by SB instances (spoofing detection)."""

    def __init__(self, tx_validator: TransactionValidator | None = None) -> None:
        self._tx_validator = tx_validator or TransactionValidator()

    def validate(self, block: Block, *, expected_instance: int | None = None) -> ValidationReport:
        """Validate a block's structure and its transactions."""
        errors: list[str] = []
        if block.sequence_number < 0:
            errors.append(f"negative sequence number {block.sequence_number}")
        if expected_instance is not None and block.instance != expected_instance:
            errors.append(
                f"block claims instance {block.instance}, expected {expected_instance}"
            )
        seen: set[str] = set()
        for tx in block.transactions:
            if tx.tx_id in seen:
                errors.append(f"duplicate transaction {tx.tx_id} in block")
            seen.add(tx.tx_id)
            report = self._tx_validator.validate(tx)
            if not report.valid:
                errors.extend(f"{tx.tx_id}: {msg}" for msg in report.errors)
        return ValidationReport(valid=not errors, errors=errors)
