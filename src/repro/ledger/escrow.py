"""Escrow mechanism (Algorithm 2 of the paper).

The escrow log ``elog`` temporarily reserves the funds a transaction's
decremental operations need.  The reservation is applied to the state store
immediately (the balance drops), but the entry stays in the log until the
transaction's fate is known:

* ``commit_escrow`` makes every reservation of the transaction permanent by
  simply dropping the log entries (the debit already happened).
* ``abort_escrow`` undoes every reservation, refunding the payers.

This gives Orthrus both of its escrow use cases: atomicity of multi-payer
payments split across instances (Solution-I) and non-blocking interaction
between pending contract transactions and subsequent payments (Solution-II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import EscrowError
from repro.ledger.objects import ObjectOperation
from repro.ledger.state import StateStore
from repro.ledger.transactions import Transaction


@dataclass(frozen=True)
class EscrowEntry:
    """One reservation: ``(object key, transaction)`` plus the amount held."""

    key: str
    tx_id: str
    amount: int


@dataclass
class EscrowResult:
    """Outcome of an escrow attempt."""

    success: bool
    entry: EscrowEntry | None = None
    reason: str = ""


class EscrowLog:
    """The ``elog`` of Algorithm 2, bound to one replica's state store."""

    def __init__(self, store: StateStore) -> None:
        self._store = store
        self._entries: dict[tuple[str, str], EscrowEntry] = {}
        #: Counters used by metrics/ablation benches.
        self.escrows_attempted = 0
        self.escrows_failed = 0
        self.commits = 0
        self.aborts = 0

    # -- Algorithm 2 primitives --------------------------------------------

    def escrow(self, operation: ObjectOperation, tx: Transaction) -> EscrowResult:
        """Attempt to escrow ``operation`` for ``tx`` (function ``escrow``).

        Applies the decrement to the object when the post-operation value
        satisfies the object's condition, and records the reservation.
        A duplicate escrow of the same (object, transaction) pair is a no-op
        success, which keeps redelivery idempotent.
        """
        self.escrows_attempted += 1
        entry_key = (operation.key, tx.tx_id)
        if entry_key in self._entries:
            return EscrowResult(True, self._entries[entry_key], "already escrowed")
        if not operation.is_owned_decrement:
            raise EscrowError(
                "escrow only applies to owned decremental operations, got "
                f"{operation.kind.value} on {operation.key!r}"
            )
        obj = self._store.get(operation.key)
        candidate = obj.value - operation.amount
        if not obj.satisfies_condition(candidate):
            self.escrows_failed += 1
            return EscrowResult(
                False,
                None,
                f"insufficient funds on {operation.key!r}: balance {obj.value}, "
                f"requested {operation.amount}",
            )
        self._store.debit(operation.key, operation.amount)
        entry = EscrowEntry(key=operation.key, tx_id=tx.tx_id, amount=operation.amount)
        self._entries[entry_key] = entry
        return EscrowResult(True, entry)

    def is_escrowed(self, key: str, tx: Transaction) -> bool:
        """Whether ``(key, tx)`` currently holds a reservation."""
        return (key, tx.tx_id) in self._entries

    def all_escrowed(self, tx: Transaction) -> bool:
        """Function ``allEscrowed``: every owned decrement of ``tx`` reserved."""
        for operation in tx.operations:
            if operation.is_owned_decrement and not self.is_escrowed(
                operation.key, tx
            ):
                return False
        return True

    def commit_escrow(self, tx: Transaction) -> int:
        """Function ``commitEscrow``: make ``tx``'s reservations permanent.

        Returns the number of entries removed from the log.
        """
        removed = self._remove_entries(tx)
        if removed:
            self.commits += 1
        return removed

    def abort_escrow(self, tx: Transaction) -> int:
        """Function ``abortEscrow``: undo and drop ``tx``'s reservations.

        Returns the number of entries refunded.
        """
        refunded = 0
        for entry_key in self._entry_keys_of(tx):
            entry = self._entries.pop(entry_key)
            self._store.credit(entry.key, entry.amount)
            refunded += 1
        if refunded:
            self.aborts += 1
        return refunded

    # -- inspection ----------------------------------------------------------

    def entries_for_transaction(self, tx: Transaction) -> list[EscrowEntry]:
        """All reservations currently held for ``tx``."""
        return [self._entries[k] for k in self._entry_keys_of(tx)]

    def entries_for_key(self, key: str) -> list[EscrowEntry]:
        """All reservations currently held against object ``key``."""
        return [entry for entry in self._entries.values() if entry.key == key]

    def pending_amount(self, key: str) -> int:
        """Total amount currently reserved against object ``key``."""
        return sum(entry.amount for entry in self.entries_for_key(key))

    def total_reserved(self) -> int:
        """Total amount reserved across all objects (for conservation checks)."""
        return sum(entry.amount for entry in self._entries.values())

    def dump_entries(self) -> list[list]:
        """Serialise live reservations as ``[key, tx_id, amount]`` rows
        (sorted, for the durable snapshot format)."""
        return [
            [entry.key, entry.tx_id, entry.amount]
            for _, entry in sorted(self._entries.items())
        ]

    def load_entries(self, rows: Iterable[list]) -> None:
        """Replace the log's reservations with rows from :meth:`dump_entries`.

        The store balances are *not* touched: a snapshot's object values
        already reflect the debits these reservations applied.
        """
        self._entries = {
            (key, tx_id): EscrowEntry(key=key, tx_id=tx_id, amount=int(amount))
            for key, tx_id, amount in rows
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[EscrowEntry]:
        return iter(self._entries.values())

    # -- internals -----------------------------------------------------------

    def _entry_keys_of(self, tx: Transaction) -> list[tuple[str, str]]:
        return [key for key in self._entries if key[1] == tx.tx_id]

    def _remove_entries(self, tx: Transaction) -> int:
        keys = self._entry_keys_of(tx)
        for key in keys:
            del self._entries[key]
        return len(keys)
