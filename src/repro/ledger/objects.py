"""Object-centric data model (Sec. III-B of the paper).

Objects are long-lived records such as accounts.  Each object carries a
``key`` (unique identifier), its current ``value``, a ``con`` condition that
must hold after any operation (for accounts: the balance may not go below
zero), and a ``type`` marking it as *owned* (a specific owner must authorise
decrements) or *shared* (accessible from smart contracts).

Transactions do not embed objects directly; they reference them through
:class:`ObjectOperation`, which names the object, the operation kind and the
amount/argument the operation carries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.digest import escape_json_string


class ObjectType(enum.Enum):
    """Whether an object is owned by a specific account or shared."""

    OWNED = "owned"
    SHARED = "shared"


class OperationKind(enum.Enum):
    """Operations a transaction can request on an object.

    ``INCREMENT`` and ``DECREMENT`` are the commutative payment operations the
    partial-ordering path exploits; ``ASSIGN`` and ``CONTRACT_CALL`` are the
    non-commutative operations that force global ordering; ``READ`` never
    changes state.
    """

    INCREMENT = "increment"
    DECREMENT = "decrement"
    ASSIGN = "assign"
    READ = "read"
    CONTRACT_CALL = "contract_call"


#: Operation kinds that change the value of the object they touch.
MUTATING_KINDS = frozenset(
    {
        OperationKind.INCREMENT,
        OperationKind.DECREMENT,
        OperationKind.ASSIGN,
        OperationKind.CONTRACT_CALL,
    }
)

#: Operation kinds that commute with each other on distinct payers.
COMMUTATIVE_KINDS = frozenset({OperationKind.INCREMENT, OperationKind.DECREMENT})


@dataclass(frozen=True)
class ObjectOperation:
    """One object reference inside a transaction.

    Attributes:
        key: Identifier of the object (an account address or contract slot).
        kind: Operation to perform.
        amount: Token amount for increment/decrement, or the value to assign.
        object_type: Owned or shared, as declared by the transaction.
    """

    key: str
    kind: OperationKind
    amount: int = 0
    object_type: ObjectType = ObjectType.OWNED

    @property
    def is_decrement(self) -> bool:
        """True for decremental operations (the paper's escrow trigger)."""
        return self.kind is OperationKind.DECREMENT

    @property
    def is_increment(self) -> bool:
        """True for incremental operations."""
        return self.kind is OperationKind.INCREMENT

    @property
    def is_owned_decrement(self) -> bool:
        """True when this operation requires the owner's authorisation."""
        return self.object_type is ObjectType.OWNED and self.is_decrement

    @property
    def is_commutative(self) -> bool:
        """True for operations that commute across distinct payers."""
        return self.kind in COMMUTATIVE_KINDS

    def digest_fields(self) -> dict[str, Any]:
        """Canonical fields for hashing."""
        return {
            "key": self.key,
            "kind": self.kind.value,
            "amount": self.amount,
            "type": self.object_type.value,
        }


@dataclass
class LedgerObject:
    """Stored state of one object in a replica's state store.

    Attributes:
        key: Unique identifier.
        value: Current value (account balance or contract slot contents).
        object_type: Owned or shared.
        condition: Minimum value the object may hold after any operation
            (the paper's ``con`` attribute; 0 for accounts).
        version: Monotonic counter bumped on every successful mutation,
            used by tests and the checkpointing digest.
    """

    key: str
    value: int = 0
    object_type: ObjectType = ObjectType.OWNED
    condition: int = 0
    version: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    def satisfies_condition(self, candidate_value: int) -> bool:
        """Whether ``candidate_value`` respects the object's condition."""
        return candidate_value >= self.condition

    def digest_fields(self) -> dict[str, Any]:
        """Canonical fields for hashing."""
        return {
            "key": self.key,
            "value": self.value,
            "type": self.object_type.value,
            "condition": self.condition,
        }

    def canonical_render(self) -> bytes:
        """Canonical bytes, byte-identical to sorted-key JSON of
        :meth:`digest_fields` (property-tested in ``tests/crypto``).

        Unlike transactions and blocks, ledger objects are mutable, so their
        digest is *not* memoized here — the state store caches it per
        ``(key, version)`` instead.
        """
        return (
            '{"condition": %d, "key": %s, "type": "%s", "value": %d}'
            % (
                self.condition,
                escape_json_string(self.key),
                self.object_type.value,
                self.value,
            )
        ).encode("utf-8")


def owned_account(key: str, balance: int = 0) -> LedgerObject:
    """Convenience constructor for an owned account object."""
    return LedgerObject(key=key, value=balance, object_type=ObjectType.OWNED)


def shared_record(key: str, value: int = 0) -> LedgerObject:
    """Convenience constructor for a shared (contract) object."""
    return LedgerObject(
        key=key,
        value=value,
        object_type=ObjectType.SHARED,
        condition=-(2**62),
    )
