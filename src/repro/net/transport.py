"""Host-transport abstraction shared by the simulator and the live runtime.

The consensus logic (:class:`~repro.cluster.replica.MultiBFTReplica` and the
:class:`~repro.sb.pbft.endpoint.PBFTEndpoint` state machines it hosts) never
talks to a network or an event loop directly.  It talks to a
:class:`NodeTransport`: something that can send and broadcast messages, read a
clock and arm cancellable timers.  Two implementations exist:

* the simulator: :class:`~repro.sim.process.Process` satisfies the protocol
  through the discrete-event :class:`~repro.sim.simulator.Simulator` and the
  modelled :class:`~repro.net.network.Network` (deterministic virtual time);
* the live runtime: :class:`~repro.runtime.transport.AsyncioTransport`
  satisfies it over real TCP connections and ``loop.call_later`` timers
  (wall-clock time, no determinism guarantees).

Because both present the same interface, the identical replica code runs in a
simulation and as a real server process.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """A source of the current time in seconds.

    Simulated clocks return virtual time; live clocks return monotonic
    wall-clock seconds measured from transport start.  Consensus code must
    only ever compare or subtract these values, never interpret them as
    absolute dates.
    """

    def now(self) -> float:
        """Current time in seconds."""
        ...


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable timer returned by :meth:`NodeTransport.set_timer`."""

    @property
    def active(self) -> bool:
        """True while the timer is armed and has not fired or been cancelled."""
        ...

    def cancel(self) -> None:
        """Cancel the timer; a no-op once it has fired."""
        ...


@runtime_checkable
class NodeTransport(Clock, Protocol):
    """Everything a replica needs from its host environment.

    This is a superset of the per-endpoint
    :class:`~repro.sb.interface.Transport` protocol: it adds
    :meth:`cancel_timers`, which the replica uses when it crashes or shuts
    down.
    """

    def send(self, destination: int, message: Any) -> None:
        """Send ``message`` to the node identified by ``destination``."""
        ...

    def broadcast(self, message: Any, include_self: bool = False) -> None:
        """Send ``message`` to every other participant."""
        ...

    def set_timer(self, delay: float, callback: Callable[[], Any]) -> TimerHandle:
        """Schedule ``callback`` after ``delay`` seconds; returns a handle."""
        ...

    def cancel_timers(self) -> None:
        """Cancel every timer set through this transport and still pending."""
        ...
