"""Network substrate: latency/bandwidth models, faults, message fabric."""

from repro.net.faults import NodeCondition
from repro.net.latency import (
    BandwidthModel,
    FixedLatencyModel,
    LANLatencyModel,
    LatencyModel,
    WANLatencyModel,
    latency_model_for,
)
from repro.net.message import Envelope, estimate_size
from repro.net.network import Network, NetworkStats
from repro.net.transport import Clock, NodeTransport, TimerHandle

__all__ = [
    "BandwidthModel",
    "Clock",
    "Envelope",
    "FixedLatencyModel",
    "LANLatencyModel",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "NodeCondition",
    "NodeTransport",
    "TimerHandle",
    "WANLatencyModel",
    "estimate_size",
    "latency_model_for",
]
