"""Network substrate: latency/bandwidth models, faults, message fabric."""

from repro.net.faults import NodeCondition
from repro.net.latency import (
    BandwidthModel,
    FixedLatencyModel,
    LANLatencyModel,
    LatencyModel,
    WANLatencyModel,
    latency_model_for,
)
from repro.net.message import Envelope, estimate_size
from repro.net.network import Network, NetworkStats

__all__ = [
    "BandwidthModel",
    "Envelope",
    "FixedLatencyModel",
    "LANLatencyModel",
    "LatencyModel",
    "Network",
    "NetworkStats",
    "NodeCondition",
    "WANLatencyModel",
    "estimate_size",
    "latency_model_for",
]
