"""Simulated point-to-point network connecting processes.

The :class:`Network` delivers messages between registered
:class:`~repro.sim.process.Process` instances with a delay composed of:

* serialisation delay (bandwidth model, charged at the sender),
* propagation delay (latency model for the source/destination pair),
* per-node slowdown factors (stragglers),

and drops messages involving crashed, muted, or partitioned nodes.  Channels
are authenticated and reliable after GST, matching the partial-synchrony model
the paper assumes; message loss is only ever the result of injected faults.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import UnknownNodeError
from repro.net.faults import NodeCondition
from repro.net.latency import BandwidthModel, LatencyModel, LANLatencyModel
from repro.net.message import Envelope, estimate_size
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class NetworkStats:
    """Aggregate counters describing network usage during a run."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
        }


class Network:
    """Authenticated point-to-point message fabric over the simulator."""

    def __init__(
        self,
        sim: Simulator,
        latency_model: LatencyModel | None = None,
        bandwidth_model: BandwidthModel | None = None,
    ) -> None:
        self.sim = sim
        self.latency_model = latency_model or LANLatencyModel()
        self.bandwidth_model = bandwidth_model or BandwidthModel()
        self.stats = NetworkStats()
        self._processes: dict[int, Process] = {}
        self._conditions: dict[int, NodeCondition] = {}
        self._rng = sim.rng.fork("network")
        self._delivery_hooks: list[Callable[[Envelope], None]] = []
        #: Membership caches maintained across register/unregister: the
        #: sorted id list and the per-source broadcast destination lists
        #: (broadcast storms dominate consensus traffic; rebuilding the
        #: destination list per call was a measurable cost).
        self._sorted_ids: list[int] = []
        self._broadcast_destinations: dict[tuple[int, bool], list[int]] = {}

    # -- membership -------------------------------------------------------

    def register(self, process: Process) -> None:
        """Add a process to the network and attach it."""
        if process.node_id not in self._processes:
            self._sorted_ids = sorted([*self._processes, process.node_id])
            self._broadcast_destinations.clear()
        self._processes[process.node_id] = process
        self._conditions.setdefault(process.node_id, NodeCondition())
        process.attach(self)

    def unregister(self, node_id: int) -> None:
        """Remove a process from the network (undelivered messages drop)."""
        if self._processes.pop(node_id, None) is not None:
            self._sorted_ids = sorted(self._processes)
            self._broadcast_destinations.clear()

    def node_ids(self) -> list[int]:
        """All registered node ids in ascending order."""
        return list(self._sorted_ids)

    def process(self, node_id: int) -> Process:
        """Look up a registered process."""
        try:
            return self._processes[node_id]
        except KeyError as exc:
            raise UnknownNodeError(f"node {node_id} is not registered") from exc

    def condition(self, node_id: int) -> NodeCondition:
        """Fault/degradation state for a node (created on demand)."""
        return self._conditions.setdefault(node_id, NodeCondition())

    # -- fault injection ---------------------------------------------------

    def set_slowdown(self, node_id: int, factor: float) -> None:
        """Make a node a straggler: all its delays are multiplied by ``factor``."""
        self.condition(node_id).slowdown = max(1.0, float(factor))

    def crash(self, node_id: int) -> None:
        """Crash a node; it neither sends nor receives from now on."""
        self.condition(node_id).crashed = True

    def recover(self, node_id: int) -> None:
        """Restore a crashed or degraded node to healthy operation."""
        self.condition(node_id).reset()

    def mute(self, node_id: int, destinations: Iterable[int]) -> None:
        """Prevent ``node_id`` from sending to the given destinations."""
        self.condition(node_id).muted_destinations.update(destinations)

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split nodes into isolated groups (nodes absent stay reachable)."""
        for group_index, members in enumerate(groups):
            for node_id in members:
                self.condition(node_id).partition_group = group_index

    def heal_partition(self) -> None:
        """Remove any partition grouping."""
        for condition in self._conditions.values():
            condition.partition_group = None

    # -- observation -------------------------------------------------------

    def add_delivery_hook(self, hook: Callable[[Envelope], None]) -> None:
        """Register a callback invoked for every delivered envelope."""
        self._delivery_hooks.append(hook)

    # -- transmission ------------------------------------------------------

    def send(
        self,
        source: int,
        destination: int,
        payload: Any,
        *,
        fanout: int = 1,
    ) -> None:
        """Send ``payload`` from ``source`` to ``destination``.

        Local delivery (``source == destination``) is immediate and bypasses
        the latency/bandwidth models, matching in-process hand-off.
        """
        if destination not in self._processes:
            raise UnknownNodeError(f"destination {destination} is not registered")
        size = estimate_size(payload)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size

        src_condition = self.condition(source)
        dst_condition = self.condition(destination)
        if not src_condition.can_send_to(destination, dst_condition):
            self.stats.messages_dropped += 1
            return

        delay = self._transfer_delay(source, destination, size, fanout)
        envelope = Envelope(
            source=source,
            destination=destination,
            payload=payload,
            size_bytes=size,
            sent_at=self.sim.now,
            deliver_at=self.sim.now + delay,
        )
        self.sim.schedule(delay, self._deliver, envelope)

    def _destinations_from(self, source: int, include_self: bool) -> list[int]:
        """Broadcast destination list for ``source`` (cached; the caches are
        invalidated whenever membership changes)."""
        key = (source, include_self)
        destinations = self._broadcast_destinations.get(key)
        if destinations is None:
            destinations = [
                node_id
                for node_id in self._sorted_ids
                if include_self or node_id != source
            ]
            self._broadcast_destinations[key] = destinations
        return destinations

    def broadcast(
        self, source: int, payload: Any, *, include_self: bool = False
    ) -> None:
        """Send ``payload`` from ``source`` to every registered process."""
        destinations = self._destinations_from(source, include_self)
        fanout = max(1, len(destinations))
        for destination in destinations:
            self.send(source, destination, payload, fanout=fanout)

    def _transfer_delay(
        self, source: int, destination: int, size: int, fanout: int
    ) -> float:
        if source == destination:
            return 0.0
        serialization = self.bandwidth_model.serialization_delay(size, fanout)
        propagation = self.latency_model.delay(source, destination, self._rng)
        slowdown = max(
            self.condition(source).slowdown, self.condition(destination).slowdown
        )
        return (serialization + propagation) * slowdown

    def _deliver(self, envelope: Envelope) -> None:
        destination = self._processes.get(envelope.destination)
        dst_condition = self.condition(envelope.destination)
        if destination is None or dst_condition.crashed:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        for hook in self._delivery_hooks:
            hook(envelope)
        destination.receive(envelope.source, envelope.payload)
