"""Node-level fault and degradation state tracked by the network.

The network substrate keeps one :class:`NodeCondition` per registered process
recording whether the node is crashed, slowed down (a *straggler*), muted
towards specific peers (used for undetectable Byzantine behaviour where a
replica abstains from instances it does not lead), or partitioned away.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeCondition:
    """Mutable fault/degradation flags for one node."""

    #: Multiplier applied to every delay involving this node (1.0 = healthy,
    #: 10.0 = the paper's straggler).
    slowdown: float = 1.0
    #: Crashed nodes silently drop all traffic in both directions.
    crashed: bool = False
    #: Peers this node refuses to send to (undetectable Byzantine abstention).
    muted_destinations: set[int] = field(default_factory=set)
    #: Partition group id; nodes in different groups cannot communicate.
    #: ``None`` means "not partitioned".
    partition_group: int | None = None

    def can_send_to(self, destination: int, other: "NodeCondition") -> bool:
        """Whether a message from this node can reach ``destination``."""
        if self.crashed or other.crashed:
            return False
        if destination in self.muted_destinations:
            return False
        if self.partition_group is not None and other.partition_group is not None:
            return self.partition_group == other.partition_group
        return True

    def reset(self) -> None:
        """Restore the node to a healthy, fully connected condition."""
        self.slowdown = 1.0
        self.crashed = False
        self.muted_destinations.clear()
        self.partition_group = None
