"""Latency models for LAN and WAN deployments.

The paper evaluates Orthrus on AWS in two settings:

* **LAN** - machines in one region over private 1 Gbps interfaces.
* **WAN** - instances spread across four regions (France, the United States,
  Australia, Tokyo), again capped at 1 Gbps.

A :class:`LatencyModel` maps a ``(source, destination, rng)`` triple to a
one-way propagation delay in seconds.  Region assignment for the WAN model is
round-robin over the node id, mirroring an even spread of replicas across the
four data centres.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.rng import DeterministicRNG

#: Region names used by the default WAN model (matches the paper's regions).
WAN_REGIONS: tuple[str, ...] = ("eu-west", "us-east", "ap-southeast", "ap-northeast")

#: Approximate one-way inter-region delays in seconds (France, US, Australia,
#: Tokyo).  Diagonal entries are the intra-region delay.  Values are derived
#: from public AWS inter-region RTT measurements and are configuration, not
#: hard-coded behaviour: experiments may substitute their own matrix.
DEFAULT_WAN_MATRIX: tuple[tuple[float, ...], ...] = (
    (0.0005, 0.0420, 0.1400, 0.1100),
    (0.0420, 0.0005, 0.1000, 0.0750),
    (0.1400, 0.1000, 0.0005, 0.0550),
    (0.1100, 0.0750, 0.0550, 0.0005),
)


class LatencyModel:
    """Interface: one-way propagation delay between two nodes."""

    def delay(self, source: int, destination: int, rng: DeterministicRNG) -> float:
        """Return the propagation delay in seconds for one message."""
        raise NotImplementedError

    def region_of(self, node_id: int) -> str:
        """Name of the region a node lives in (single region by default)."""
        return "local"


@dataclass
class LANLatencyModel(LatencyModel):
    """Single-datacentre latency: sub-millisecond with light jitter."""

    base_delay: float = 0.0005
    jitter_sigma: float = 0.2

    def delay(self, source: int, destination: int, rng: DeterministicRNG) -> float:
        if source == destination:
            return 0.0
        return rng.lognormal_jitter(self.base_delay, self.jitter_sigma)


@dataclass
class WANLatencyModel(LatencyModel):
    """Four-region WAN latency with round-robin region assignment."""

    regions: Sequence[str] = WAN_REGIONS
    matrix: Sequence[Sequence[float]] = DEFAULT_WAN_MATRIX
    jitter_sigma: float = 0.15

    def region_index(self, node_id: int) -> int:
        """Region index a node is assigned to (round-robin)."""
        return node_id % len(self.regions)

    def region_of(self, node_id: int) -> str:
        return self.regions[self.region_index(node_id)]

    def base_delay(self, source: int, destination: int) -> float:
        """Deterministic (jitter-free) one-way delay between two nodes."""
        if source == destination:
            return 0.0
        row = self.region_index(source)
        col = self.region_index(destination)
        return float(self.matrix[row][col])

    def delay(self, source: int, destination: int, rng: DeterministicRNG) -> float:
        base = self.base_delay(source, destination)
        if base == 0.0:
            return 0.0
        return rng.lognormal_jitter(base, self.jitter_sigma)


@dataclass
class FixedLatencyModel(LatencyModel):
    """Constant delay between distinct nodes; useful for unit tests."""

    fixed_delay: float = 0.01

    def delay(self, source: int, destination: int, rng: DeterministicRNG) -> float:
        return 0.0 if source == destination else self.fixed_delay


@dataclass
class BandwidthModel:
    """Per-link serialisation delay: ``bytes / bandwidth``.

    The paper caps network interfaces at 1 Gbps in both LAN and WAN settings,
    which makes block dissemination from the leader the throughput bottleneck.
    ``per_node_share`` models the fact that a leader fanning a block out to
    ``n - 1`` peers shares its uplink across those transfers.
    """

    bandwidth_bps: float = 1_000_000_000.0  # 1 Gbps, as in the paper
    per_node_share: bool = True

    def serialization_delay(self, size_bytes: int, fanout: int = 1) -> float:
        """Time to push ``size_bytes`` onto the wire for one destination.

        Args:
            size_bytes: Payload size of the message.
            fanout: Number of simultaneous destinations sharing the uplink.
        """
        if size_bytes <= 0 or self.bandwidth_bps <= 0:
            return 0.0
        effective_fanout = max(1, fanout) if self.per_node_share else 1
        return (size_bytes * 8.0 * effective_fanout) / self.bandwidth_bps


def latency_model_for(environment: str) -> LatencyModel:
    """Factory: return the latency model for ``"lan"`` or ``"wan"``."""
    normalized = environment.lower()
    if normalized == "lan":
        return LANLatencyModel()
    if normalized == "wan":
        return WANLatencyModel()
    raise ValueError(f"unknown network environment: {environment!r}")
