"""Message envelope used by the network substrate.

Protocol payloads (PBFT messages, client requests, checkpoints) are wrapped in
an :class:`Envelope` which records routing metadata and a size estimate used
by the bandwidth model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Fixed per-message overhead (headers, MAC/signature) in bytes.
MESSAGE_OVERHEAD_BYTES = 128


def estimate_size(payload: Any) -> int:
    """Best-effort size estimate (bytes) of a protocol payload.

    Payload objects that expose ``size_bytes`` (blocks, batches) report their
    own size; everything else is charged the fixed overhead only.  This keeps
    the bandwidth model focused on block dissemination, which dominates
    traffic in Multi-BFT systems.
    """
    declared = getattr(payload, "size_bytes", None)
    if isinstance(declared, (int, float)) and declared >= 0:
        return int(declared) + MESSAGE_OVERHEAD_BYTES
    return MESSAGE_OVERHEAD_BYTES


@dataclass
class Envelope:
    """A payload in flight between two processes.

    Attributes:
        source: Sending node id.
        destination: Receiving node id.
        payload: The protocol message object.
        size_bytes: Bytes charged to the bandwidth model.
        sent_at: Simulated time the message entered the network.
        deliver_at: Simulated time the message is handed to the destination.
    """

    source: int
    destination: int
    payload: Any
    size_bytes: int = 0
    sent_at: float = 0.0
    deliver_at: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            self.size_bytes = estimate_size(self.payload)
