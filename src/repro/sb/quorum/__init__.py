"""Quorum-latency (instance fidelity) consensus back-end."""

from repro.sb.quorum.model import QuorumLatencyConfig, QuorumLatencyModel

__all__ = ["QuorumLatencyConfig", "QuorumLatencyModel"]
