"""Quorum-latency consensus model (instance fidelity).

Message-level PBFT for 128 replicas times 128 instances is intractable in
pure Python, so the large-scale sweeps (Fig. 3/4/5/6) use this analytical
back-end: the three PBFT communication phases are collapsed into a delivery
latency computed from order statistics of the pairwise latency distribution,
plus the leader's serialisation time for disseminating the block, plus
per-transaction CPU cost.  Stragglers multiply the leader-side components,
and undetectable Byzantine abstention shrinks the pool of voters, pushing the
quorum out to slower honest replicas (Sec. VII-E).

The model is deliberately simple and fully documented so its assumptions can
be audited; DESIGN.md records it as a substitution for the AWS testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import CryptoCostModel
from repro.net.latency import BandwidthModel, LatencyModel, WANLatencyModel
from repro.sim.rng import DeterministicRNG


@dataclass
class QuorumLatencyConfig:
    """Parameters of the quorum-latency model."""

    #: Number of protocol phases after dissemination (prepare + commit).
    voting_phases: int = 2
    #: Per-transaction CPU cost on the critical path (verify + order), seconds.
    per_tx_cpu: float = 60e-6
    #: Fixed per-block processing overhead (batching, hashing), seconds.
    per_block_cpu: float = 2e-3


class QuorumLatencyModel:
    """Computes block delivery latency for one SB instance."""

    def __init__(
        self,
        num_replicas: int,
        latency_model: LatencyModel | None = None,
        bandwidth_model: BandwidthModel | None = None,
        crypto_model: CryptoCostModel | None = None,
        config: QuorumLatencyConfig | None = None,
        rng: DeterministicRNG | None = None,
    ) -> None:
        if num_replicas < 4:
            raise ValueError("BFT requires at least 4 replicas")
        self.num_replicas = num_replicas
        self.fault_tolerance = (num_replicas - 1) // 3
        self.latency_model = latency_model or WANLatencyModel()
        self.bandwidth_model = bandwidth_model or BandwidthModel()
        self.crypto_model = crypto_model or CryptoCostModel()
        self.config = config or QuorumLatencyConfig()
        self.rng = rng or DeterministicRNG(0)

    @property
    def quorum(self) -> int:
        """Replicas whose votes are needed (2f + 1)."""
        return 2 * self.fault_tolerance + 1

    # -- components -----------------------------------------------------------

    def dissemination_delay(
        self, leader: int, block_size_bytes: int, slowdown: float = 1.0
    ) -> float:
        """Time for the leader to push the block to all peers (bandwidth)."""
        fanout = self.num_replicas - 1
        serialization = self.bandwidth_model.serialization_delay(
            block_size_bytes, fanout
        )
        return serialization * max(1.0, slowdown)

    def quorum_round_delay(
        self, leader: int, *, abstaining: int = 0, slowdown: float = 1.0
    ) -> float:
        """One voting round: time until the leader hears from a quorum.

        Samples the leader's one-way latency to every peer, doubles it for the
        round trip, removes ``abstaining`` of the fastest voters (undetectable
        Byzantine replicas refuse to vote in instances they do not lead), and
        takes the ``2f+1``-th smallest of the rest.
        """
        round_trips = []
        for peer in range(self.num_replicas):
            if peer == leader:
                round_trips.append(0.0)
                continue
            one_way = self.latency_model.delay(leader, peer, self.rng)
            round_trips.append(2.0 * one_way)
        round_trips.sort()
        usable = round_trips[abstaining:] if abstaining else round_trips
        if not usable:
            usable = round_trips
        index = min(self.quorum - 1, len(usable) - 1)
        return usable[index] * max(1.0, slowdown)

    def processing_delay(self, transaction_count: int) -> float:
        """CPU time for validating and ordering the batch."""
        return (
            self.config.per_block_cpu
            + transaction_count * self.config.per_tx_cpu
            + transaction_count * self.crypto_model.verify_cost
        )

    # -- headline API -----------------------------------------------------------

    def delivery_latency(
        self,
        leader: int,
        block_size_bytes: int,
        transaction_count: int,
        *,
        slowdown: float = 1.0,
        abstaining: int = 0,
    ) -> float:
        """Total latency from ``broadcast`` to ``deliver`` for one block."""
        dissemination = self.dissemination_delay(leader, block_size_bytes, slowdown)
        voting = sum(
            self.quorum_round_delay(leader, abstaining=abstaining, slowdown=slowdown)
            for _ in range(self.config.voting_phases)
        )
        processing = self.processing_delay(transaction_count)
        return dissemination + voting + processing

    def leader_occupancy(
        self,
        block_size_bytes: int,
        transaction_count: int,
        *,
        slowdown: float = 1.0,
    ) -> float:
        """Time the leader's uplink/CPU is busy per block.

        This bounds the instance's block production rate: the next block
        cannot start dissemination before the previous one has left the
        leader.  It is also the term that makes every replica's 1 Gbps NIC
        the system-wide throughput bottleneck (each replica receives blocks
        from all other instances at the same rate it sends its own).
        """
        dissemination = self.dissemination_delay(0, block_size_bytes, slowdown)
        processing = self.processing_delay(transaction_count) * max(1.0, slowdown)
        return max(dissemination, processing)
