"""Sequenced Broadcast (SB) abstraction (Sec. III-C).

An SB instance takes blocks from its leader (``broadcast``) and eventually
*delivers* each sequence number exactly once, with agreement across honest
replicas.  Orthrus and the baseline Multi-BFT protocols treat SB as a black
box; this module defines that boundary so the PBFT message-level back-end and
the quorum-latency back-end are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.ledger.blocks import Block

#: Callback signature invoked when an SB instance delivers a block.
DeliverCallback = Callable[[Block], None]


@dataclass(frozen=True)
class Delivery:
    """Record of one SB delivery (used by logs and tests)."""

    instance: int
    sequence_number: int
    block: Block
    delivered_at: float


class Transport(Protocol):
    """What an SB endpoint needs from its hosting replica.

    The hosting replica supplies message transmission, timer scheduling and a
    clock; the endpoint never touches the network or simulator directly, which
    keeps the consensus state machine independently testable.
    """

    def send(self, destination: int, message: Any) -> None:
        """Send a protocol message to one replica."""
        ...

    def broadcast(self, message: Any, include_self: bool = False) -> None:
        """Send a protocol message to all replicas."""
        ...

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Any:
        """Schedule a callback; returns a cancellable handle."""
        ...

    def now(self) -> float:
        """Current simulated time."""
        ...


class SequencedBroadcastEndpoint:
    """Per-replica, per-instance SB endpoint interface."""

    def __init__(self, instance_id: int, replica_id: int) -> None:
        self.instance_id = instance_id
        self.replica_id = replica_id
        self._deliver_callback: DeliverCallback | None = None

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register the delivery callback (one per endpoint)."""
        self._deliver_callback = callback

    def _emit_delivery(self, block: Block) -> None:
        if self._deliver_callback is not None:
            self._deliver_callback(block)

    # -- protocol surface --------------------------------------------------

    def leader(self) -> int:
        """Replica id currently acting as this instance's leader."""
        raise NotImplementedError

    def is_leader(self) -> bool:
        """Whether the local replica leads this instance."""
        return self.leader() == self.replica_id

    def broadcast_block(self, block: Block) -> None:
        """Leader-only: start agreement on ``block``."""
        raise NotImplementedError

    def handle_message(self, sender: int, message: Any) -> None:
        """Feed a protocol message addressed to this instance."""
        raise NotImplementedError

    def start(self) -> None:
        """Begin operation (arms failure-detector timers)."""
        raise NotImplementedError
