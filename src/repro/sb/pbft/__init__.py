"""Message-level PBFT back-end for Sequenced Broadcast."""

from repro.sb.pbft.endpoint import PBFTConfig, PBFTEndpoint
from repro.sb.pbft.messages import (
    CheckpointMessage,
    Commit,
    NewView,
    PBFTMessage,
    PrePrepare,
    Prepare,
    ViewChange,
    is_pbft_message,
)
from repro.sb.pbft.slots import Slot, SlotTable

__all__ = [
    "CheckpointMessage",
    "Commit",
    "NewView",
    "PBFTConfig",
    "PBFTEndpoint",
    "PBFTMessage",
    "PrePrepare",
    "Prepare",
    "Slot",
    "SlotTable",
    "ViewChange",
    "is_pbft_message",
]
