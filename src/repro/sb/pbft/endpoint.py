"""Message-level PBFT endpoint implementing the Sequenced Broadcast interface.

One :class:`PBFTEndpoint` lives on every replica for every SB instance.  The
endpoint is a pure state machine: it talks to the outside world only through
the :class:`~repro.sb.interface.Transport` its hosting replica provides, which
makes it directly unit-testable without a simulator.

The implementation follows PBFT's normal-case three-phase exchange
(pre-prepare / prepare / commit, quorum ``2f + 1``) and a timeout-driven view
change used as the failure detector described in Sec. V-B: when a replica
knows of pending work for the instance and observes no delivery within the
timeout, it votes to replace the leader; on ``2f + 1`` votes the next leader
installs the new view and re-proposes undelivered blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NotLeaderError
from repro.ledger.blocks import Block
from repro.sb.interface import SequencedBroadcastEndpoint, Transport
from repro.sb.pbft.messages import (
    Commit,
    NewView,
    PBFTMessage,
    PrePrepare,
    Prepare,
    ViewChange,
)
from repro.sb.pbft.slots import SlotTable


@dataclass
class PBFTConfig:
    """Tunables for the PBFT back-end.

    Attributes:
        view_change_timeout: Seconds without progress (while work is pending)
            before a replica votes to change the leader.  The paper uses 10 s.
        watermark_window: Maximum number of in-flight sequence numbers a
            leader may have outstanding.
    """

    view_change_timeout: float = 10.0
    watermark_window: int = 128


class PBFTEndpoint(SequencedBroadcastEndpoint):
    """PBFT state machine for one instance on one replica."""

    def __init__(
        self,
        instance_id: int,
        replica_id: int,
        num_replicas: int,
        transport: Transport,
        config: PBFTConfig | None = None,
    ) -> None:
        super().__init__(instance_id, replica_id)
        self.num_replicas = num_replicas
        self.fault_tolerance = (num_replicas - 1) // 3
        self.transport = transport
        self.config = config or PBFTConfig()
        self.view = 0
        self.slots = SlotTable()
        self._view_change_votes: dict[int, dict[int, ViewChange]] = {}
        self._progress_timer: Any = None
        #: Escalation timer armed while a view change is in flight: if the
        #: prospective leader never announces the new view (it crashed too,
        #: or the NewView was lost), the vote moves on to the next view.
        self._view_change_timer: Any = None
        self._view_changing = False
        #: Highest view this replica has broadcast a ViewChange vote for.
        self._voted_view = 0
        self._leader_change_callback: Callable[[int, int], None] | None = None
        #: Optional host-supplied probe: returns True while this instance has
        #: pending work (bucketed transactions, or globally ordered blocks
        #: waiting on this instance's frontier).  Used to re-arm the failure
        #: detector after each delivery, so a leader that crashes *mid-run*
        #: is still detected even if no further client request arrives.
        self.pending_work_probe: Callable[[], bool] | None = None
        #: Optional hook fired when a slot first reaches the prepared state
        #: (tracing); receives ``(block, view)``.  ``None`` costs nothing.
        self._prepared_callback: Callable[[Block, int], None] | None = None
        #: Counters exposed for tests and metrics.
        self.view_changes_completed = 0
        self.blocks_delivered = 0

    # -- leadership ---------------------------------------------------------

    @property
    def quorum(self) -> int:
        """Votes needed to prepare/commit/change view (2f + 1)."""
        return 2 * self.fault_tolerance + 1

    def leader_for_view(self, view: int) -> int:
        """Round-robin leader rotation anchored at the instance index."""
        return (self.instance_id + view) % self.num_replicas

    def leader(self) -> int:
        return self.leader_for_view(self.view)

    def on_leader_change(self, callback: Callable[[int, int], None]) -> None:
        """Register a callback invoked as ``callback(view, leader)``."""
        self._leader_change_callback = callback

    def on_prepared(self, callback: Callable[[Block, int], None]) -> None:
        """Register a callback invoked as ``callback(block, view)`` when a
        slot first reaches the prepared state (2f + 1 matching prepares)."""
        self._prepared_callback = callback

    def start(self) -> None:
        """Nothing to arm until work is pending (see :meth:`notify_pending_work`)."""

    def fast_forward_view(self, view: int) -> None:
        """Install ``view`` without running the view-change protocol.

        Used by crash recovery: the pre-crash incarnation (or a peer's state
        transfer) proved this view was installed cluster-wide, so a restarted
        replica adopts it directly instead of voting its way up from view 0.
        Only moves forward; the endpoint must not be mid view change.
        """
        if view <= self.view:
            return
        self.view = view
        self._view_changing = False
        self._voted_view = max(self._voted_view, view)
        self._cancel_view_change_timer()
        self._view_change_votes = {
            pending_view: votes
            for pending_view, votes in self._view_change_votes.items()
            if pending_view > view
        }

    # -- leader path ----------------------------------------------------------

    def broadcast_block(self, block: Block) -> None:
        """Leader proposes ``block`` at its sequence number (sb-broadcast)."""
        if not self.is_leader():
            raise NotLeaderError(
                f"replica {self.replica_id} is not the leader of instance "
                f"{self.instance_id} in view {self.view}"
            )
        in_flight = self.slots.highest_started() - self.slots.next_to_deliver + 1
        if in_flight >= self.config.watermark_window:
            # The caller is expected to respect the watermark; proposals past
            # it are still accepted to keep the simulation simple.
            pass
        message = PrePrepare(
            instance=self.instance_id,
            view=self.view,
            sender=self.replica_id,
            sequence_number=block.sequence_number,
            block=block,
            digest=block.digest,
        )
        self.transport.broadcast(message)
        self._handle_pre_prepare(self.replica_id, message)

    # -- message handling ------------------------------------------------------

    def handle_message(self, sender: int, message: Any) -> None:
        """Route a PBFT message to the appropriate handler."""
        if not isinstance(message, PBFTMessage) or message.instance != self.instance_id:
            return
        if isinstance(message, PrePrepare):
            self._handle_pre_prepare(sender, message)
        elif isinstance(message, Prepare):
            self._handle_prepare(sender, message)
        elif isinstance(message, Commit):
            self._handle_commit(sender, message)
        elif isinstance(message, ViewChange):
            self._handle_view_change(sender, message)
        elif isinstance(message, NewView):
            self._handle_new_view(sender, message)

    def _handle_pre_prepare(self, sender: int, message: PrePrepare) -> None:
        if message.view != self.view or self._view_changing:
            return
        if sender != self.leader():
            return
        if message.block is None:
            return
        slot = self.slots.slot(message.sequence_number)
        if slot.pre_prepared and slot.digest != message.digest:
            # Conflicting proposal for the same slot: evidence of a faulty
            # leader; the failure detector will eventually rotate it out.
            return
        slot.view = message.view
        slot.block = message.block
        slot.digest = message.digest
        slot.pre_prepared = True
        slot.started_at = self.transport.now()
        prepare = Prepare(
            instance=self.instance_id,
            view=self.view,
            sender=self.replica_id,
            sequence_number=message.sequence_number,
            digest=message.digest,
        )
        self.transport.broadcast(prepare)
        self._handle_prepare(self.replica_id, prepare)

    def _handle_prepare(self, sender: int, message: Prepare) -> None:
        if message.view != self.view or self._view_changing:
            return
        slot = self.slots.slot(message.sequence_number)
        if slot.digest and message.digest != slot.digest:
            return
        count = slot.record_prepare(sender)
        if slot.pre_prepared and not slot.prepared and count >= self.quorum:
            slot.prepared = True
            if self._prepared_callback is not None and slot.block is not None:
                self._prepared_callback(slot.block, self.view)
            commit = Commit(
                instance=self.instance_id,
                view=self.view,
                sender=self.replica_id,
                sequence_number=message.sequence_number,
                digest=slot.digest,
            )
            self.transport.broadcast(commit)
            self._handle_commit(self.replica_id, commit)

    def _handle_commit(self, sender: int, message: Commit) -> None:
        if self._view_changing:
            return
        slot = self.slots.slot(message.sequence_number)
        if slot.digest and message.digest != slot.digest:
            return
        count = slot.record_commit(sender)
        if slot.prepared and not slot.committed and count >= self.quorum:
            slot.committed = True
            self._deliver_ready()

    def _deliver_ready(self) -> None:
        for slot in self.slots.deliverable():
            if slot.block is None:
                continue
            self.blocks_delivered += 1
            self._record_progress()
            self._emit_delivery(slot.block)

    def drain_deliverable(self) -> None:
        """Deliver committed slots now contiguous with the frontier.

        Delivery is normally driven by incoming commits, so a slot that
        was committed while delivery waited on a lower hole only drains
        when the *next* message arrives.  A recovery fast-forward fills
        the hole from state transfer instead — with no further traffic
        guaranteed, the host must drain explicitly or the committed
        suffix strands above the new frontier.
        """
        self._deliver_ready()

    # -- failure detection / view change ---------------------------------------

    def notify_pending_work(self) -> None:
        """Arm the failure detector: work exists, progress is expected.

        Called by the hosting replica when transactions are waiting in this
        instance's bucket (censorship detection) or when a proposal is known
        to be in flight.
        """
        if self._progress_timer is not None and getattr(
            self._progress_timer, "active", False
        ):
            return
        self._progress_timer = self.transport.set_timer(
            self.config.view_change_timeout, self._on_progress_timeout
        )

    def _record_progress(self) -> None:
        if self._progress_timer is not None and getattr(
            self._progress_timer, "active", False
        ):
            self._progress_timer.cancel()
        self._progress_timer = None
        # Progress consumed the timer; if the host says more work is still
        # pending, immediately re-arm so the detector keeps watching.  This is
        # what lets a mid-run leader crash be detected without relying on a
        # fresh client request to re-arm the timer.
        if self.pending_work_probe is not None and self.pending_work_probe():
            self.notify_pending_work()

    def _on_progress_timeout(self) -> None:
        self._progress_timer = None
        if self._view_changing:
            return
        if self.pending_work_probe is not None and not self.pending_work_probe():
            # The work that armed this timer was finished after the last
            # delivery's progress bookkeeping ran (execution happens above
            # the endpoint).  Nothing is owed, so a view change would be
            # spurious churn; stay disarmed until new work arrives.
            return
        self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        new_view = max(new_view, self._voted_view + 1, self.view + 1)
        self._view_changing = True
        self._voted_view = new_view
        vote = ViewChange(
            instance=self.instance_id,
            view=new_view,
            sender=self.replica_id,
            last_delivered=self.slots.next_to_deliver - 1,
            pending=tuple(self.slots.undelivered_proposals()),
        )
        # Arm the escalation timer before broadcasting: if this view change
        # stalls (the prospective leader is also faulty or its NewView is
        # lost), the vote advances to the next view instead of wedging.
        self._cancel_view_change_timer()
        self._view_change_timer = self.transport.set_timer(
            self.config.view_change_timeout, self._on_view_change_timeout
        )
        self.transport.broadcast(vote)
        self._handle_view_change(self.replica_id, vote)

    def _cancel_view_change_timer(self) -> None:
        if self._view_change_timer is not None and getattr(
            self._view_change_timer, "active", False
        ):
            self._view_change_timer.cancel()
        self._view_change_timer = None

    def _on_view_change_timeout(self) -> None:
        self._view_change_timer = None
        if self._view_changing:
            self._start_view_change(self._voted_view + 1)

    def _handle_view_change(self, sender: int, message: ViewChange) -> None:
        if message.view <= self.view:
            return
        votes = self._view_change_votes.setdefault(message.view, {})
        votes[sender] = message
        if (
            message.view > self._voted_view
            and len(votes) > self.fault_tolerance
        ):
            # f + 1 replicas already voted for this (higher) view, so at
            # least one honest replica detected a failure: join the view
            # change without waiting for the local timeout.
            self._start_view_change(message.view)
            if message.view <= self.view:
                return  # joining completed the quorum and installed the view
        if len(votes) < self.quorum:
            return
        new_leader = self.leader_for_view(message.view)
        if new_leader == self.replica_id:
            self._install_new_view(message.view, votes)
        # Non-leaders wait for the NewView announcement; if the new leader is
        # also faulty the escalation timer fires and the view advances again.

    def _install_new_view(self, view: int, votes: dict[int, ViewChange]) -> None:
        reproposals: dict[int, Block] = {}
        for vote in votes.values():
            for sequence_number, block in vote.pending:
                if sequence_number >= self.slots.next_to_deliver:
                    reproposals.setdefault(sequence_number, block)
        announcement = NewView(
            instance=self.instance_id,
            view=view,
            sender=self.replica_id,
            reproposals=tuple(sorted(reproposals.items())),
        )
        self.transport.broadcast(announcement)
        self._handle_new_view(self.replica_id, announcement)

    def _handle_new_view(self, sender: int, message: NewView) -> None:
        if message.view < self.view:
            return
        if sender != self.leader_for_view(message.view):
            return
        self.view = message.view
        self._view_changing = False
        self._voted_view = max(self._voted_view, message.view)
        self._cancel_view_change_timer()
        self._view_change_votes = {
            view: votes
            for view, votes in self._view_change_votes.items()
            if view > self.view
        }
        self.view_changes_completed += 1
        self._record_progress()
        # Re-run agreement for the blocks the old leader left unfinished.
        # Votes recorded for these slots in the old view must not count
        # towards the new view's quorums, so undelivered re-proposed slots
        # are reset before the new pre-prepare is processed.
        for sequence_number, block in message.reproposals:
            slot = self.slots.slot(sequence_number)
            if not slot.delivered:
                slot.block = None
                slot.digest = ""
                slot.pre_prepared = False
                slot.prepared = False
                slot.committed = False
                slot.prepares.clear()
                slot.commits.clear()
            pre_prepare = PrePrepare(
                instance=self.instance_id,
                view=self.view,
                sender=self.leader(),
                sequence_number=sequence_number,
                block=block,
                digest=block.digest,
            )
            self._handle_pre_prepare(self.leader(), pre_prepare)
            if self.is_leader():
                self.transport.broadcast(pre_prepare)
        # Announce the leader change only after the re-proposals occupy their
        # slots: a new leader derives its next sequence number from
        # ``slots.highest_started()`` inside this callback, and announcing
        # earlier would let fresh proposals collide with re-proposed slots
        # this replica had not seen pre-prepared before the view change.
        if self._leader_change_callback is not None:
            self._leader_change_callback(self.view, self.leader())
