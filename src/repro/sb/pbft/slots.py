"""Per-sequence-number bookkeeping for a PBFT instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ledger.blocks import Block


@dataclass
class Slot:
    """Agreement state for one (view, sequence number) slot."""

    sequence_number: int
    view: int = 0
    block: Block | None = None
    digest: str = ""
    pre_prepared: bool = False
    prepares: set[int] = field(default_factory=set)
    commits: set[int] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    delivered: bool = False
    started_at: float = 0.0

    def record_prepare(self, sender: int) -> int:
        """Record a prepare vote; returns the current count."""
        self.prepares.add(sender)
        return len(self.prepares)

    def record_commit(self, sender: int) -> int:
        """Record a commit vote; returns the current count."""
        self.commits.add(sender)
        return len(self.commits)


class SlotTable:
    """All slots of one PBFT instance, indexed by sequence number."""

    def __init__(self) -> None:
        self._slots: dict[int, Slot] = {}
        self._next_to_deliver = 0

    def slot(self, sequence_number: int) -> Slot:
        """Get or create the slot for ``sequence_number``."""
        if sequence_number not in self._slots:
            self._slots[sequence_number] = Slot(sequence_number=sequence_number)
        return self._slots[sequence_number]

    def __contains__(self, sequence_number: int) -> bool:
        return sequence_number in self._slots

    @property
    def next_to_deliver(self) -> int:
        """Lowest sequence number that has not been delivered yet."""
        return self._next_to_deliver

    def deliverable(self) -> list[Slot]:
        """Committed slots that can now be delivered in order.

        Advances the delivery pointer over every contiguous committed slot and
        returns them; the caller emits the delivery events.
        """
        ready: list[Slot] = []
        while True:
            slot = self._slots.get(self._next_to_deliver)
            if slot is None or not slot.committed or slot.delivered:
                break
            slot.delivered = True
            ready.append(slot)
            self._next_to_deliver += 1
        return ready

    def fast_forward(self, sequence_number: int) -> None:
        """Advance the delivery pointer past externally-recovered slots.

        Crash recovery replays delivered blocks straight into the core (from
        the WAL or a peer's state transfer) without running agreement, so the
        slots below ``sequence_number`` must never be re-proposed or
        re-delivered by this endpoint.  Only moves forward.
        """
        self._next_to_deliver = max(self._next_to_deliver, sequence_number)

    def undelivered_proposals(self) -> list[tuple[int, Block]]:
        """Pre-prepared blocks that were never delivered (for view changes)."""
        pending: list[tuple[int, Block]] = []
        for sn in sorted(self._slots):
            slot = self._slots[sn]
            if slot.pre_prepared and not slot.delivered and slot.block is not None:
                pending.append((sn, slot.block))
        return pending

    def highest_started(self) -> int:
        """Highest sequence number with any activity, or -1."""
        return max(self._slots, default=-1)

    def prune_below(self, sequence_number: int) -> int:
        """Garbage-collect delivered slots below ``sequence_number``."""
        stale = [sn for sn, slot in self._slots.items()
                 if sn < sequence_number and slot.delivered]
        for sn in stale:
            del self._slots[sn]
        return len(stale)
