"""PBFT protocol messages.

All messages carry the SB ``instance`` they belong to so a replica hosting
many instances (m = n in the paper's deployments) can route them, plus the
sender's replica id.  Sizes are small compared to blocks; only the
pre-prepare, which embeds the block, is charged the block's size by the
bandwidth model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ledger.blocks import Block
from repro.net.message import MESSAGE_OVERHEAD_BYTES


@dataclass(frozen=True)
class PBFTMessage:
    """Base class: identifies the instance, view and sender."""

    instance: int
    view: int
    sender: int

    @property
    def size_bytes(self) -> int:
        """Wire size charged by the bandwidth model."""
        return MESSAGE_OVERHEAD_BYTES


@dataclass(frozen=True)
class PrePrepare(PBFTMessage):
    """Leader's proposal of ``block`` at ``sequence_number``."""

    sequence_number: int = 0
    block: Block | None = None
    digest: str = ""

    @property
    def size_bytes(self) -> int:
        block_size = self.block.size_bytes if self.block is not None else 0
        return MESSAGE_OVERHEAD_BYTES + block_size


@dataclass(frozen=True)
class Prepare(PBFTMessage):
    """Backup's echo that it received the leader's proposal."""

    sequence_number: int = 0
    digest: str = ""


@dataclass(frozen=True)
class Commit(PBFTMessage):
    """Replica's vote that the proposal is prepared."""

    sequence_number: int = 0
    digest: str = ""


@dataclass(frozen=True)
class ViewChange(PBFTMessage):
    """Vote to move the instance to ``view`` (the new view number).

    ``last_delivered`` tells the new leader where to resume, and
    ``pending`` carries the sender's pre-prepared-but-undelivered blocks so
    they can be re-proposed.
    """

    last_delivered: int = -1
    pending: tuple[tuple[int, Block], ...] = ()

    @property
    def size_bytes(self) -> int:
        pending_size = sum(block.size_bytes for _, block in self.pending)
        return MESSAGE_OVERHEAD_BYTES + pending_size


@dataclass(frozen=True)
class NewView(PBFTMessage):
    """New leader's announcement that ``view`` is active.

    ``reproposals`` are (sequence number, block) pairs the new leader
    re-proposes to fill slots left open by the previous leader.
    """

    reproposals: tuple[tuple[int, Block], ...] = ()

    @property
    def size_bytes(self) -> int:
        size = sum(block.size_bytes for _, block in self.reproposals)
        return MESSAGE_OVERHEAD_BYTES + size


@dataclass(frozen=True)
class CheckpointMessage(PBFTMessage):
    """Signed digest summarising an epoch's delivered blocks (Sec. V-D)."""

    epoch: int = 0
    state_digest: str = ""


def is_pbft_message(message: Any) -> bool:
    """Whether ``message`` belongs to the PBFT protocol family."""
    return isinstance(message, PBFTMessage)
