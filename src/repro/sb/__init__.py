"""Sequenced Broadcast: interface plus PBFT and quorum-model back-ends."""

from repro.sb.interface import Delivery, SequencedBroadcastEndpoint, Transport
from repro.sb.pbft import PBFTConfig, PBFTEndpoint
from repro.sb.quorum import QuorumLatencyConfig, QuorumLatencyModel

__all__ = [
    "Delivery",
    "PBFTConfig",
    "PBFTEndpoint",
    "QuorumLatencyConfig",
    "QuorumLatencyModel",
    "SequencedBroadcastEndpoint",
    "Transport",
]
