"""Simulated public-key infrastructure.

The reproduction does not need real asymmetric cryptography: the adversary in
the simulation is the code we write, not an external attacker.  What matters
for the evaluation is (a) that signatures bind a message to a signer so honest
replicas can reject forgeries injected by the fault machinery, and (b) that
signing/verification charge a configurable CPU cost to the simulated clock.

A :class:`KeyPair` therefore derives a deterministic "private" secret from the
holder's identity, and a :class:`PublicKeyInfrastructure` registry lets any
party look up public keys, mirroring the PKI assumed in Sec. III-A.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class KeyPair:
    """Deterministic key pair for a named holder (replica or client)."""

    holder: str
    public_key: str
    _secret: str

    @classmethod
    def generate(cls, holder: str, seed: int = 0) -> "KeyPair":
        """Derive a key pair for ``holder`` from the experiment seed."""
        secret = hashlib.sha256(f"secret|{holder}|{seed}".encode()).hexdigest()
        public = hashlib.sha256(f"public|{secret}".encode()).hexdigest()
        return cls(holder=holder, public_key=public, _secret=secret)

    def secret(self) -> str:
        """Return the private component (used only by the signer module)."""
        return self._secret


class PublicKeyInfrastructure:
    """Registry mapping holder names to public keys."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._keys: dict[str, KeyPair] = {}

    def enroll(self, holder: str) -> KeyPair:
        """Create (or return the existing) key pair for ``holder``."""
        if holder not in self._keys:
            self._keys[holder] = KeyPair.generate(holder, self._seed)
        return self._keys[holder]

    def public_key_of(self, holder: str) -> str:
        """Public key registered for ``holder``.

        Raises:
            ConfigurationError: If the holder has not been enrolled.
        """
        try:
            return self._keys[holder].public_key
        except KeyError as exc:
            raise ConfigurationError(f"{holder!r} is not enrolled in the PKI") from exc

    def holders(self) -> list[str]:
        """All enrolled holder names."""
        return sorted(self._keys)

    def __contains__(self, holder: str) -> bool:
        return holder in self._keys
