"""Simulated cryptography: digests, PKI, signatures, quorum certificates."""

from repro.crypto.digest import (
    DigestAccumulator,
    canonical_bytes,
    combine_digests,
    digest,
    sha256_hex,
)
from repro.crypto.keys import KeyPair, PublicKeyInfrastructure
from repro.crypto.signatures import (
    CryptoCostModel,
    QuorumCertificate,
    Signature,
    sign,
    verify,
)

__all__ = [
    "CryptoCostModel",
    "DigestAccumulator",
    "KeyPair",
    "PublicKeyInfrastructure",
    "QuorumCertificate",
    "Signature",
    "canonical_bytes",
    "combine_digests",
    "digest",
    "sha256_hex",
    "sign",
    "verify",
]
