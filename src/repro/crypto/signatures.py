"""Simulated signatures and quorum certificates.

A signature here is a keyed hash over the message digest and the signer's
secret; verification recomputes it from the PKI-registered key pair.  This is
not cryptographically secure (and does not need to be inside a simulation),
but it has the property the protocol logic relies on: a signature only
verifies if it was produced with the holder's secret over exactly that
message, so tampering by the fault-injection machinery is detected.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.digest import digest
from repro.crypto.keys import KeyPair, PublicKeyInfrastructure


@dataclass(frozen=True)
class Signature:
    """A signer's attestation over a message digest."""

    signer: str
    message_digest: str
    value: str

    @classmethod
    def create(cls, keypair: KeyPair, message: Any) -> "Signature":
        """Sign ``message`` with ``keypair``."""
        message_digest = digest(message)
        value = hashlib.sha256(
            f"{keypair.secret()}|{message_digest}".encode()
        ).hexdigest()
        return cls(signer=keypair.holder, message_digest=message_digest, value=value)


def sign(keypair: KeyPair, message: Any) -> Signature:
    """Sign ``message`` with ``keypair`` (convenience wrapper)."""
    return Signature.create(keypair, message)


def verify(pki: PublicKeyInfrastructure, signature: Signature, message: Any) -> bool:
    """Check that ``signature`` is a valid attestation of ``message``.

    Verification recomputes the expected signature from the enrolled key pair;
    an unenrolled signer or a mismatched digest fails verification.
    """
    if signature.signer not in pki:
        return False
    if signature.message_digest != digest(message):
        return False
    keypair = pki.enroll(signature.signer)
    expected = hashlib.sha256(
        f"{keypair.secret()}|{signature.message_digest}".encode()
    ).hexdigest()
    return expected == signature.value


@dataclass
class QuorumCertificate:
    """A set of signatures over one digest, valid once a threshold is met."""

    message_digest: str
    threshold: int
    signatures: dict[str, Signature] = field(default_factory=dict)

    def add(self, signature: Signature) -> bool:
        """Add a signature; returns True if it matches the digest and is new."""
        if signature.message_digest != self.message_digest:
            return False
        if signature.signer in self.signatures:
            return False
        self.signatures[signature.signer] = signature
        return True

    @property
    def count(self) -> int:
        """Number of distinct signers collected so far."""
        return len(self.signatures)

    @property
    def complete(self) -> bool:
        """Whether the threshold has been reached."""
        return self.count >= self.threshold

    def signers(self) -> list[str]:
        """Sorted list of signer identities."""
        return sorted(self.signatures)


@dataclass
class CryptoCostModel:
    """CPU cost (seconds) charged for cryptographic operations.

    The Go prototype pays real ECDSA costs; the simulation charges equivalent
    time to the clock so throughput is bounded by realistic per-transaction
    verification work.  Defaults approximate a c5a.2xlarge core.
    """

    sign_cost: float = 40e-6
    verify_cost: float = 80e-6
    hash_cost_per_kb: float = 1e-6

    def batch_verify_cost(self, count: int) -> float:
        """Cost of verifying ``count`` independent signatures."""
        return max(0, count) * self.verify_cost

    def block_hash_cost(self, size_bytes: int) -> float:
        """Cost of hashing a block of ``size_bytes``."""
        return max(0, size_bytes) / 1024.0 * self.hash_cost_per_kb
