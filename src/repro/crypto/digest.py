"""Deterministic content digests.

Blocks, transactions and checkpoint summaries are identified by SHA-256
digests of a canonical rendering of their fields.  Digests are hex strings so
they remain hashable, comparable and readable in logs and test failures.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_bytes(value: Any) -> bytes:
    """Render ``value`` as canonical bytes for hashing.

    Dataclass-like objects may expose ``digest_fields()`` returning a plain
    structure; otherwise the object's ``repr`` is used.  Plain structures are
    serialised as sorted-key JSON, which is stable across runs.
    """
    provider = getattr(value, "digest_fields", None)
    if callable(provider):
        value = provider()
    try:
        return json.dumps(value, sort_keys=True, default=_fallback).encode("utf-8")
    except (TypeError, ValueError):
        return repr(value).encode("utf-8")


def _fallback(value: Any) -> Any:
    provider = getattr(value, "digest_fields", None)
    if callable(provider):
        return provider()
    return repr(value)


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def digest(value: Any) -> str:
    """Hex SHA-256 digest of an arbitrary value's canonical rendering."""
    return sha256_hex(canonical_bytes(value))


def combine_digests(digests: list[str]) -> str:
    """Digest of an ordered list of digests (used for checkpoint summaries)."""
    joined = "|".join(digests).encode("utf-8")
    return sha256_hex(joined)
