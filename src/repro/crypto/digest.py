"""Deterministic content digests.

Blocks, transactions and checkpoint summaries are identified by SHA-256
digests of a canonical rendering of their fields.  Digests are hex strings so
they remain hashable, comparable and readable in logs and test failures.

The canonical rendering is (and has always been) sorted-key JSON.  Because
hashing sits on the hottest paths of both the simulator and the live runtime,
there are two renderers that must stay byte-identical:

* the *reference* renderer: ``json.dumps(digest_fields(), sort_keys=True)``
  semantics via a precompiled :class:`json.JSONEncoder`;
* optional *precompiled* per-class renderers: hot classes expose
  ``canonical_render()`` returning the same bytes without building the
  intermediate dict (keys are constants, already sorted, so only the values
  are interpolated).

``tests/crypto`` property-tests the two against each other; a class whose
``canonical_render`` drifted from its ``digest_fields`` would change digests
and fail there before it could corrupt checkpoint comparisons.
"""

from __future__ import annotations

import hashlib
import json
from json.encoder import encode_basestring_ascii
from typing import Any, Iterable


def _fallback(value: Any) -> Any:
    provider = getattr(value, "digest_fields", None)
    if callable(provider):
        return provider()
    return repr(value)


#: Precompiled reference encoder: ``json.dumps(..., sort_keys=True)``
#: semantics without rebuilding the encoder object on every call.
_ENCODER = json.JSONEncoder(sort_keys=True, default=_fallback)

#: Escape a string exactly as the reference JSON encoder does (C-accelerated).
escape_json_string = encode_basestring_ascii


def canonical_bytes(value: Any) -> bytes:
    """Render ``value`` as canonical bytes for hashing.

    Objects may provide ``canonical_render()`` (precompiled fast path) or
    ``digest_fields()`` (a plain structure rendered as sorted-key JSON);
    anything JSON cannot represent falls back to ``repr``.
    """
    render = getattr(value, "canonical_render", None)
    if render is not None:
        return render()
    provider = getattr(value, "digest_fields", None)
    if callable(provider):
        value = provider()
    try:
        return _ENCODER.encode(value).encode("utf-8")
    except (TypeError, ValueError):
        return repr(value).encode("utf-8")


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def digest(value: Any) -> str:
    """Hex SHA-256 digest of an arbitrary value's canonical rendering."""
    return sha256_hex(canonical_bytes(value))


def combine_digests(digests: Iterable[str]) -> str:
    """Digest of an ordered list of digests (used for checkpoint summaries)."""
    accumulator = DigestAccumulator()
    for entry in digests:
        accumulator.append(entry)
    return accumulator.hexdigest()


class DigestAccumulator:
    """Incremental :func:`combine_digests`.

    Feeds each appended digest straight into one running SHA-256 (with the
    same ``|`` separators the joined-string rendering used), so callers that
    build checkpoint summaries over large stores never materialise the joined
    list.  ``combine_digests(items)`` == appending ``items`` in order and
    taking :meth:`hexdigest`.
    """

    __slots__ = ("_hash", "_empty")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._empty = True

    def append(self, digest_hex: str) -> None:
        """Add the next digest in order."""
        if self._empty:
            self._empty = False
        else:
            self._hash.update(b"|")
        self._hash.update(digest_hex.encode("utf-8"))

    def hexdigest(self) -> str:
        """Combined digest of everything appended so far."""
        return self._hash.hexdigest()
