"""Account universe used by the workload generator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ledger.state import StateStore
from repro.sim.rng import DeterministicRNG


def account_key(index: int) -> str:
    """Deterministic account address for the ``index``-th account."""
    return f"acct-{index:06d}"


def shared_key(index: int) -> str:
    """Deterministic key for the ``index``-th shared contract record."""
    return f"contract-{index:05d}"


@dataclass
class AccountUniverse:
    """The set of accounts and shared objects a workload draws from."""

    num_accounts: int
    num_shared_objects: int
    initial_balance: int
    zipf_exponent: float

    def account_keys(self) -> list[str]:
        """All account addresses."""
        return [account_key(i) for i in range(self.num_accounts)]

    def shared_keys(self) -> list[str]:
        """All shared contract record keys."""
        return [shared_key(i) for i in range(self.num_shared_objects)]

    def initial_balances(self) -> dict[str, int]:
        """Initial balance mapping for populating state stores."""
        return {key: self.initial_balance for key in self.account_keys()}

    def populate(self, store: StateStore) -> None:
        """Create every account and shared record in ``store``."""
        store.load_accounts(self.initial_balances())
        for key in self.shared_keys():
            store.create_shared(key, 0)

    def sample_account(self, rng: DeterministicRNG) -> str:
        """Draw an account with Zipf-skewed popularity."""
        index = rng.zipf_index(self.num_accounts, self.zipf_exponent)
        return account_key(index)

    def sample_distinct_accounts(self, rng: DeterministicRNG, count: int) -> list[str]:
        """Draw ``count`` distinct accounts (skewed, with rejection)."""
        chosen: list[str] = []
        seen: set[str] = set()
        attempts = 0
        while len(chosen) < count and attempts < count * 50:
            candidate = self.sample_account(rng)
            attempts += 1
            if candidate in seen:
                continue
            seen.add(candidate)
            chosen.append(candidate)
        while len(chosen) < count:
            # Extremely skewed configurations can exhaust rejection sampling;
            # fall back to uniform draws to keep the generator total.
            candidate = account_key(rng.randint(0, self.num_accounts - 1))
            if candidate not in seen:
                seen.add(candidate)
                chosen.append(candidate)
        return chosen

    def sample_shared(self, rng: DeterministicRNG) -> str:
        """Draw a shared contract record uniformly."""
        return shared_key(rng.randint(0, self.num_shared_objects - 1))
