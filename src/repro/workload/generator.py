"""Ethereum-style synthetic workload generator.

Generates a transaction trace with the statistical properties of the paper's
dataset: a payment/contract mix (46 % payments by default), Zipf-skewed
account activity over 18,000 accounts, occasional multi-payer payments and
two-caller contract invocations, and 500-byte payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ledger.transactions import Transaction, contract_call, payment
from repro.sim.rng import DeterministicRNG
from repro.workload.accounts import AccountUniverse
from repro.workload.config import WorkloadConfig


@dataclass
class TraceStatistics:
    """Summary statistics of a generated trace."""

    total: int = 0
    payments: int = 0
    contracts: int = 0
    multi_payer_payments: int = 0
    multi_caller_contracts: int = 0
    unique_accounts: int = 0

    @property
    def payment_fraction(self) -> float:
        """Observed payment fraction."""
        return self.payments / self.total if self.total else 0.0


@dataclass
class Trace:
    """A generated transaction trace plus its statistics."""

    transactions: list[Transaction]
    statistics: TraceStatistics
    config: WorkloadConfig

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)


class EthereumStyleWorkload:
    """Deterministic generator for Ethereum-like transaction traces."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self.universe = AccountUniverse(
            num_accounts=self.config.num_accounts,
            num_shared_objects=self.config.num_shared_objects,
            initial_balance=self.config.initial_balance,
            zipf_exponent=self.config.zipf_exponent,
        )
        self._rng = DeterministicRNG(self.config.seed)
        self._counter = 0

    # -- single transactions ----------------------------------------------------

    def next_transaction(self, primary_payer: str | None = None) -> Transaction:
        """Generate the next transaction in the trace.

        Args:
            primary_payer: Optional account to use as the first payer (or the
                first contract caller).  The closed-loop load generator uses
                this to keep a specific instance's bucket saturated; when
                omitted the payer is drawn from the Zipf-skewed universe.
        """
        self._counter += 1
        if self._rng.random() < self.config.payment_fraction:
            return self._payment_transaction(primary_payer)
        return self._contract_transaction(primary_payer)

    def _amount(self) -> int:
        return self._rng.randint(self.config.min_amount, self.config.max_amount)

    def _payment_transaction(self, primary_payer: str | None = None) -> Transaction:
        multi_payer = self._rng.random() < self.config.multi_payer_fraction
        payer_count = 2 if multi_payer else 1
        participants = self.universe.sample_distinct_accounts(
            self._rng, payer_count + 1
        )
        payers, payee = participants[:payer_count], participants[-1]
        if primary_payer is not None:
            if primary_payer in participants:
                participants.remove(primary_payer)
            payers = [primary_payer, *participants[: payer_count - 1]]
            payee = participants[payer_count - 1]
        debits = {payer: self._amount() for payer in payers}
        credits = {payee: sum(debits.values())}
        return payment(
            debits,
            credits,
            tx_id=f"pay-{self.config.seed}-{self._counter:09d}",
            client_id=payers[0],
            payload_size=self.config.payload_size,
        )

    def _contract_transaction(self, primary_payer: str | None = None) -> Transaction:
        multi_caller = (
            self._rng.random() < self.config.contract_multi_caller_fraction
        )
        caller_count = 2 if multi_caller else 1
        callers = self.universe.sample_distinct_accounts(self._rng, caller_count)
        if primary_payer is not None:
            if primary_payer in callers:
                callers.remove(primary_payer)
            callers = [primary_payer, *callers][:caller_count]
        debits = {caller: self._amount() for caller in callers}
        shared = {self.universe.sample_shared(self._rng): self._amount()}
        return contract_call(
            debits,
            shared,
            tx_id=f"con-{self.config.seed}-{self._counter:09d}",
            client_id=callers[0],
            payload_size=self.config.payload_size,
        )

    # -- full traces -------------------------------------------------------------

    def generate(self, count: int | None = None) -> Trace:
        """Generate a complete trace of ``count`` transactions."""
        total = count if count is not None else self.config.num_transactions
        transactions: list[Transaction] = []
        stats = TraceStatistics()
        accounts: set[str] = set()
        for _ in range(total):
            tx = self.next_transaction()
            transactions.append(tx)
            stats.total += 1
            if tx.is_payment:
                stats.payments += 1
                if tx.is_multi_payer:
                    stats.multi_payer_payments += 1
            else:
                stats.contracts += 1
                if len(tx.payers()) > 1:
                    stats.multi_caller_contracts += 1
            accounts.update(tx.payers())
            accounts.update(tx.payees())
        stats.unique_accounts = len(accounts)
        return Trace(transactions=transactions, statistics=stats, config=self.config)

    def stream(self, count: int | None = None) -> Iterator[Transaction]:
        """Yield transactions one at a time (open-loop clients use this)."""
        total = count if count is not None else self.config.num_transactions
        for _ in range(total):
            yield self.next_transaction()
