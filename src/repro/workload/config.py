"""Workload configuration mirroring the paper's Ethereum-derived dataset.

The evaluation replays ~200,000 transactions drawn from 18,000 active
Ethereum accounts (blocks 17,198,000-17,202,000), of which 46 % are payment
transactions and the rest are contract transactions.  We cannot redistribute
that trace, so :class:`WorkloadConfig` captures its relevant statistical
properties and the generator synthesises an equivalent trace (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

#: Trace-scale defaults taken from the paper's experimental setup.
PAPER_NUM_ACCOUNTS = 18_000
PAPER_NUM_TRANSACTIONS = 200_000
PAPER_PAYMENT_FRACTION = 0.46
#: Default Zipf skew of account activity (the ``--zipf-s`` CLI knob; the
#: contention A/B sweeps this — higher s concentrates spends on hot keys).
DEFAULT_ZIPF_EXPONENT = 0.8


@dataclass
class WorkloadConfig:
    """Parameters of the synthetic Ethereum-style workload.

    Attributes:
        num_accounts: Active accounts in the trace (paper: 18,000).
        num_transactions: Transactions to generate (paper: 200,000).
        payment_fraction: Fraction of payment transactions (paper: 0.46);
            Fig. 5 sweeps this from 0 to 1.
        multi_payer_fraction: Fraction of payment transactions that have two
            payers (joint payments split across instances).  Ethereum
            transactions have a single sender, so the trace-equivalent value
            is small; the escrow/atomicity machinery is exercised regardless.
        contract_multi_caller_fraction: Fraction of contract transactions
            invoked by two callers (the Appendix B example).
        num_shared_objects: Distinct shared contract records touched by
            contract transactions.
        zipf_exponent: Skew of account activity (0 = uniform).
        initial_balance: Starting balance of every account; generous enough
            that the vast majority of transfers succeed, as on Ethereum.
        min_amount / max_amount: Transfer amount range (integer tokens).
        payload_size: Client payload bytes per transaction (paper: 500).
        seed: Seed for the deterministic generator.
    """

    num_accounts: int = PAPER_NUM_ACCOUNTS
    num_transactions: int = PAPER_NUM_TRANSACTIONS
    payment_fraction: float = PAPER_PAYMENT_FRACTION
    multi_payer_fraction: float = 0.02
    contract_multi_caller_fraction: float = 0.05
    num_shared_objects: int = 512
    zipf_exponent: float = DEFAULT_ZIPF_EXPONENT
    initial_balance: int = 1_000_000
    min_amount: int = 1
    max_amount: int = 1_000
    payload_size: int = 500
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_accounts < 2:
            raise WorkloadError("num_accounts must be at least 2")
        if self.num_transactions < 0:
            raise WorkloadError("num_transactions must be non-negative")
        if not 0.0 <= self.payment_fraction <= 1.0:
            raise WorkloadError("payment_fraction must be within [0, 1]")
        if not 0.0 <= self.multi_payer_fraction <= 1.0:
            raise WorkloadError("multi_payer_fraction must be within [0, 1]")
        if self.num_shared_objects <= 0:
            raise WorkloadError("num_shared_objects must be positive")
        if self.zipf_exponent < 0.0:
            raise WorkloadError("zipf_exponent must be non-negative")
        if self.min_amount <= 0 or self.max_amount < self.min_amount:
            raise WorkloadError("amount range is invalid")
        if self.initial_balance < 0:
            raise WorkloadError("initial_balance must be non-negative")

    def scaled(self, factor: float) -> "WorkloadConfig":
        """Return a copy with the transaction count scaled by ``factor``.

        Benchmarks use this to run laptop-sized versions of the paper's
        200k-transaction replay while keeping every other property intact.
        """
        return WorkloadConfig(
            num_accounts=self.num_accounts,
            num_transactions=max(1, int(self.num_transactions * factor)),
            payment_fraction=self.payment_fraction,
            multi_payer_fraction=self.multi_payer_fraction,
            contract_multi_caller_fraction=self.contract_multi_caller_fraction,
            num_shared_objects=self.num_shared_objects,
            zipf_exponent=self.zipf_exponent,
            initial_balance=self.initial_balance,
            min_amount=self.min_amount,
            max_amount=self.max_amount,
            payload_size=self.payload_size,
            seed=self.seed,
        )
