"""Client arrival processes: when each transaction enters the system.

The paper drives the system to peak throughput ("we measure the peak
throughput before reaching saturation").  The experiment harness supports two
arrival disciplines:

* **open-loop** Poisson arrivals at a configured rate, and
* **saturating** arrivals that keep every bucket supplied so the system runs
  at its service-rate limit, which is how peak throughput is measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.sim.rng import DeterministicRNG


@dataclass
class ArrivalSchedule:
    """Submission times for a trace of ``count`` transactions."""

    times: list[float]

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[float]:
        return iter(self.times)

    @property
    def horizon(self) -> float:
        """Time of the last arrival (0 for empty schedules)."""
        return self.times[-1] if self.times else 0.0


def poisson_arrivals(
    count: int, rate_tps: float, rng: DeterministicRNG, start: float = 0.0
) -> ArrivalSchedule:
    """Open-loop Poisson arrivals at ``rate_tps`` transactions per second."""
    if rate_tps <= 0:
        raise ValueError("rate_tps must be positive")
    times: list[float] = []
    current = start
    for _ in range(count):
        current += rng.exponential(1.0 / rate_tps)
        times.append(current)
    return ArrivalSchedule(times)


def uniform_arrivals(count: int, rate_tps: float, start: float = 0.0) -> ArrivalSchedule:
    """Deterministic, evenly spaced arrivals at ``rate_tps``."""
    if rate_tps <= 0:
        raise ValueError("rate_tps must be positive")
    interval = 1.0 / rate_tps
    return ArrivalSchedule([start + i * interval for i in range(count)])


def burst_arrivals(count: int, start: float = 0.0) -> ArrivalSchedule:
    """All transactions available immediately (saturating load)."""
    return ArrivalSchedule([start] * count)
