"""Workload generation: Ethereum-style traces, accounts, arrival processes."""

from repro.workload.accounts import AccountUniverse, account_key, shared_key
from repro.workload.arrivals import (
    ArrivalSchedule,
    burst_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workload.config import (
    PAPER_NUM_ACCOUNTS,
    PAPER_NUM_TRANSACTIONS,
    PAPER_PAYMENT_FRACTION,
    WorkloadConfig,
)
from repro.workload.generator import EthereumStyleWorkload, Trace, TraceStatistics

__all__ = [
    "AccountUniverse",
    "ArrivalSchedule",
    "EthereumStyleWorkload",
    "PAPER_NUM_ACCOUNTS",
    "PAPER_NUM_TRANSACTIONS",
    "PAPER_PAYMENT_FRACTION",
    "Trace",
    "TraceStatistics",
    "WorkloadConfig",
    "account_key",
    "burst_arrivals",
    "poisson_arrivals",
    "shared_key",
    "uniform_arrivals",
]
