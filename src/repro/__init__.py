"""Orthrus reproduction: Multi-BFT consensus with concurrent partial ordering.

This package reproduces "Orthrus: Accelerating Multi-BFT Consensus Through
Concurrent Partial Ordering of Transactions" (ICDE 2025) as a pure-Python
library on top of a deterministic discrete-event simulation substrate.

Quickstart::

    from repro import PipelineConfig, run_pipeline_experiment

    metrics = run_pipeline_experiment(PipelineConfig(protocol="orthrus"))
    print(metrics.throughput_ktps, metrics.latency.mean)
"""

from repro.cluster import (
    FaultPlan,
    MessageCluster,
    MessageClusterConfig,
    PipelineCluster,
    PipelineConfig,
    run_pipeline_experiment,
)
from repro.core import ConsensusCore, CoreConfig, OrthrusCore
from repro.ledger import (
    EscrowLog,
    StateStore,
    Transaction,
    contract_call,
    payment,
    simple_transfer,
)
from repro.metrics import RunMetrics
from repro.protocols import available_protocols, build_core
from repro.workload import EthereumStyleWorkload, WorkloadConfig

#: Live-runtime names exported lazily (PEP 562): simulator-only workflows —
#: the experiment grids, figure benchmarks, `repro run` — never pay the
#: asyncio/runtime import.
_RUNTIME_EXPORTS = frozenset(
    {
        "ClusterSpec",
        "LoadGenConfig",
        "LoadGenerator",
        "LocalCluster",
        "OrthrusClient",
        "ReplicaRuntimeConfig",
        "ReplicaServer",
    }
)


def __getattr__(name: str):
    if name in _RUNTIME_EXPORTS:
        import repro.runtime as runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "0.3.0"

__all__ = [
    "ClusterSpec",
    "ConsensusCore",
    "CoreConfig",
    "EscrowLog",
    "EthereumStyleWorkload",
    "FaultPlan",
    "LoadGenConfig",
    "LoadGenerator",
    "LocalCluster",
    "MessageCluster",
    "MessageClusterConfig",
    "OrthrusClient",
    "OrthrusCore",
    "PipelineCluster",
    "PipelineConfig",
    "ReplicaRuntimeConfig",
    "ReplicaServer",
    "RunMetrics",
    "StateStore",
    "Transaction",
    "WorkloadConfig",
    "available_protocols",
    "build_core",
    "contract_call",
    "payment",
    "run_pipeline_experiment",
    "simple_transfer",
    "__version__",
]
