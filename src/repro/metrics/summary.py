"""Run-level metric aggregation shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.latency import LatencySummary, LatencyTracker
from repro.metrics.throughput import ThroughputPoint, ThroughputTracker


@dataclass
class RunMetrics:
    """Everything a single experiment run reports.

    Attributes:
        duration: Measured interval length in simulated seconds.
        throughput_tps: Confirmed transactions per second over the interval.
        latency: End-to-end latency summary (client submit -> f+1 replies).
        confirmation_latency: Submit-to-confirmation latency summary.
        stage_breakdown: Average seconds spent in each of the five stages.
        confirmed: Total confirmed transactions (committed + rejected).
        committed: Transactions executed successfully.
        rejected: Transactions executed unsuccessfully.
        partial_path: Transactions confirmed via Orthrus's partial path.
        global_path: Transactions confirmed via the global log.
        series: Windowed throughput series.
        extra: Free-form counters (network stats, escrow stats, ...).
    """

    duration: float
    throughput_tps: float
    latency: LatencySummary
    confirmation_latency: LatencySummary
    stage_breakdown: dict[str, float]
    confirmed: int
    committed: int
    rejected: int
    partial_path: int = 0
    global_path: int = 0
    series: list[ThroughputPoint] = field(default_factory=list)
    latency_series: list[tuple[float, float]] = field(default_factory=list)
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def throughput_ktps(self) -> float:
        """Throughput in kilo-transactions per second (the paper's unit)."""
        return self.throughput_tps / 1000.0


class MetricsCollector:
    """Bundles the latency and throughput trackers used during a run."""

    def __init__(self) -> None:
        self.latency = LatencyTracker()
        self.throughput = ThroughputTracker()
        self.committed = 0
        self.rejected = 0
        self.partial_path = 0
        self.global_path = 0

    def record_outcome(
        self, tx_id: str, time: float, *, committed: bool, partial_path: bool
    ) -> None:
        """Record one confirmation with its path and result."""
        self.latency.record_confirmed(tx_id, time, committed=committed)
        self.throughput.record_confirmation(time)
        if committed:
            self.committed += 1
        else:
            self.rejected += 1
        if partial_path:
            self.partial_path += 1
        else:
            self.global_path += 1

    def finalize(
        self,
        *,
        start: float,
        end: float,
        window: float = 0.5,
        extra: dict[str, float] | None = None,
    ) -> RunMetrics:
        """Build the :class:`RunMetrics` for the measurement interval."""
        duration = max(end - start, 1e-9)
        confirmed = self.committed + self.rejected
        return RunMetrics(
            duration=duration,
            throughput_tps=self.throughput.rate_over(start, end),
            latency=self.latency.end_to_end_summary(),
            confirmation_latency=self.latency.confirmation_latency_summary(),
            stage_breakdown=self.latency.stage_breakdown(),
            confirmed=confirmed,
            committed=self.committed,
            rejected=self.rejected,
            partial_path=self.partial_path,
            global_path=self.global_path,
            series=self.throughput.series(start, end, window),
            latency_series=self.latency.latency_series(start, end, window),
            extra=dict(extra or {}),
        )
