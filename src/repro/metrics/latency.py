"""Per-transaction latency tracking and the five-stage breakdown (Fig. 6).

The paper splits end-to-end latency into five stages:

1. **Send** - client submits until a replica receives the transaction.
2. **Preprocessing** - receipt until the transaction is broadcast in a block.
3. **Partial ordering** - broadcast until the SB instance delivers the block.
4. **Global ordering** - delivery until the transaction is confirmed.
5. **Reply** - confirmation until the client holds ``f + 1`` replies.

:class:`TransactionTimeline` records those boundary timestamps for one
transaction; :class:`LatencyTracker` aggregates them across a run.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

#: Stage names in pipeline order (used for reports and plots).
STAGE_NAMES: tuple[str, ...] = (
    "send",
    "preprocessing",
    "partial_ordering",
    "global_ordering",
    "reply",
)

#: Each stage's (start, end) timeline attributes, in pipeline order.
STAGE_BOUNDARIES: tuple[tuple[str, str, str], ...] = (
    ("send", "submitted_at", "received_at"),
    ("preprocessing", "received_at", "proposed_at"),
    ("partial_ordering", "proposed_at", "delivered_at"),
    ("global_ordering", "delivered_at", "confirmed_at"),
    ("reply", "confirmed_at", "replied_at"),
)


@dataclass
class TransactionTimeline:
    """Boundary timestamps of one transaction's journey (seconds)."""

    tx_id: str
    submitted_at: float | None = None
    received_at: float | None = None
    proposed_at: float | None = None
    delivered_at: float | None = None
    confirmed_at: float | None = None
    replied_at: float | None = None
    committed: bool = False

    @property
    def complete(self) -> bool:
        """Whether every stage boundary has been recorded."""
        return None not in (
            self.submitted_at,
            self.received_at,
            self.proposed_at,
            self.delivered_at,
            self.confirmed_at,
            self.replied_at,
        )

    @property
    def end_to_end(self) -> float | None:
        """Client-observed latency (submit to reply)."""
        if self.submitted_at is None or self.replied_at is None:
            return None
        return self.replied_at - self.submitted_at

    def stage_durations(self) -> dict[str, float] | None:
        """Per-stage durations, or ``None`` when the timeline is incomplete."""
        if not self.complete:
            return None
        return {
            name: getattr(self, end) - getattr(self, start)
            for name, start, end in STAGE_BOUNDARIES
        }


@dataclass
class LatencySummary:
    """Aggregate latency statistics for a run."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        """Build a summary from raw latency samples (empty -> zeros)."""
        if not samples:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, maximum=0.0)
        ordered = sorted(samples)
        p95_index = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
        return cls(
            count=len(ordered),
            mean=statistics.fmean(ordered),
            median=ordered[len(ordered) // 2],
            p95=ordered[p95_index],
            maximum=ordered[-1],
        )


class LatencyTracker:
    """Collects transaction timelines and produces latency statistics."""

    def __init__(self) -> None:
        self._timelines: dict[str, TransactionTimeline] = {}

    def timeline(self, tx_id: str) -> TransactionTimeline:
        """Get or create the timeline for a transaction."""
        if tx_id not in self._timelines:
            self._timelines[tx_id] = TransactionTimeline(tx_id=tx_id)
        return self._timelines[tx_id]

    # -- stage recording ------------------------------------------------------

    def record_submitted(self, tx_id: str, time: float) -> None:
        """Client handed the transaction to the system."""
        self.timeline(tx_id).submitted_at = time

    def record_received(self, tx_id: str, time: float) -> None:
        """A replica received the transaction (first receipt wins)."""
        timeline = self.timeline(tx_id)
        if timeline.received_at is None or time < timeline.received_at:
            timeline.received_at = time

    def record_proposed(self, tx_id: str, time: float) -> None:
        """The transaction was included in a broadcast block."""
        timeline = self.timeline(tx_id)
        if timeline.proposed_at is None or time < timeline.proposed_at:
            timeline.proposed_at = time

    def record_delivered(self, tx_id: str, time: float) -> None:
        """The SB instance delivered the block containing the transaction."""
        timeline = self.timeline(tx_id)
        if timeline.delivered_at is None or time < timeline.delivered_at:
            timeline.delivered_at = time

    def record_confirmed(self, tx_id: str, time: float, *, committed: bool) -> None:
        """The transaction was executed (successfully or not)."""
        timeline = self.timeline(tx_id)
        if timeline.confirmed_at is None:
            timeline.confirmed_at = time
            timeline.committed = committed

    def record_replied(self, tx_id: str, time: float) -> None:
        """The client collected ``f + 1`` replies."""
        timeline = self.timeline(tx_id)
        if timeline.replied_at is None:
            timeline.replied_at = time

    # -- aggregation ------------------------------------------------------------

    def timelines(self) -> list[TransactionTimeline]:
        """All recorded timelines (phase-windowed SLO reports iterate these)."""
        return list(self._timelines.values())

    def confirmed_timelines(self) -> list[TransactionTimeline]:
        """Timelines of transactions that reached confirmation."""
        return [t for t in self._timelines.values() if t.confirmed_at is not None]

    def end_to_end_summary(self) -> LatencySummary:
        """Summary of client-observed latencies."""
        samples = [
            t.end_to_end for t in self._timelines.values() if t.end_to_end is not None
        ]
        return LatencySummary.from_samples(samples)

    def confirmation_latency_summary(self) -> LatencySummary:
        """Summary of submit-to-confirmation latencies."""
        samples = [
            t.confirmed_at - t.submitted_at
            for t in self._timelines.values()
            if t.confirmed_at is not None and t.submitted_at is not None
        ]
        return LatencySummary.from_samples(samples)

    def latency_series(
        self, start: float, end: float, window: float = 0.5
    ) -> list[tuple[float, float]]:
        """Average submit-to-confirmation latency per time window.

        Each entry is ``(window_start, mean_latency)`` over the transactions
        confirmed inside that window; windows with no confirmations report
        zero (matching the gaps visible in the paper's Fig. 7b).
        """
        if end <= start or window <= 0:
            return []
        buckets: dict[int, list[float]] = {}
        for timeline in self._timelines.values():
            if timeline.confirmed_at is None or timeline.submitted_at is None:
                continue
            if not start <= timeline.confirmed_at < end:
                continue
            index = int((timeline.confirmed_at - start) // window)
            buckets.setdefault(index, []).append(
                timeline.confirmed_at - timeline.submitted_at
            )
        series: list[tuple[float, float]] = []
        count = int((end - start) / window + 0.999999)
        for index in range(count):
            samples = buckets.get(index, [])
            mean = sum(samples) / len(samples) if samples else 0.0
            series.append((start + index * window, mean))
        return series

    def stage_breakdown_partial(self) -> dict[str, float]:
        """Average each stage independently over timelines that recorded it.

        Unlike :meth:`stage_breakdown`, which only counts timelines with every
        boundary present, this averages each stage over whichever timelines
        hold *that stage's* two boundaries.  The live runtime uses it: a
        replica records submitted/received/proposed/delivered/confirmed but
        never observes the client's reply receipt, so its timelines are never
        complete; the load generator measures the reply stage itself and
        merges it in.
        """
        totals = {name: 0.0 for name in STAGE_NAMES}
        counts = {name: 0 for name in STAGE_NAMES}
        for timeline in self._timelines.values():
            for name, start_attr, end_attr in STAGE_BOUNDARIES:
                start = getattr(timeline, start_attr)
                end = getattr(timeline, end_attr)
                if start is None or end is None:
                    continue
                totals[name] += end - start
                counts[name] += 1
        return {
            name: (totals[name] / counts[name] if counts[name] else 0.0)
            for name in STAGE_NAMES
        }

    def stage_breakdown(self) -> dict[str, float]:
        """Average duration of each stage over complete timelines."""
        totals = {name: 0.0 for name in STAGE_NAMES}
        count = 0
        for timeline in self._timelines.values():
            durations = timeline.stage_durations()
            if durations is None:
                continue
            count += 1
            for name in STAGE_NAMES:
                totals[name] += durations[name]
        if count == 0:
            return {name: 0.0 for name in STAGE_NAMES}
        return {name: totals[name] / count for name in STAGE_NAMES}

    def __len__(self) -> int:
        return len(self._timelines)
