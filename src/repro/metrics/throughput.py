"""Throughput measurement: overall rate and windowed time series (Fig. 7)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ThroughputPoint:
    """One point of the throughput-over-time series."""

    window_start: float
    window_end: float
    transactions: int

    @property
    def rate(self) -> float:
        """Transactions per second within the window."""
        duration = self.window_end - self.window_start
        return self.transactions / duration if duration > 0 else 0.0


class ThroughputTracker:
    """Counts confirmations and derives rates over arbitrary windows."""

    def __init__(self) -> None:
        self._confirmations: list[float] = []

    def record_confirmation(self, time: float) -> None:
        """Record one confirmed transaction at ``time``."""
        self._confirmations.append(time)

    @property
    def total_confirmed(self) -> int:
        """Total confirmations recorded."""
        return len(self._confirmations)

    def rate_over(self, start: float, end: float) -> float:
        """Average transactions/second confirmed in ``[start, end)``."""
        if end <= start:
            return 0.0
        count = sum(1 for t in self._confirmations if start <= t < end)
        return count / (end - start)

    def series(
        self, start: float, end: float, window: float = 0.5
    ) -> list[ThroughputPoint]:
        """Windowed throughput series (the paper uses 0.5 s windows).

        Window boundaries are computed as ``start + i * window`` rather than
        by accumulating ``window_start += window``: over the thousands of
        windows a long run produces, accumulation drifts (each addition
        rounds), shifting late windows off the grid the latency series uses
        and miscounting confirmations near the drifted edges.
        """
        if end <= start or window <= 0:
            return []
        sorted_times = sorted(self._confirmations)
        index = 0
        # Confirmations before the series begins are skipped once, not
        # re-scanned per window.
        while index < len(sorted_times) and sorted_times[index] < start:
            index += 1
        num_windows = max(1, -int(-(end - start) // window))
        points: list[ThroughputPoint] = []
        for position in range(num_windows):
            window_start = start + position * window
            if window_start >= end:
                break
            window_end = min(start + (position + 1) * window, end)
            count = 0
            while index < len(sorted_times) and sorted_times[index] < window_end:
                count += 1
                index += 1
            points.append(
                ThroughputPoint(
                    window_start=window_start,
                    window_end=window_end,
                    transactions=count,
                )
            )
        return points
