"""Metrics: latency timelines, stage breakdowns, throughput series."""

from repro.metrics.latency import (
    STAGE_NAMES,
    LatencySummary,
    LatencyTracker,
    TransactionTimeline,
)
from repro.metrics.summary import MetricsCollector, RunMetrics
from repro.metrics.throughput import ThroughputPoint, ThroughputTracker

__all__ = [
    "LatencySummary",
    "LatencyTracker",
    "MetricsCollector",
    "RunMetrics",
    "STAGE_NAMES",
    "ThroughputPoint",
    "ThroughputTracker",
    "TransactionTimeline",
]
