"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed editable in
offline environments that lack the ``wheel`` package (legacy
``setup.py develop`` path).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
