"""Figure 5: Orthrus under varying payment-transaction proportions (WAN, 16 replicas)."""

from conftest import run_once

from repro.experiments.reporting import proportion_table
from repro.experiments.scenarios import payment_proportion_sweep


def test_fig5_no_straggler(benchmark, bench_scale, record_table, engine):
    points = run_once(
        benchmark,
        lambda: payment_proportion_sweep(stragglers=0, scale=bench_scale, engine=engine),
    )
    record_table("fig5_payment_proportion_no_straggler", proportion_table(points))
    # Latency decreases as the payment share grows (more transactions take
    # the partial-ordering fast path).
    assert points[-1].latency_s < points[0].latency_s
    assert points[-1].throughput_ktps >= 0.9 * points[0].throughput_ktps


def test_fig5_one_straggler(benchmark, bench_scale, record_table, engine):
    points = run_once(
        benchmark,
        lambda: payment_proportion_sweep(stragglers=1, scale=bench_scale, engine=engine),
    )
    record_table("fig5_payment_proportion_one_straggler", proportion_table(points))
    # The effect is much more pronounced with a straggler: payments dodge the
    # straggler-gated global ordering entirely.  Throughput stays essentially
    # flat across the sweep (same tolerance as the no-straggler panel: the
    # sampled representative batches carry a few percent of noise).
    assert points[-1].latency_s < 0.7 * points[0].latency_s
    assert points[-1].throughput_ktps >= 0.95 * points[0].throughput_ktps
