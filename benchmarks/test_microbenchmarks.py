"""Micro-benchmarks of the hot data structures (pytest-benchmark timings).

These are engineering benchmarks, not paper figures: they track the cost of
the operations every simulated second exercises millions of times, so
performance regressions in the library itself are visible.
"""

from repro.core.config import CoreConfig
from repro.core.orthrus import OrthrusCore
from repro.core.partition import PayerPartitioner
from repro.ledger.blocks import Block, SystemState
from repro.ledger.state import StateStore
from repro.ledger.transactions import simple_transfer
from repro.ordering.ladon import LadonGlobalOrderer
from repro.ordering.predetermined import PredeterminedGlobalOrderer
from repro.sim.simulator import Simulator
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload


def test_simulator_event_throughput(benchmark):
    def run():
        sim = Simulator()
        for i in range(20_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.processed_events

    assert benchmark(run) == 20_000


def test_workload_generation_rate(benchmark):
    config = WorkloadConfig(num_accounts=5_000, num_transactions=5_000, seed=3)

    def run():
        return len(EthereumStyleWorkload(config).generate())

    assert benchmark(run) == 5_000


def test_partitioner_assignment_rate(benchmark):
    partitioner = PayerPartitioner(128)
    keys = [f"acct-{i:06d}" for i in range(10_000)]

    def run():
        return sum(partitioner.assign_object(key) for key in keys)

    assert benchmark(run) >= 0


def _blocks_for_orderer(num_instances=16, per_instance=50):
    blocks = []
    rank = 0
    for sn in range(per_instance):
        for instance in range(num_instances):
            rank += 1
            blocks.append(
                Block.create(
                    instance=instance,
                    sequence_number=sn,
                    transactions=[],
                    state=SystemState.initial(num_instances),
                    proposer=instance,
                    rank=rank,
                )
            )
    return blocks


def test_ladon_orderer_throughput(benchmark):
    blocks = _blocks_for_orderer()

    def run():
        orderer = LadonGlobalOrderer(16)
        for block in blocks:
            orderer.on_deliver(block)
        return orderer.ordered_count

    assert benchmark(run) > 0


def test_predetermined_orderer_throughput(benchmark):
    blocks = _blocks_for_orderer()

    def run():
        orderer = PredeterminedGlobalOrderer(16)
        for block in blocks:
            orderer.on_deliver(block)
        return orderer.ordered_count

    assert benchmark(run) == len(blocks)


def test_orthrus_core_block_processing_rate(benchmark):
    config = CoreConfig(num_instances=8, batch_size=32, epoch_length=10_000)
    store = StateStore()
    accounts = {f"acct-{i:04d}": 1_000_000 for i in range(512)}
    store.load_accounts(accounts)
    core = OrthrusCore(config, store)
    # Group accounts by the instance their key hashes to so every block's
    # transactions exercise real escrows on the partial path.
    accounts_by_instance = {i: [] for i in range(8)}
    for key in accounts:
        accounts_by_instance[core.partitioner.assign_object(key)].append(key)
    blocks = []
    sns = [0] * 8
    for round_index in range(40):
        for instance in range(8):
            payers = accounts_by_instance[instance]
            txs = [
                simple_transfer(
                    payers[(round_index * 16 + k) % len(payers)],
                    f"acct-{(round_index * 8 + instance + k + 7) % 512:04d}",
                    1,
                    tx_id=f"b{instance}-{round_index}-{k}",
                )
                for k in range(16)
            ]
            blocks.append(
                Block.create(
                    instance=instance,
                    sequence_number=sns[instance],
                    transactions=txs,
                    state=SystemState.initial(8),
                    proposer=instance,
                    rank=core.next_rank(),
                )
            )
            sns[instance] += 1

    def run():
        replica = OrthrusCore(config, StateStore())
        replica.store.load_accounts(accounts)
        confirmed = 0
        for block in blocks:
            confirmed += len(replica.on_block_delivered(block))
        return confirmed

    assert benchmark(run) >= 0
