"""Micro-benchmarks of the hot data structures (pytest-benchmark timings).

These are engineering benchmarks, not paper figures: they track the cost of
the operations every simulated second exercises millions of times, so
performance regressions in the library itself are visible.
"""

import repro.runtime.control  # noqa: F401  (registers control-plane wire types)
from repro.bench.suites import _straggler_blocks
from repro.core.config import CoreConfig
from repro.core.orthrus import OrthrusCore
from repro.core.partition import PayerPartitioner
from repro.ledger.blocks import Block, SystemState
from repro.ledger.state import StateStore
from repro.ledger.transactions import simple_transfer
from repro.ordering.ladon import LadonGlobalOrderer
from repro.ordering.predetermined import PredeterminedGlobalOrderer
from repro.runtime.codec import (
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    decode_envelope,
    encode_envelope,
)
from repro.sim.simulator import Simulator
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload


def test_simulator_event_throughput(benchmark):
    def run():
        sim = Simulator()
        for i in range(20_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.processed_events

    assert benchmark(run) == 20_000


def test_workload_generation_rate(benchmark):
    config = WorkloadConfig(num_accounts=5_000, num_transactions=5_000, seed=3)

    def run():
        return len(EthereumStyleWorkload(config).generate())

    assert benchmark(run) == 5_000


def test_partitioner_assignment_rate(benchmark):
    partitioner = PayerPartitioner(128)
    keys = [f"acct-{i:06d}" for i in range(10_000)]

    def run():
        return sum(partitioner.assign_object(key) for key in keys)

    assert benchmark(run) >= 0


def _blocks_for_orderer(num_instances=16, per_instance=50):
    blocks = []
    rank = 0
    for sn in range(per_instance):
        for instance in range(num_instances):
            rank += 1
            blocks.append(
                Block.create(
                    instance=instance,
                    sequence_number=sn,
                    transactions=[],
                    state=SystemState.initial(num_instances),
                    proposer=instance,
                    rank=rank,
                )
            )
    return blocks


def test_ladon_orderer_throughput(benchmark):
    blocks = _blocks_for_orderer()

    def run():
        orderer = LadonGlobalOrderer(16)
        for block in blocks:
            orderer.on_deliver(block)
        return orderer.ordered_count

    assert benchmark(run) > 0


def test_predetermined_orderer_throughput(benchmark):
    blocks = _blocks_for_orderer()

    def run():
        orderer = PredeterminedGlobalOrderer(16)
        for block in blocks:
            orderer.on_deliver(block)
        return orderer.ordered_count

    assert benchmark(run) == len(blocks)


def _sample_block(num_txs=64, instances=4):
    txs = [
        simple_transfer(
            f"acct-{i:04d}",
            f"acct-{i + 1:04d}",
            1,
            tx_id=f"tx-{i:06d}",
            client_id="bench",
        )
        for i in range(num_txs)
    ]
    return Block.create(
        instance=0,
        sequence_number=5,
        transactions=txs,
        state=SystemState.initial(instances),
        proposer=0,
        rank=17,
    )


def test_digest_memoization_second_access_is_free(benchmark):
    """After the first access, ``Block.digest`` must be a plain memo read.

    The benchmark times 1000 repeat accesses on an already-hashed block; if
    memoization regressed to recomputation this would be ~1000x slower and
    trip the pytest-benchmark history comparison immediately.
    """
    block = _sample_block()
    first = block.digest  # prime the memo (and every transaction's)

    def run():
        total = 0
        for _ in range(1000):
            total += len(block.digest)
        return total

    assert benchmark(run) == 1000 * len(first)


def test_digest_fresh_block_rate(benchmark):
    """Cold digests: hash a fresh 64-transaction block and all its txs."""

    def run():
        block = _sample_block()
        for tx in block.transactions:
            _ = tx.digest
        return len(block.digest)

    assert benchmark(run) == 64


def test_codec_binary_vs_json_round_trip(benchmark):
    """Binary envelope round trip of a 64-tx pre-prepare (the hot frame).

    Asserts the structural contract inline — the binary frame decodes to the
    same message the JSON codec produces and is smaller — while the timing
    tracks the v2 path that live clusters actually run.
    """
    from repro.sb.pbft.messages import PrePrepare

    block = _sample_block()
    message = PrePrepare(
        instance=0,
        view=0,
        sender=0,
        sequence_number=5,
        block=block,
        digest=block.digest,
    )
    json_frame = encode_envelope(1, message, version=WIRE_VERSION)
    binary_frame = encode_envelope(1, message, version=WIRE_VERSION_BINARY)
    assert len(binary_frame) < len(json_frame)
    from repro.runtime.codec import encode_payload

    assert encode_payload(decode_envelope(binary_frame)[1]) == encode_payload(
        decode_envelope(json_frame)[1]
    )

    def run():
        sender, decoded = decode_envelope(
            encode_envelope(1, message, version=WIRE_VERSION_BINARY)
        )
        return sender

    assert benchmark(run) == 1


def test_ladon_release_below_bar_at_10k_pending(benchmark):
    """The straggler shape at scale: 10k waiting blocks, then release."""
    waiting, releasers = _straggler_blocks(num_instances=16, pending=10_000)

    def run():
        orderer = LadonGlobalOrderer(16)
        for block in waiting:
            orderer.on_deliver(block)
        assert orderer.ordered_count == 0  # the bar has not moved yet
        for block in releasers:
            orderer.on_deliver(block)
        return orderer.ordered_count

    # All but the final round's own high-rank tail must have been released.
    assert benchmark(run) >= len(waiting) * 0.99


def test_orthrus_core_block_processing_rate(benchmark):
    config = CoreConfig(num_instances=8, batch_size=32, epoch_length=10_000)
    store = StateStore()
    accounts = {f"acct-{i:04d}": 1_000_000 for i in range(512)}
    store.load_accounts(accounts)
    core = OrthrusCore(config, store)
    # Group accounts by the instance their key hashes to so every block's
    # transactions exercise real escrows on the partial path.
    accounts_by_instance = {i: [] for i in range(8)}
    for key in accounts:
        accounts_by_instance[core.partitioner.assign_object(key)].append(key)
    blocks = []
    sns = [0] * 8
    for round_index in range(40):
        for instance in range(8):
            payers = accounts_by_instance[instance]
            txs = [
                simple_transfer(
                    payers[(round_index * 16 + k) % len(payers)],
                    f"acct-{(round_index * 8 + instance + k + 7) % 512:04d}",
                    1,
                    tx_id=f"b{instance}-{round_index}-{k}",
                )
                for k in range(16)
            ]
            blocks.append(
                Block.create(
                    instance=instance,
                    sequence_number=sns[instance],
                    transactions=txs,
                    state=SystemState.initial(8),
                    proposer=instance,
                    rank=core.next_rank(),
                )
            )
            sns[instance] += 1

    def run():
        replica = OrthrusCore(config, StateStore())
        replica.store.load_accounts(accounts)
        confirmed = 0
        for block in blocks:
            confirmed += len(replica.on_block_delivered(block))
        return confirmed

    assert benchmark(run) >= 0
