"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify how much each Orthrus design
decision contributes:

* the partial path (Orthrus) vs dynamic global ordering alone (Ladon) vs
  pre-determined ordering (ISS) under a straggler;
* payer-affinity bucket partitioning vs hash partitioning (measured through
  the payment-proportion extremes);
* the escrow mechanism's cost (escrow/commit/abort throughput).
"""

from conftest import run_once

from repro.cluster.faults import FaultPlan
from repro.cluster.pipeline import PipelineConfig, run_pipeline_experiment
from repro.experiments.reporting import format_table
from repro.ledger.escrow import EscrowLog
from repro.ledger.state import StateStore
from repro.ledger.transactions import simple_transfer
from repro.workload.config import WorkloadConfig


def _straggler_run(protocol: str) -> tuple[float, float]:
    metrics = run_pipeline_experiment(
        PipelineConfig(
            protocol=protocol,
            num_replicas=16,
            environment="wan",
            samples_per_block=4,
            duration=60.0,
            warmup=12.0,
            seed=17,
            workload=WorkloadConfig(seed=19),
            faults=FaultPlan.with_straggler(instance=1),
        )
    )
    return metrics.throughput_ktps, metrics.latency.mean


def test_ablation_ordering_paths_under_straggler(benchmark, record_table):
    def run():
        return {name: _straggler_run(name) for name in ("orthrus", "ladon", "iss")}

    results = run_once(benchmark, run)
    rows = [
        (name, f"{ktps:.1f}", f"{latency:.2f}")
        for name, (ktps, latency) in results.items()
    ]
    record_table(
        "ablation_ordering_paths",
        format_table(["ordering design", "throughput (ktps)", "latency (s)"], rows),
    )
    orthrus_latency = results["orthrus"][1]
    ladon_latency = results["ladon"][1]
    iss_latency = results["iss"][1]
    # Dynamic ordering already beats pre-determined ordering; the partial
    # path buys the remaining reduction.
    assert ladon_latency < iss_latency
    assert orthrus_latency < ladon_latency


def test_ablation_escrow_operation_cost(benchmark):
    store = StateStore()
    store.load_accounts({f"acct-{i}": 1_000_000 for i in range(64)})
    elog = EscrowLog(store)
    transactions = [
        simple_transfer(f"acct-{i % 64}", f"acct-{(i + 1) % 64}", 1, tx_id=f"t{i}")
        for i in range(2000)
    ]

    def escrow_commit_cycle():
        for tx in transactions:
            for op in tx.decrement_operations():
                elog.escrow(op, tx)
            elog.commit_escrow(tx)
            for op in tx.increment_operations():
                store.credit(op.key, op.amount)
        return len(elog)

    remaining = benchmark(escrow_commit_cycle)
    assert remaining == 0
