"""Live straggler A/B: dependency-ordered Orthrus vs bar-gated Ladon.

Runs the same payment workload against the same 4-replica / 2-instance
cluster shape twice — once with ``ladon`` (every commit waits for the global
bar) and once with ``orthrus-dep`` (payments confirm through the partial
path and independent blocks release without the bar) — while replica 1, the
view-0 leader of instance 1, is a 10x straggler.

Acceptance, per the dependency-ordering work: under the straggler the
dependency-ordered protocol's committed throughput must be at least Ladon's,
and all replicas must still converge to one state digest (every completion
already required ``f + 1`` matching replies on the client side).

Scale via ``REPRO_LIVE_AB_TXS`` (default keeps local ``pytest`` runs quick).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.cluster.faults import FaultPlan
from repro.runtime.chaos import run_chaos
from repro.runtime.client import ClientConfig
from repro.runtime.cluster import ClusterSpec
from repro.runtime.loadgen import LoadGenConfig
from repro.workload.config import WorkloadConfig

AB_TRANSACTIONS = int(os.environ.get("REPRO_LIVE_AB_TXS", "200"))

#: Replica 1 leads instance 1 in view 0; a 10x slowdown there is the paper's
#: straggler shape (Fig. 3c) translated to the live runtime.
STRAGGLER_PLAN = {1: 10.0}

WORKLOAD = WorkloadConfig(num_accounts=512, seed=42, payment_fraction=1.0)


def _run_arm(protocol: str):
    spec = ClusterSpec(
        num_replicas=4,
        num_instances=2,
        protocol=protocol,
        batch_size=64,
        batch_interval=0.02,
        workload=WORKLOAD,
        faults=FaultPlan(stragglers=dict(STRAGGLER_PLAN)),
    )
    config = LoadGenConfig(
        transactions=AB_TRANSACTIONS,
        mode="closed",
        concurrency=32,
        workload=WORKLOAD,
        client=ClientConfig(client_id=1000, timeout=15.0, retries=3),
    )
    return asyncio.run(run_chaos(spec, config))


@pytest.fixture(scope="module")
def ab_results():
    return {protocol: _run_arm(protocol) for protocol in ("ladon", "orthrus-dep")}


def test_both_arms_commit_and_agree(ab_results):
    for protocol, result in ab_results.items():
        assert not result.unexpected_exits, (protocol, result.unexpected_exits)
        assert result.report.failed == 0, protocol
        assert result.report.completed == AB_TRANSACTIONS, protocol
        assert result.report.metrics.committed > 0, protocol
        assert result.report.digests_agree, (protocol, result.report.state_digests)


def test_dependency_ordering_beats_the_bar_under_a_straggler(ab_results):
    ladon_tps = ab_results["ladon"].report.metrics.throughput_tps
    dep_tps = ab_results["orthrus-dep"].report.metrics.throughput_tps
    assert ladon_tps > 0
    # The bar paces Ladon's commits at the straggler's rate; the dependency
    # orderer confirms payments through the partial path, so its committed
    # throughput must not fall below Ladon's.
    assert dep_tps >= ladon_tps, f"orthrus-dep {dep_tps:.1f} tps < ladon {ladon_tps:.1f} tps"
