"""End-to-end durability smoke: SIGKILL a live replica, restart it, rejoin.

Spawns a 4-replica / 2-instance Orthrus cluster as real ``repro serve`` OS
processes with durability on (per-replica WAL + snapshots under the run
directory), drives it with a client, SIGKILLs replica 0 mid-run, keeps the
load going while it is down, then restarts it with ``recovery="snapshot"``.
The acceptance contract from the durability issue:

* the restarted process recovers from its newest snapshot plus the WAL
  suffix, pulls the rest from peers, and converges to the survivors'
  exact ``StateStore`` digest,
* it rejoins as a *full* participant — its ``consensus.blocks_proposed``
  counter (zero at process start) goes positive again,
* the durable artifacts (``wal.jsonl``, ``snapshot-*.json``) exist on
  disk afterwards so CI can archive them.

A second test runs the same crash/restart cycle through the chaos
harness (``FaultPlan.churn`` + ``run_chaos``) under open-loop load.

Every await is bounded (``asyncio.wait_for``) so a wedged recovery fails
the test quickly instead of hanging the CI workflow.

Scale via ``REPRO_LIVE_RECOVERY_TXS`` (CI uses 600; the default keeps
local ``pytest`` runs quick).  Point ``REPRO_LIVE_RECOVERY_RUN_DIR`` at a
directory to keep the WAL/snapshot artifacts somewhere predictable.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.cluster.faults import FaultPlan
from repro.runtime.chaos import run_chaos
from repro.runtime.client import ClientConfig, OrthrusClient
from repro.runtime.cluster import ClusterSpec, LocalCluster
from repro.runtime.loadgen import LoadGenConfig
from repro.runtime.wal import WAL_FILE_NAME
from repro.workload.config import WorkloadConfig
from repro.workload.generator import EthereumStyleWorkload

RECOVERY_TRANSACTIONS = int(os.environ.get("REPRO_LIVE_RECOVERY_TXS", "200"))

WORKLOAD = WorkloadConfig(num_accounts=512, seed=77, payment_fraction=1.0)

#: Wall-clock budget for each scenario; generous against CI jitter but far
#: below the workflow timeout, so a wedged state transfer fails fast here.
RUN_TIMEOUT = 180.0

#: Open-loop rate for the churn scenario: paces the run so both the crash
#: and the restart land inside the load window.
SUBMIT_RATE_TPS = 100.0


def _run_dir(name: str) -> str | None:
    """Per-scenario run directory under ``REPRO_LIVE_RECOVERY_RUN_DIR``.

    Each scenario needs its own: a fresh cluster recovers whatever WAL it
    finds in its run directory, so sharing one would replay the previous
    scenario's blocks into the next cluster.
    """
    base = os.environ.get("REPRO_LIVE_RECOVERY_RUN_DIR")
    return str(Path(base) / name) if base else None


def _cluster_spec(*, name: str, faults: FaultPlan | None = None) -> ClusterSpec:
    return ClusterSpec(
        num_replicas=4,
        num_instances=2,
        batch_size=16,
        batch_interval=0.02,
        # Small blocks and epochs so epochs complete (an epoch needs
        # ``epoch_length`` sequence numbers on *every* instance) and
        # snapshots actually get cut at smoke-test scale.
        epoch_length=2,
        # Without a fault plan the detector window is kept wide: the restart
        # test wants the crash healed by recovery, not by a view change, so
        # instance 0 must still belong to replica 0 afterwards.
        view_change_timeout=faults.view_change_timeout if faults else 10.0,
        workload=WORKLOAD,
        durability=True,
        run_dir=_run_dir(name),
        faults=faults or FaultPlan.none(),
    )


async def _submit_batch(client: OrthrusClient, workload, count: int) -> int:
    futures = [client.submit_nowait(workload.next_transaction()) for _ in range(count)]
    results = await asyncio.gather(*futures, return_exceptions=True)
    committed = sum(
        1 for r in results if not isinstance(r, Exception) and r.committed
    )
    return committed


async def _settled_statuses(client: OrthrusClient, *, minimum_committed: int):
    """Poll until all four replicas agree on one digest at the watermark.

    The watermark checks the *highest* committed counter: the restarted
    process reaches the common digest through state transfer, which does
    not replay outcomes through its metrics collector.
    """
    statuses = await client.cluster_status()
    for _ in range(150):
        statuses = await client.cluster_status()
        digests = {s.state_digest for s in statuses}
        if (
            len(statuses) == 4
            and len(digests) == 1
            and max(s.committed for s in statuses) >= minimum_committed
        ):
            break
        await asyncio.sleep(0.2)
    return statuses


def _last_metrics_row(replica_dir: Path) -> dict:
    """Newest snapshot in ``metrics.jsonl`` — appended by the *restarted*
    process, since both processes share the file in append mode."""
    rows = [
        json.loads(line)
        for line in (replica_dir / "metrics.jsonl").read_text().splitlines()
        if line.strip()
    ]
    assert rows, "restarted replica wrote no metrics snapshots"
    return rows[-1]


def test_sigkilled_replica_restarts_from_snapshot_and_leads_again():
    batch = max(RECOVERY_TRANSACTIONS // 4, 20)
    spec = _cluster_spec(name="restart")
    cluster = LocalCluster(spec)

    async def scenario() -> None:
        workload = EthereumStyleWorkload(WORKLOAD)
        await asyncio.to_thread(cluster.start)
        try:
            # Phase 1: land enough load to cross several epoch boundaries,
            # so the restart exercises snapshot + WAL-suffix recovery (not
            # a pure WAL replay from genesis).
            async with OrthrusClient(
                list(cluster.endpoints), ClientConfig(timeout=5.0, retries=3)
            ) as client:
                committed = await _submit_batch(client, workload, 2 * batch)
                assert committed == 2 * batch
                # Settle everyone — replica 0 must have executed the whole
                # phase (its commit replies only need f + 1 of the others),
                # so its deferred snapshot cut has provably run.
                for _ in range(150):
                    statuses = await client.cluster_status()
                    if all(s.committed >= 2 * batch for s in statuses) and (
                        len({s.state_digest for s in statuses}) == 1
                    ):
                        break
                    await asyncio.sleep(0.1)
                assert all(s.committed >= 2 * batch for s in statuses)
            snapshots_before = list(cluster.replica_dir(0).glob("snapshot-*.json"))
            assert snapshots_before, "no snapshot was cut before the crash"

            # Phase 2: SIGKILL replica 0.  The kill is abrupt — the WAL tail
            # past the last fsync batch is torn, which is exactly what the
            # recovery path must tolerate.  No client traffic lands while it
            # is down: transactions hash to instances, so instance-0 load
            # would wedge until a view change stole replica 0's leadership —
            # the churn test below covers that path; this one pins recovery
            # *without* leadership loss.
            await asyncio.to_thread(cluster.kill_replica, 0)
            assert cluster.check() == [0]

            # Phase 3: restart on the same endpoint and run directory,
            # inside the failure-detector window.
            await asyncio.to_thread(cluster.restart_replica, 0, recovery="snapshot")
            stderr = cluster.replica_stderr(0)
            assert "local recovery: snapshot epoch None" not in stderr, (
                "restart ignored the snapshot on disk"
            )

            # Clients never reconnect, so post-restart traffic and the
            # settlement probe need fresh connections to reach replica 0.
            async with OrthrusClient(
                list(cluster.endpoints),
                ClientConfig(client_id=2000, timeout=5.0, retries=5),
            ) as probe:
                committed = await _submit_batch(probe, workload, batch)
                assert committed == batch
                statuses = await _settled_statuses(
                    probe, minimum_committed=3 * batch
                )
                assert {s.replica for s in statuses} == {0, 1, 2, 3}
                digests = {s.state_digest for s in statuses}
                assert len(digests) == 1, f"recovered replica diverged: {statuses}"

                # Full participation: no view change ever fired, so instance
                # 0 still belongs to replica 0 in view 0 — instance 0
                # advancing under fresh load proves the restarted process
                # *led* proposals again (not just voted).
                assert all(s.view_changes == 0 for s in statuses)
                frontier0 = next(
                    s for s in statuses if s.replica == 0
                ).delivered_frontier[0]
                for _ in range(30):
                    await _submit_batch(probe, workload, batch)
                    statuses = await probe.cluster_status()
                    status0 = next(s for s in statuses if s.replica == 0)
                    if status0.delivered_frontier[0] > frontier0:
                        break
                    await asyncio.sleep(0.2)
                assert status0.delivered_frontier[0] > frontier0, (
                    "restarted replica never led an instance-0 proposal"
                )

            assert cluster.check() == [], cluster.replica_stderr(0)
        finally:
            await asyncio.to_thread(cluster.stop)

    asyncio.run(asyncio.wait_for(scenario(), timeout=RUN_TIMEOUT))

    # Durable artifacts survived the run for CI to archive.
    replica_dir = cluster.replica_dir(0)
    assert (replica_dir / WAL_FILE_NAME).exists()
    assert list(replica_dir.glob("snapshot-*.json")), "no snapshot was cut"

    # Full participation: the restarted process (counter starts at zero)
    # proposed blocks again, and its recovery path actually ran.
    row = _last_metrics_row(replica_dir)
    assert row["replica"] == 0
    assert row.get("consensus.blocks_proposed", 0) > 0
    assert row.get("durability.recovery_seconds", 0) > 0


def test_churn_cycle_under_load_keeps_cluster_consistent():
    # Crash at 0.8s, restart 0.7s later — inside the failure-detector
    # window, so the cycle exercises rejoin-without-view-change; the load
    # outlasts the restart so ``unfired_actions`` stays empty.
    plan = FaultPlan(churn=((0.8, 0, 0.7),), view_change_timeout=1.5)
    spec = _cluster_spec(name="churn", faults=plan)
    load = LoadGenConfig(
        transactions=RECOVERY_TRANSACTIONS,
        mode="open",
        rate_tps=SUBMIT_RATE_TPS,
        workload=WORKLOAD,
        client=ClientConfig(client_id=1000, timeout=5.0, retries=3),
    )

    result = asyncio.run(asyncio.wait_for(run_chaos(spec, load), timeout=RUN_TIMEOUT))
    report = result.report

    # The churn cycle expanded into exactly its crash + restart, both fired.
    assert [(e.action, e.replica) for e in result.events] == [
        ("crash", 0),
        ("restart", 0),
    ]
    assert result.unfired_actions == []
    assert result.unexpected_exits == []

    # Liveness through the cycle: every submission completed with f + 1
    # matching replies, and most committed.
    assert report.failed == 0
    assert report.completed == RECOVERY_TRANSACTIONS
    assert report.metrics.committed >= RECOVERY_TRANSACTIONS * 0.99

    # Safety: the load client's surviving connections agree on one state.
    # (The client never reconnects, so the restarted replica drops out of
    # its settlement probe; the first test covers the all-four check.)
    assert set(report.state_digests) >= {1, 2, 3}
    assert report.digests_agree, f"replicas diverged: {report.state_digests}"
