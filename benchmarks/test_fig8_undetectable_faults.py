"""Figure 8: Orthrus under undetectable Byzantine faults (16 replicas, WAN).

Faulty replicas keep proposing in the instance they lead but abstain from
every other instance, so no view change fires.  As the fault count grows the
quorum must include ever slower honest replicas, which raises latency
substantially and erodes throughput moderately.
"""

from conftest import run_once

from repro.experiments.reporting import undetectable_table
from repro.experiments.scenarios import undetectable_fault_sweep


def test_fig8_undetectable_fault_sweep(benchmark, bench_scale, record_table, engine):
    points = run_once(
        benchmark,
        lambda: undetectable_fault_sweep(
            fault_counts=(0, 1, 2, 3, 4, 5), scale=bench_scale, engine=engine
        ),
    )
    record_table("fig8_undetectable_faults", undetectable_table(points))
    by_faults = {point.faulty_replicas: point for point in points}
    # Latency rises monotonically in tendency and is substantially higher at
    # the maximum fault count; throughput declines moderately.
    assert by_faults[5].latency_s > 1.5 * by_faults[0].latency_s
    assert by_faults[3].latency_s > by_faults[0].latency_s
    assert by_faults[5].throughput_ktps > 0.4 * by_faults[0].throughput_ktps
    assert by_faults[5].throughput_ktps <= by_faults[0].throughput_ktps * 1.05
